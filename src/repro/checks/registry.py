"""Plugin-style rule registry.

A *rule* is a generator function that receives an analysis context and
yields :class:`~repro.checks.findings.Finding` objects.  Rules register
themselves at import time through the :func:`rule` decorator — exactly
the pattern :data:`repro.runtime.tasks.TASK_FUNCTIONS` uses for task
kinds — so shipping a new rule is one decorated function, and user
extension modules can contribute rules by being imported
(``repro check --load-rules my.module``).

Two scopes exist:

- ``module`` rules run once per analyzed file with a
  :class:`~repro.checks.engine.ModuleContext`;
- ``project`` rules run once per invocation with the whole
  :class:`~repro.checks.engine.ProjectContext` (import cycles and
  cache-key completeness need to see several files at once).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Tuple

from repro.checks.findings import SEVERITIES, Finding
from repro.errors import CheckError

RuleFunction = Callable[[Any], Iterator[Finding]]

SCOPES: Tuple[str, ...] = ("module", "project")

#: Bump whenever any rule's detection logic or message text changes.
#: The incremental cache (:mod:`repro.checks.cache`) keys entries on
#: this together with the selected rule ids, so a rule improvement
#: invalidates stale cached findings instead of silently serving them.
RULESET_VERSION = 1


@dataclass(frozen=True)
class Rule:
    """One registered rule: metadata plus the check function.

    ``hint`` is the default fix suggestion attached to findings the
    rule emits through :meth:`finding`; a rule may override it per
    finding when the fix depends on the violation.
    """

    rule_id: str
    name: str
    severity: str
    scope: str
    hint: str
    func: RuleFunction = field(repr=False)

    @property
    def doc(self) -> str:
        """The rule's rationale (its function docstring)."""
        return (self.func.__doc__ or "").strip()

    def finding(
        self, path: str, line: int, col: int, message: str, hint: str = ""
    ) -> Finding:
        """Construct a finding pre-filled with this rule's metadata."""
        return Finding(
            path=path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            hint=hint or self.hint,
        )


#: All registered rules by id.  Populated at import time by the rule
#: modules (and by any ``--load-rules`` plugin).
RULES: Dict[str, Rule] = {}


def rule(
    rule_id: str,
    *,
    name: str,
    severity: str = "error",
    scope: str = "module",
    hint: str = "",
) -> Callable[[RuleFunction], RuleFunction]:
    """Register the decorated function as rule ``rule_id``.

    The decorated function keeps working as a plain callable; the
    registry only records it.  Ids are unique per process — a duplicate
    registration is a programming error, not a configuration choice.
    """
    if severity not in SEVERITIES:
        raise CheckError(
            f"rule {rule_id}: severity must be one of {SEVERITIES}, "
            f"got {severity!r}"
        )
    if scope not in SCOPES:
        raise CheckError(
            f"rule {rule_id}: scope must be one of {SCOPES}, got {scope!r}"
        )

    def register(func: RuleFunction) -> RuleFunction:
        if rule_id in RULES:
            raise CheckError(f"rule id {rule_id!r} is already registered")
        RULES[rule_id] = Rule(
            rule_id=rule_id,
            name=name,
            severity=severity,
            scope=scope,
            hint=hint,
            func=func,
        )
        return func

    return register


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id."""
    _ensure_builtin_rules()
    return [RULES[rule_id] for rule_id in sorted(RULES)]


def get_rule(rule_id: str) -> Rule:
    _ensure_builtin_rules()
    try:
        return RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(RULES))
        raise CheckError(
            f"unknown rule id {rule_id!r}; registered rules: {known}"
        ) from None


def select_rules(rule_ids: Iterable[str]) -> List[Rule]:
    """Resolve an explicit ``--select`` list, preserving registry order."""
    wanted = {rid.strip().upper() for rid in rule_ids if rid.strip()}
    if not wanted:
        return all_rules()
    for rid in wanted:
        get_rule(rid)
    return [r for r in all_rules() if r.rule_id in wanted]


def load_plugin(module_name: str) -> None:
    """Import a user extension module so its ``@rule`` decorators run."""
    try:
        importlib.import_module(module_name)
    except ImportError as exc:
        raise CheckError(
            f"cannot import rule plugin {module_name!r}: {exc}"
        ) from exc


def _ensure_builtin_rules() -> None:
    """Import the built-in rule modules (idempotent).

    Importing is the registration mechanism — the same contract plugins
    follow — so this goes through :mod:`importlib` rather than binding
    names nothing reads.
    """
    for module in (
        "rules_cachekey",
        "rules_concurrency",
        "rules_determinism",
        "rules_imports",
        "rules_obs",
        "rules_perf",
        "rules_service",
        "rules_worker",
    ):
        importlib.import_module(f"repro.checks.{module}")
