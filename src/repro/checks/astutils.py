"""AST plumbing shared by the rule families.

Three building blocks live here:

- :class:`ModuleSource` — one parsed file plus everything rules keep
  re-deriving: source lines, inline ``# repro: noqa`` suppressions, a
  local-name → qualified-name import map, and the inferred dotted
  module name (``src/repro/runtime/keys.py`` → ``repro.runtime.keys``).
- :func:`resolve_qualname` — maps an ``ast.Name``/``ast.Attribute``
  chain through the import map to the fully qualified symbol it denotes
  (``np.random.rand`` → ``numpy.random.rand``), which is how the
  determinism rules recognize an API regardless of import spelling.
- :class:`ScopeAnalyzer` — a two-pass lexical-scope model (module,
  function, class, comprehension) used by the undefined-name rule.  It
  deliberately does *no* flow analysis: a name bound anywhere in a
  scope counts as defined throughout it, so the rule only fires on
  names with no binding at all — the class of bug that crashes at
  runtime (PR 2's latent ``Sequence`` import in ``simgpu/batch.py``).
"""

from __future__ import annotations

import ast
import builtins
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Union

# ---------------------------------------------------------------------------
# noqa suppressions
# ---------------------------------------------------------------------------

#: ``# repro: noqa`` suppresses every rule on the line;
#: ``# repro: noqa[IMP002]`` / ``# repro: noqa[IMP002, DET001]`` only those.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)


def parse_noqa(lines: List[str]) -> Dict[int, Optional[FrozenSet[str]]]:
    """Per-line suppressions: ``None`` means all rules, else a rule-id set."""
    suppressions: Dict[int, Optional[FrozenSet[str]]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = None
        else:
            ids = frozenset(
                part.strip().upper() for part in rules.split(",") if part.strip()
            )
            suppressions[lineno] = ids or None
    return suppressions


# ---------------------------------------------------------------------------
# Module parsing
# ---------------------------------------------------------------------------


def infer_module_name(path: Path) -> Optional[str]:
    """Dotted module name, walking up while ``__init__.py`` files exist."""
    parts: List[str] = []
    if path.name != "__init__.py":
        parts.append(path.stem)
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:
        return None
    return ".".join(reversed(parts))


def resolve_relative_import(
    module_name: Optional[str],
    is_package: bool,
    level: int,
    target: Optional[str],
) -> Optional[str]:
    """The absolute module a relative ``from``-import refers to.

    ``from . import jobs`` inside ``repro.service.http`` has
    ``level=1, target=None`` and resolves to package ``repro.service``;
    ``from ..obs import history`` (``level=2, target="obs"``) to
    ``repro.obs``.  Inside a package ``__init__`` the package itself is
    the level-1 anchor.  Returns ``None`` when the module name is
    unknown or the level climbs past the top — the caller simply keeps
    the name unresolved.
    """
    if module_name is None or level < 1:
        return None
    parts = module_name.split(".")
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        if level - 1 > len(parts):
            return None
        parts = parts[: len(parts) - (level - 1)]
    if target:
        parts = parts + target.split(".")
    if not parts:
        return None
    return ".".join(parts)


@dataclass
class ModuleSource:
    """One parsed source file and its rule-relevant derived views."""

    path: Path
    relpath: str
    tree: ast.Module
    source: str
    lines: List[str]
    module_name: Optional[str]
    noqa: Dict[int, Optional[FrozenSet[str]]] = field(default_factory=dict)
    #: local binding -> fully qualified imported symbol
    import_map: Dict[str, str] = field(default_factory=dict)
    #: the file is a package ``__init__`` (anchors relative imports)
    is_package: bool = False

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if line not in self.noqa:
            return False
        rules = self.noqa[line]
        return rules is None or rule_id.upper() in rules


def parse_module(path: Path, relpath: str) -> ModuleSource:
    """Parse one file (raises ``SyntaxError`` for the engine to report)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    module = ModuleSource(
        path=path,
        relpath=relpath,
        tree=tree,
        source=source,
        lines=lines,
        module_name=infer_module_name(path),
        noqa=parse_noqa(lines),
        is_package=path.name == "__init__.py",
    )
    module.import_map = build_import_map(
        tree, module_name=module.module_name, is_package=module.is_package
    )
    return module


# ---------------------------------------------------------------------------
# Imports and qualified names
# ---------------------------------------------------------------------------


def build_import_map(
    tree: ast.Module,
    module_name: Optional[str] = None,
    is_package: bool = False,
) -> Dict[str, str]:
    """Map local names to the qualified symbols they import.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from os import environ`` → ``{"environ": "os.environ"}``;
    ``import os.path`` → ``{"os": "os"}`` (the binding is the top
    package).  Function-local imports participate too — the determinism
    rules care what a name *means*, not where it was bound.

    Relative imports resolve against ``module_name`` when it is known
    (``from . import jobs`` inside ``repro.service.http`` maps ``jobs``
    to ``repro.service.jobs``, which is how the call graph links
    relatively-imported project modules); with no module name they stay
    unmapped, preserving the old behavior.
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    mapping[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = resolve_relative_import(
                    module_name, is_package, node.level, node.module
                )
                if base is None:  # unknown anchor: not resolvable
                    continue
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mapping[local] = f"{base}.{alias.name}" if base else alias.name
    return mapping


def attribute_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name-rooted chains."""
    parts: List[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    parts.append(cursor.id)
    parts.reverse()
    return parts


def resolve_qualname(
    node: ast.AST, import_map: Dict[str, str]
) -> Optional[str]:
    """The fully qualified symbol a name/attribute chain denotes.

    The chain's root is looked up in the module's import map, so both
    ``np.random.rand`` and ``from numpy import random; random.rand``
    resolve to ``numpy.random.rand``.  Chains rooted in non-imported
    names resolve to None — a local variable called ``time`` is not the
    stdlib module.
    """
    chain = attribute_chain(node)
    if chain is None:
        return None
    root = chain[0]
    if root not in import_map:
        return None
    return ".".join([import_map[root]] + chain[1:])


def annotation_string_names(tree: ast.Module) -> Set[str]:
    """Names referenced inside *quoted* annotations.

    ``def f(t: "Trace") -> "List[BatchFrameOutput]"`` keeps ``Trace``
    and ``BatchFrameOutput`` out of the module's Name loads, so the
    unused-import rule would flag their (typically ``TYPE_CHECKING``)
    imports.  Each string constant in an annotation position is parsed
    as an expression and its names collected; unparseable strings are
    ignored (they are documentation, not forward references).
    """
    names: Set[str] = set()
    annotations: List[ast.expr] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                if arg.annotation is not None:
                    annotations.append(arg.annotation)
            if node.returns is not None:
                annotations.append(node.returns)
        elif isinstance(node, ast.AnnAssign):
            annotations.append(node.annotation)
    for annotation in annotations:
        for sub in ast.walk(annotation):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                try:
                    parsed = ast.parse(sub.value, mode="eval")
                except SyntaxError:
                    continue
                for name_node in ast.walk(parsed):
                    if isinstance(name_node, ast.Name):
                        names.add(name_node.id)
    return names


# ---------------------------------------------------------------------------
# Lexical scopes (undefined-name analysis)
# ---------------------------------------------------------------------------

_BUILTIN_NAMES: FrozenSet[str] = frozenset(dir(builtins)) | frozenset(
    {
        "__file__",
        "__name__",
        "__doc__",
        "__package__",
        "__spec__",
        "__loader__",
        "__builtins__",
        "__debug__",
        "__annotations__",
        "__path__",
        "__dict__",
        "__class__",  # implicit closure cell inside methods
    }
)

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
_COMPREHENSION_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


class Scope:
    """One lexical scope: its bindings and its place in the chain."""

    __slots__ = ("kind", "node", "parent", "bindings", "has_star_import")

    def __init__(self, kind: str, node: ast.AST, parent: Optional["Scope"]):
        self.kind = kind  # "module" | "function" | "class" | "comprehension"
        self.node = node
        self.parent = parent
        self.bindings: Set[str] = set()
        self.has_star_import = False

    def lookup(self, name: str) -> bool:
        """Python's actual rule: class scopes are invisible to nested scopes."""
        scope: Optional[Scope] = self
        first = True
        while scope is not None:
            if scope.kind != "class" or first:
                if name in scope.bindings:
                    return True
            if scope.has_star_import:
                return True
            first = False
            scope = scope.parent
        return name in _BUILTIN_NAMES


@dataclass(frozen=True)
class UndefinedName:
    name: str
    line: int
    col: int


class ScopeAnalyzer:
    """Binding collection (pass 1) + load resolution (pass 2)."""

    def __init__(self, tree: ast.Module):
        self.tree = tree
        self.module_scope = Scope("module", tree, None)
        #: scope owned by each scope-introducing node
        self._scopes: Dict[int, Scope] = {id(tree): self.module_scope}
        self._collect(tree, self.module_scope)

    # -- pass 1: bindings --------------------------------------------------

    def _child_scope(self, kind: str, node: ast.AST, parent: Scope) -> Scope:
        scope = Scope(kind, node, parent)
        self._scopes[id(node)] = scope
        return scope

    def _bind_target(self, target: ast.AST, scope: Scope) -> None:
        if isinstance(target, ast.Name):
            scope.bindings.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, scope)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, scope)
        # Attribute / Subscript targets bind nothing new.

    def _bind_args(self, args: ast.arguments, scope: Scope) -> None:
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            scope.bindings.add(arg.arg)

    def _collect(self, node: ast.AST, scope: Scope) -> None:
        for child in ast.iter_child_nodes(node):
            self._collect_node(child, scope)

    def _collect_node(self, node: ast.AST, scope: Scope) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope.bindings.add(node.name)
            inner = self._child_scope("function", node, scope)
            self._bind_args(node.args, inner)
            for stmt in node.body:
                self._collect_node(stmt, inner)
            # Decorators, defaults, and annotations evaluate in the
            # enclosing scope.
            for expr in node.decorator_list:
                self._collect_node(expr, scope)
            for default in list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]:
                self._collect_node(default, scope)
        elif isinstance(node, ast.Lambda):
            inner = self._child_scope("function", node, scope)
            self._bind_args(node.args, inner)
            self._collect_node(node.body, inner)
            for default in list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]:
                self._collect_node(default, scope)
        elif isinstance(node, ast.ClassDef):
            scope.bindings.add(node.name)
            inner = self._child_scope("class", node, scope)
            for stmt in node.body:
                self._collect_node(stmt, inner)
            for expr in node.decorator_list + node.bases + [
                kw.value for kw in node.keywords
            ]:
                self._collect_node(expr, scope)
        elif isinstance(node, _COMPREHENSION_NODES):
            inner = self._child_scope("comprehension", node, scope)
            for generator in node.generators:
                self._bind_target(generator.target, inner)
                self._collect_node(generator.iter, inner)
                for cond in generator.ifs:
                    self._collect_node(cond, inner)
            if isinstance(node, ast.DictComp):
                self._collect_node(node.key, inner)
                self._collect_node(node.value, inner)
            else:
                self._collect_node(node.elt, inner)
        elif isinstance(node, ast.NamedExpr):
            # Walrus binds in the nearest function/module scope, never a
            # comprehension's own scope.
            target_scope = scope
            while target_scope.kind == "comprehension" and target_scope.parent:
                target_scope = target_scope.parent
            self._bind_target(node.target, target_scope)
            self._collect_node(node.value, scope)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                self._bind_target(target, scope)
            self._collect(node, scope)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._bind_target(node.target, scope)
            self._collect(node, scope)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, scope)
            self._collect(node, scope)
        elif isinstance(node, ast.ExceptHandler):
            if node.name:
                scope.bindings.add(node.name)
            self._collect(node, scope)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                scope.bindings.add(
                    alias.asname if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    scope.has_star_import = True
                else:
                    scope.bindings.add(alias.asname or alias.name)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            # No flow analysis: declaring makes the names resolvable both
            # here and (for global) at module scope.
            for name in node.names:
                scope.bindings.add(name)
                if isinstance(node, ast.Global):
                    self.module_scope.bindings.add(name)
        elif isinstance(node, ast.MatchAs):
            if node.name:
                scope.bindings.add(node.name)
            self._collect(node, scope)
        elif isinstance(node, ast.MatchStar):
            if node.name:
                scope.bindings.add(node.name)
        elif isinstance(node, ast.MatchMapping):
            if node.rest:
                scope.bindings.add(node.rest)
            self._collect(node, scope)
        else:
            self._collect(node, scope)

    # -- pass 2: loads -----------------------------------------------------

    def undefined_names(self) -> Iterator[UndefinedName]:
        """Names loaded with no binding in any enclosing scope."""
        yield from self._check(self.tree, self.module_scope)

    def _check(self, node: ast.AST, scope: Scope) -> Iterator[UndefinedName]:
        for child in ast.iter_child_nodes(node):
            child_scope = self._scopes.get(id(child), scope)
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
                if not scope.lookup(child.id):
                    yield UndefinedName(child.id, child.lineno, child.col_offset)
            yield from self._check(child, child_scope)


# ---------------------------------------------------------------------------
# Misc helpers used by several rule modules
# ---------------------------------------------------------------------------


def walk_with_parents(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
    """Depth-first walk yielding ``(node, ancestor_stack)`` pairs."""
    stack: List[Tuple[ast.AST, Tuple[ast.AST, ...]]] = [(tree, ())]
    while stack:
        node, parents = stack.pop()
        yield node, parents
        child_parents = parents + (node,)
        for child in reversed(list(ast.iter_child_nodes(node))):
            stack.append((child, child_parents))


def call_keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    """The value of keyword ``name`` on a call, if present."""
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def is_constant(node: Optional[ast.AST], value: object) -> bool:
    return isinstance(node, ast.Constant) and node.value is value


FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def iter_functions(tree: ast.Module) -> Iterator[FunctionNode]:
    """Every def in the module, at any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
