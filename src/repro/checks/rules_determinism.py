"""Determinism rules (DET001–DET005).

The reproduction's trust chain is: serial run == parallel run == cached
run, bit for bit (docs/RUNTIME.md).  Every rule here targets a way that
chain silently breaks — hidden global RNG state, wall-clock or
environment reads leaking into cache-keyed computation, Python-level
nondeterminism (mutable defaults shared across calls, unsorted dict
iteration feeding a digest).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set

from repro.checks.astutils import (
    call_keyword,
    is_constant,
    iter_functions,
    resolve_qualname,
    walk_with_parents,
)
from repro.checks.findings import Finding
from repro.checks.registry import get_rule, rule

if TYPE_CHECKING:
    from repro.checks.engine import ModuleContext

# Global-state entry points of the two RNG APIs.  Seeding helpers and
# explicitly seeded constructors are the *fix*, not the violation.
_RANDOM_MODULES = ("random", "numpy.random")
_RANDOM_ALLOWED_TAILS = {
    "seed",
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "PCG64",
    "Philox",
    "Random",
    "SystemRandom",  # explicitly *not* reproducible; flagging it twice helps nobody
    "get_state",
    "set_state",
}

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Path fragments where wall-clock and environment reads are legitimate:
#: observability stamps real timestamps by design, the dataset registry
#: honors the full-scale env toggle, the cache honors its dir override,
#: and the service stamps job lifecycle times (created/started/finished)
#: into its persistent records.  Matching is on the normalized (posix)
#: relpath.
ENV_TIME_ALLOWLIST = (
    "repro/obs/",
    "repro/datasets.py",
    "repro/runtime/cache.py",
    "repro/service/",
    # Kernel-backend and precompute-store selection are env-driven by
    # contract ($REPRO_KERNELS / $REPRO_PRECOMP_DIR / _MEMO_TRACES):
    # both choose *where/how* bit-identical results are computed, never
    # the results themselves, and workers must inherit the parent's
    # choice through the environment.
    "repro/simgpu/_kernels.py",
    "repro/simgpu/precomp_store.py",
)


def _is_allowlisted(relpath: str) -> bool:
    normalized = relpath.replace("\\", "/")
    return any(fragment in normalized for fragment in ENV_TIME_ALLOWLIST)


@rule(
    "DET001",
    name="unseeded-global-random",
    hint=(
        "use repro.util.rng.make_rng / np.random.default_rng(seed) (or "
        "random.Random(seed)) instead of the global RNG stream"
    ),
)
def unseeded_global_random(ctx: "ModuleContext") -> Iterator[Finding]:
    """Global-stream RNG calls make results depend on call *order*.

    ``np.random.rand()`` and friends draw from interpreter-global state,
    so any reordering — a new worker schedule, an extra draw added three
    modules away — changes every number downstream.  Task code must
    derive a generator from an explicit seed
    (:func:`repro.util.rng.spawn_worker_seed` exists for exactly this).
    """
    this = get_rule("DET001")
    module = ctx.module
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        qualname = resolve_qualname(node.func, module.import_map)
        if qualname is None:
            continue
        for api in _RANDOM_MODULES:
            prefix = api + "."
            if qualname.startswith(prefix):
                tail = qualname[len(prefix):].split(".")[0]
                if tail not in _RANDOM_ALLOWED_TAILS:
                    yield this.finding(
                        module.relpath,
                        node.lineno,
                        node.col_offset,
                        f"call to global-state RNG {qualname}()",
                    )
                break


@rule(
    "DET002",
    name="wall-clock-read",
    hint=(
        "derive timing from inputs, or move the read into repro.obs "
        "(timestamps belong to observability, not computation)"
    ),
)
def wall_clock_read(ctx: "ModuleContext") -> Iterator[Finding]:
    """Wall-clock reads poison cache keys and parallel parity.

    ``time.time()`` differs between the run that populated the cache
    and the run that reads it; any value derived from it breaks the
    serial == parallel == cached contract.  Only the observability
    layer (span anchors, manifests, log records) may read the clock —
    those paths are allowlisted.  ``time.perf_counter`` is fine
    anywhere: it measures durations for telemetry and never feeds
    results.
    """
    this = get_rule("DET002")
    module = ctx.module
    if _is_allowlisted(module.relpath):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        qualname = resolve_qualname(node.func, module.import_map)
        if qualname in _WALL_CLOCK_CALLS:
            yield this.finding(
                module.relpath,
                node.lineno,
                node.col_offset,
                f"wall-clock read {qualname}() outside the obs allowlist",
            )


@rule(
    "DET003",
    name="environ-read",
    hint=(
        "thread the value through explicit configuration (CLI flag or "
        "function parameter) so it participates in cache keys"
    ),
)
def environ_read(ctx: "ModuleContext") -> Iterator[Finding]:
    """Environment reads are invisible inputs the cache key can't see.

    Two hosts with different ``$FOO`` would share a cache entry while
    computing different results.  The two sanctioned reads —
    ``REPRO_CACHE_DIR`` (changes *where* artifacts live, never their
    content) and the datasets full-scale toggle — live in allowlisted
    paths.
    """
    this = get_rule("DET003")
    module = ctx.module
    if _is_allowlisted(module.relpath):
        return
    for node in ast.walk(module.tree):
        qualname = resolve_qualname(node, module.import_map)
        if qualname == "os.environ":
            yield this.finding(
                module.relpath,
                node.lineno,
                node.col_offset,
                "read of os.environ outside the configuration allowlist",
            )
        elif isinstance(node, ast.Call):
            fn_qualname = resolve_qualname(node.func, module.import_map)
            if fn_qualname == "os.getenv":
                yield this.finding(
                    module.relpath,
                    node.lineno,
                    node.col_offset,
                    "call to os.getenv() outside the configuration allowlist",
                )


_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}


@rule(
    "DET004",
    name="mutable-default-arg",
    hint="default to None and construct the container inside the function body",
)
def mutable_default_arg(ctx: "ModuleContext") -> Iterator[Finding]:
    """A mutable default is one object shared by every call.

    State accumulated in it leaks across calls — and across tasks when
    the function runs inline (``jobs=1``) but *not* when each worker
    process gets a fresh module copy, which is precisely the kind of
    serial-vs-parallel divergence this subsystem exists to prevent.
    """
    this = get_rule("DET004")
    module = ctx.module
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, _MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CONSTRUCTORS
            )
            if mutable:
                label = (
                    node.name
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    else "<lambda>"
                )
                yield this.finding(
                    module.relpath,
                    default.lineno,
                    default.col_offset,
                    f"mutable default argument in {label}()",
                )


_DICT_VIEW_METHODS = {"items", "keys", "values"}


def _hashlib_callers(module_tree: ast.Module, import_map: Dict[str, str]) -> Set[str]:
    """Names of functions that construct digests, directly or one hop away."""
    direct: Set[str] = set()
    calls_by_fn: Dict[str, Set[str]] = {}
    for fn in iter_functions(module_tree):
        called: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                qualname = resolve_qualname(node.func, import_map)
                if qualname and qualname.startswith("hashlib."):
                    direct.add(fn.name)
                if isinstance(node.func, ast.Name):
                    called.add(node.func.id)
        calls_by_fn[fn.name] = called
    # One propagation round: functions calling a direct hasher are digest
    # context too (task_key -> _sha256_hex is the repo's own shape).
    indirect = {
        name for name, called in calls_by_fn.items() if called & direct
    }
    return direct | indirect


@rule(
    "DET005",
    name="unsorted-digest-input",
    hint=(
        "wrap the iteration in sorted(...) or pass sort_keys=True so the "
        "digest is independent of insertion order"
    ),
)
def unsorted_digest_input(ctx: "ModuleContext") -> Iterator[Finding]:
    """Digest inputs must not depend on dict insertion order.

    Cache keys are SHA-256 over canonical text; feeding them
    ``dict.items()`` in insertion order (or ``json.dumps`` without
    ``sort_keys=True``) makes two semantically identical configs hash
    differently — a silent cache *miss* at best, and a silent *hit*
    across genuinely different inputs if insertion order ever encodes
    meaning.  The rule scans functions that construct digests (call
    ``hashlib.*`` directly or via one local helper).
    """
    this = get_rule("DET005")
    module = ctx.module
    digest_fns = _hashlib_callers(module.tree, module.import_map)
    if not digest_fns:
        return
    for fn in iter_functions(module.tree):
        if fn.name not in digest_fns:
            continue
        for node, parents in walk_with_parents(fn):
            if isinstance(node, ast.Call):
                qualname = resolve_qualname(node.func, module.import_map)
                if qualname == "json.dumps" and not is_constant(
                    call_keyword(node, "sort_keys"), True
                ):
                    yield this.finding(
                        module.relpath,
                        node.lineno,
                        node.col_offset,
                        f"json.dumps() without sort_keys=True in digest "
                        f"function {fn.name}()",
                    )
                    continue
            view_call = _bare_dict_view_iteration(node)
            if view_call is not None:
                yield this.finding(
                    module.relpath,
                    view_call.lineno,
                    view_call.col_offset,
                    f"iteration over dict .{view_call.func.attr}() in digest "
                    f"function {fn.name}() without sorted()",
                )


def _bare_dict_view_iteration(node: ast.AST) -> Optional[ast.Call]:
    """The ``x.items()``-style call iterated without an ordering wrapper."""
    iters: List[ast.expr] = []
    if isinstance(node, (ast.For, ast.AsyncFor)):
        iters.append(node.iter)
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        iters.extend(gen.iter for gen in node.generators)
    for candidate in iters:
        if (
            isinstance(candidate, ast.Call)
            and isinstance(candidate.func, ast.Attribute)
            and candidate.func.attr in _DICT_VIEW_METHODS
            and not candidate.args
            and not candidate.keywords
        ):
            return candidate
    return None
