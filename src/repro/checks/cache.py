"""Incremental analysis cache for ``repro check``.

The checker is pure: findings for a file depend only on the file's
bytes (module rules) or on the bytes of every analyzed file (project
rules).  That makes caching a content-addressing problem, not an
invalidation problem — each entry is keyed by a SHA-256 digest of the
inputs, so a stale hit is impossible by construction and there is
nothing to expire.

Layout: one JSON file per *ruleset signature* under
``.repro/checks-cache/``.  The signature hashes the selected rule ids
together with :data:`repro.checks.registry.RULESET_VERSION`, so
``--select`` variations coexist and bumping the version abandons every
old entry at once.  Inside a cache file:

- ``files`` maps relpath → ``{digest, findings, suppressed}`` with the
  *post-noqa* module-scope findings for that exact content;
- ``project`` holds the project-scope findings keyed by a digest of
  the whole ``(relpath, digest)`` file set.

A warm run over an unchanged tree therefore parses nothing and
re-analyzes zero files; editing one file re-runs module rules on that
file only (project rules are whole-program by nature and re-run
whenever any input changed).  Entries merge across invocations, so a
run over a subdirectory seeds hits for a later run over the full tree.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.checks.findings import Finding
from repro.checks.registry import RULESET_VERSION

CACHE_VERSION = 1

#: Default on-disk location, cwd-relative (next to ``.repro/runs``).
DEFAULT_CACHE_DIR = Path(".repro") / "checks-cache"


def ruleset_signature(rule_ids: Sequence[str]) -> str:
    """Stable hex key for one (ruleset version, selected rules) pair."""
    payload = json.dumps(
        [RULESET_VERSION, sorted(set(rule_ids))], sort_keys=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def file_digest(data: bytes) -> str:
    """Content digest used for both file entries and the project key."""
    return hashlib.sha256(data).hexdigest()


def project_digest(digests: Dict[str, str]) -> str:
    """One digest over the whole analyzed file set (paths and contents)."""
    payload = json.dumps(sorted(digests.items()), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CachedResult:
    """Findings replayed from (or destined for) one cache slot."""

    findings: List[Finding]
    suppressed: int


def _dump_result(result: CachedResult) -> Dict[str, object]:
    return {
        "findings": [f.as_dict() for f in result.findings],
        "suppressed": result.suppressed,
    }


def _load_result(payload: object) -> Optional[CachedResult]:
    if not isinstance(payload, dict):
        return None
    raw = payload.get("findings")
    suppressed = payload.get("suppressed")
    if not isinstance(raw, list) or not isinstance(suppressed, int):
        return None
    try:
        findings = [Finding.from_dict(item) for item in raw]
    except (TypeError, KeyError, ValueError):
        return None
    return CachedResult(findings=findings, suppressed=suppressed)


@dataclass
class CheckCache:
    """One signature's cache file: load, query, update, persist.

    Corruption is never fatal — an unreadable cache file deserializes
    to an empty cache and the next :meth:`save` rewrites it; losing a
    cache costs one cold run, trusting a bad one would cost
    correctness.
    """

    root: Path = DEFAULT_CACHE_DIR
    signature: str = ""
    _files: Dict[str, Dict[str, object]] = field(default_factory=dict)
    _project: Dict[str, object] = field(default_factory=dict)
    _dirty: bool = field(default=False, repr=False)

    @property
    def path(self) -> Path:
        return self.root / f"{self.signature or 'default'}.json"

    def load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("version") != CACHE_VERSION:
            return
        if payload.get("signature") != self.signature:
            return
        files = payload.get("files")
        if isinstance(files, dict):
            self._files = files
        project = payload.get("project")
        if isinstance(project, dict):
            self._project = project

    def save(self) -> None:
        if not self._dirty:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_VERSION,
            "signature": self.signature,
            "files": self._files,
            "project": self._project,
        }
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        tmp.replace(self.path)
        self._dirty = False

    # -- per-file module-scope entries ---------------------------------

    def get_file(self, relpath: str, digest: str) -> Optional[CachedResult]:
        entry = self._files.get(relpath)
        if not isinstance(entry, dict) or entry.get("digest") != digest:
            return None
        return _load_result(entry)

    def put_file(
        self, relpath: str, digest: str, result: CachedResult
    ) -> None:
        entry = _dump_result(result)
        entry["digest"] = digest
        self._files[relpath] = entry
        self._dirty = True

    # -- whole-project entry -------------------------------------------

    def get_project(self, digest: str) -> Optional[CachedResult]:
        if self._project.get("digest") != digest:
            return None
        return _load_result(self._project)

    def put_project(self, digest: str, result: CachedResult) -> None:
        entry = _dump_result(result)
        entry["digest"] = digest
        self._project = entry
        self._dirty = True


def open_cache(
    rule_ids: Sequence[str], root: Optional[Path] = None
) -> CheckCache:
    """A loaded cache for this rule selection (missing file → empty)."""
    cache = CheckCache(
        root=root or DEFAULT_CACHE_DIR,
        signature=ruleset_signature(rule_ids),
    )
    cache.load()
    return cache
