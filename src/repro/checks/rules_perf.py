"""Performance anti-pattern rules (PERF001).

The sweep fast path exists because simulating a trace once per
candidate config is the dominant cost of architecture pathfinding:
the per-draw model is identical across configs, so a per-config
``simulate_trace`` loop redoes precompute and the Python dispatch
``num_configs`` times for numbers
:func:`repro.simgpu.batch.simulate_trace_multi` produces in a single
``(num_configs, num_draws)`` pass.  PERF001 keeps the anti-pattern
from creeping back in.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional, Set, Tuple

from repro.checks.findings import Finding
from repro.checks.registry import get_rule, rule

if TYPE_CHECKING:
    from repro.checks.engine import ModuleContext

#: Whole-trace simulation entry points that a per-config loop multiplies.
_SIM_CALL_NAMES = frozenset({"simulate_trace", "simulate_trace_batch"})

#: Identifier fragments that mark a loop as iterating architecture
#: points rather than workloads.
_CONFIG_HINTS = ("config", "clock", "candidate")


def _identifiers(node: ast.AST) -> Iterator[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def _iterates_configs(target: ast.AST, iterable: ast.AST) -> bool:
    """Does this loop head look like iteration over candidate configs?"""
    for node in (target, iterable):
        for identifier in _identifiers(node):
            lowered = identifier.lower()
            if any(hint in lowered for hint in _CONFIG_HINTS):
                return True
    return False


def _call_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _sim_calls(body: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(body):
        if isinstance(node, ast.Call) and _call_name(node) in _SIM_CALL_NAMES:
            yield node


@rule(
    "PERF001",
    name="simulate-trace-per-config-loop",
    severity="warning",
    hint=(
        "evaluate every candidate in one pass with "
        "repro.simgpu.batch.simulate_trace_multi (or simulate_frame_multi "
        "against a ConfigTable); a per-config simulate_trace loop redoes "
        "the trace precompute and the Python dispatch once per config"
    ),
)
def simulate_trace_per_config_loop(ctx: "ModuleContext") -> Iterator[Finding]:
    """Whole-trace simulation inside a loop over candidate configs.

    An architecture sweep that calls ``simulate_trace`` (or
    ``simulate_trace_batch``) once per config scales its cost with the
    candidate count even though every per-draw input except the config
    columns is loop-invariant.  The config-vectorized path evaluates all
    candidates against one :class:`~repro.simgpu.batch.FramePrecomp` as
    a single ``(num_configs, num_draws)`` numpy pass with identical
    results.  A loop counts as "over configs" when its target or
    iterable names configs, clocks, or candidates; deliberate reference
    loops (cross-checking the scalar simulator) carry
    ``# repro: noqa[PERF001]``.
    """
    this = get_rule("PERF001")
    module = ctx.module
    seen: Set[Tuple[int, int]] = set()

    def emit(call: ast.Call) -> Iterator[Finding]:
        anchor = (call.lineno, call.col_offset)
        if anchor in seen:
            return
        seen.add(anchor)
        yield this.finding(
            module.relpath,
            call.lineno,
            call.col_offset,
            f"{_call_name(call)}() runs once per config in a loop over "
            f"candidate configs",
        )

    for node in ast.walk(module.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _iterates_configs(node.target, node.iter):
                for statement in node.body:
                    for call in _sim_calls(statement):
                        yield from emit(call)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            if any(
                _iterates_configs(gen.target, gen.iter)
                for gen in node.generators
            ):
                elements = (
                    (node.key, node.value)
                    if isinstance(node, ast.DictComp)
                    else (node.elt,)
                )
                for element in elements:
                    for call in _sim_calls(element):
                        yield from emit(call)
