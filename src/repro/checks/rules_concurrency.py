"""Lock-discipline race detection (CONC001–CONC003).

The service runs real concurrency: executor worker threads, one HTTP
thread per request, and stores shared between both.  These rules encode
the discipline that keeps that safe, using the project call graph
(:mod:`repro.checks.callgraph`) to find *threaded classes* — classes
whose methods run on more than one thread because a bound method is a
``threading.Thread`` target, the class is an HTTP request handler, or
its methods are reachable from such an entry point through project
calls (a store used by the worker pool is threaded even though it never
spawns a thread itself).

For each threaded class that owns a lock (``self._lock =
threading.Lock()``), the rules infer the *guarded set*: every private
attribute written at least once inside a ``with self._lock:`` block
outside ``__init__``.  Then:

- **CONC001** — a guarded attribute is *read* (or mutated through a
  non-write path) outside any lock region: the reader can observe a
  torn update.
- **CONC002** — a guarded attribute is *written* both under the lock
  and without it: the classic lost-update race, worse than CONC001
  because both sides mutate.
- **CONC003** — a blocking call made while holding the lock:
  ``Thread.join``, ``queue.get()`` with no timeout, or any call whose
  transitive project call chain reaches file I/O (``open``,
  ``Path.glob``, ``os.replace``, …).  Everything sharing that lock
  stalls behind the disk for the duration.

``__init__`` bodies are exempt (no concurrent access before the object
escapes the constructor), as are attributes holding thread-safe types
(``queue.Queue``, ``threading.Event``, locks themselves) and bodies of
nested ``def``/``lambda`` (they run at call time, not where they appear).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Set,
)

import repro.checks.callgraph as cg
from repro.checks.findings import Finding
from repro.checks.registry import get_rule, rule

if TYPE_CHECKING:
    from repro.checks.engine import ProjectContext

#: Method names that mutate their receiver in place — calling one on a
#: guarded attribute is a write to that attribute.
MUTATING_METHODS: FrozenSet[str] = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)

#: Import-resolved dotted names that block the calling thread.
BLOCKING_QUALNAMES: FrozenSet[str] = frozenset(
    {
        "json.dump",
        "json.load",
        "os.fsync",
        "os.makedirs",
        "os.mkdir",
        "os.remove",
        "os.rename",
        "os.replace",
        "os.unlink",
        "shutil.copy",
        "shutil.copytree",
        "shutil.move",
        "shutil.rmtree",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.run",
        "tempfile.mkstemp",
        "time.sleep",
    }
)

#: Raw call names distinctive enough to mean file I/O even unresolved —
#: the ``pathlib.Path`` API plus the ``open`` builtin.
BLOCKING_RAW_NAMES: FrozenSet[str] = frozenset(
    {
        "glob",
        "iterdir",
        "mkstemp",
        "open",
        "read_bytes",
        "read_text",
        "rglob",
        "touch",
        "write_bytes",
        "write_text",
    }
)

#: Receiver-name fragments that mark ``<obj>.join()`` as a thread join
#: (and keep ``", ".join(...)`` / ``os.path.join`` out of scope).
_THREADY_FRAGMENTS = ("thread", "worker", "proc")

_QUEUE_FRAGMENTS = ("queue", "_q")


@dataclass
class _Access:
    """One read or write of a private attribute inside a method."""

    attr: str
    lineno: int
    col: int
    is_write: bool
    lock: Optional[str]  # lock attr held at the access, if any
    method: str


@dataclass
class _LockedCall:
    """One call made while holding a lock."""

    node: ast.Call
    site_name: str
    lock: str
    method: str


@dataclass
class _ClassScan:
    """Everything the three rules need about one threaded locked class."""

    info: cg.ClassInfo
    accesses: List[_Access] = field(default_factory=list)
    locked_calls: List[_LockedCall] = field(default_factory=list)


class _MethodScanner(ast.NodeVisitor):
    """Walk one method body tracking which lock (if any) is held.

    Nested function/lambda/class bodies are skipped entirely: their code
    runs when *called*, so neither their accesses nor the enclosing
    lock state apply to them statically.
    """

    def __init__(self, scan: _ClassScan, method: str) -> None:
        self.scan = scan
        self.method = method
        self.lock_held: Optional[str] = None
        #: Attribute node ids already classified by a write path.
        self._tracked: Set[int] = set()

    # -- helpers -----------------------------------------------------------

    def _self_attr(self, node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _is_tracked_attr(self, attr: str) -> bool:
        info = self.scan.info
        return (
            attr.startswith("_")
            and attr not in info.lock_attrs
            and attr not in info.threadsafe_attrs
        )

    def _record(
        self, node: ast.AST, attr: str, *, is_write: bool
    ) -> None:
        if not self._is_tracked_attr(attr):
            return
        self.scan.accesses.append(
            _Access(
                attr=attr,
                lineno=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                is_write=is_write,
                lock=self.lock_held,
                method=self.method,
            )
        )

    def _classify_target(self, target: ast.expr) -> None:
        attr = self._self_attr(target)
        if attr is not None:
            self._tracked.add(id(target))
            self._record(target, attr, is_write=True)
            return
        if isinstance(target, ast.Subscript):
            base_attr = self._self_attr(target.value)
            if base_attr is not None:
                self._tracked.add(id(target.value))
                self._record(target.value, base_attr, is_write=True)
            else:
                self.visit(target.value)
            self.visit(target.slice)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._classify_target(element)
            return
        if isinstance(target, ast.Starred):
            self._classify_target(target.value)
            return
        self.generic_visit(target)

    # -- structure ---------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # nested def: runs later, out of scope

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return

    def visit_With(self, node: ast.With) -> None:
        acquired: Optional[str] = None
        for item in node.items:
            self.visit(item.context_expr)
            attr = self._self_attr(item.context_expr)
            if attr is not None and attr in self.scan.info.lock_attrs:
                acquired = attr
        if acquired is None:
            for stmt in node.body:
                self.visit(stmt)
            return
        previous = self.lock_held
        self.lock_held = acquired
        try:
            for stmt in node.body:
                self.visit(stmt)
        finally:
            self.lock_held = previous

    # -- accesses ----------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._classify_target(target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._classify_target(node.target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._classify_target(node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._classify_target(target)

    def visit_Call(self, node: ast.Call) -> None:
        if self.lock_held is not None:
            self.scan.locked_calls.append(
                _LockedCall(
                    node=node,
                    site_name=_call_name(node),
                    lock=self.lock_held,
                    method=self.method,
                )
            )
        func = node.func
        if isinstance(func, ast.Attribute):
            base_attr = self._self_attr(func.value)
            if base_attr is not None:
                self._tracked.add(id(func.value))
                self._record(
                    func.value,
                    base_attr,
                    is_write=func.attr in MUTATING_METHODS,
                )
            else:
                self.visit(func.value)
        else:
            self.visit(func)
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if id(node) in self._tracked:
            return
        attr = self._self_attr(node)
        if attr is not None:
            self._record(node, attr, is_write=False)
            return
        self.visit(node.value)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        base_attr = self._self_attr(node.value)
        if base_attr is not None and id(node.value) not in self._tracked:
            self._tracked.add(id(node.value))
            self._record(node.value, base_attr, is_write=False)
        else:
            self.visit(node.value)
        self.visit(node.slice)


def _call_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return "<expr>"


def _receiver_names(call: ast.Call) -> List[str]:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return []
    names: List[str] = []
    for node in ast.walk(func.value):
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
        elif isinstance(node, ast.Constant):
            return []  # literal receiver: ", ".join(...) etc.
    return names


def _scan_classes(graph: cg.CallGraph) -> List[_ClassScan]:
    """Per-class access/lock data for every threaded class with a lock."""
    threaded = graph.threaded_classes()
    scans: List[_ClassScan] = []
    for qualname in sorted(threaded):
        info = graph.classes.get(qualname)
        if info is None or not info.lock_attrs:
            continue
        scan = _ClassScan(info=info)
        for method_name, method_qual in sorted(info.methods.items()):
            if method_name == "__init__":
                continue
            node = graph.node_for(method_qual)
            if node is None:
                continue
            scanner = _MethodScanner(scan, method_name)
            for stmt in node.body:
                scanner.visit(stmt)
        scans.append(scan)
    return scans


def _guarded_attrs(scan: _ClassScan) -> Dict[str, str]:
    """Attr -> lock it is written under (attrs with >=1 in-lock write)."""
    guarded: Dict[str, str] = {}
    for access in scan.accesses:
        if access.is_write and access.lock is not None:
            guarded.setdefault(access.attr, access.lock)
    return guarded


@rule(
    "CONC001",
    name="unguarded-read-of-locked-attribute",
    severity="error",
    scope="project",
    hint=(
        "take the same lock that guards the attribute's writes (with "
        "self.<lock>:) around this access, or snapshot the value under "
        "the lock first"
    ),
)
def unguarded_read(ctx: "ProjectContext") -> Iterator[Finding]:
    """A lock-guarded attribute read outside the lock in a threaded class.

    If every write to ``self._x`` happens under ``self._lock``, a read
    without it can interleave with a writer mid-update — on dicts and
    lists that is a live ``RuntimeError`` or a torn view, and even for
    scalars it reads stale state the lock was meant to order.
    """
    this = get_rule("CONC001")
    graph = ctx.callgraph()
    for scan in _scan_classes(graph):
        guarded = _guarded_attrs(scan)
        for access in scan.accesses:
            if access.lock is not None or access.attr not in guarded:
                continue
            if access.is_write:
                continue  # CONC002's case
            yield this.finding(
                scan.info.relpath,
                access.lineno,
                access.col,
                f"{scan.info.name}.{access.attr} is written under "
                f"self.{guarded[access.attr]} but read here without it "
                f"(in {access.method}); methods of {scan.info.name} run "
                f"on multiple threads",
            )


@rule(
    "CONC002",
    name="inconsistently-guarded-write",
    severity="error",
    scope="project",
    hint=(
        "move this write inside `with self.<lock>:` — every mutation of "
        "a shared attribute must hold the same lock or none of them are "
        "protected"
    ),
)
def inconsistent_write(ctx: "ProjectContext") -> Iterator[Finding]:
    """A lock-guarded attribute written outside the lock elsewhere.

    Guarding *some* writes buys nothing: the unguarded writer races the
    guarded ones and both can lose updates.  This is the strongest CONC
    signal — two mutation paths with different disciplines.
    """
    this = get_rule("CONC002")
    graph = ctx.callgraph()
    for scan in _scan_classes(graph):
        guarded = _guarded_attrs(scan)
        for access in scan.accesses:
            if access.lock is not None or access.attr not in guarded:
                continue
            if not access.is_write:
                continue
            yield this.finding(
                scan.info.relpath,
                access.lineno,
                access.col,
                f"{scan.info.name}.{access.attr} is written here without "
                f"a lock (in {access.method}) but other writes hold "
                f"self.{guarded[access.attr]}; inconsistent guarding is "
                f"a lost-update race",
            )


@dataclass
class _BlockingIndex:
    """Precomputed file-I/O reachability, shared across CONC003 sites."""

    #: functions containing a direct I/O primitive call
    primitives: Set[str]
    #: functions whose transitive project call chain reaches one
    reaching: Set[str]


def _blocking_index(graph: cg.CallGraph) -> _BlockingIndex:
    primitives: Set[str] = set()
    for caller, sites in graph.sites.items():
        if any(_is_blocking_primitive(site) for site in sites):
            primitives.add(caller)
    return _BlockingIndex(
        primitives=primitives, reaching=graph.reaching_set(primitives)
    )


def _is_blocking_primitive(site: cg.CallSite) -> bool:
    if site.dotted is not None and site.dotted in BLOCKING_QUALNAMES:
        return True
    return site.callee is None and site.name in BLOCKING_RAW_NAMES


def _blocking_reason(
    graph: cg.CallGraph,
    index: _BlockingIndex,
    call: ast.Call,
    scan: _ClassScan,
    method: str,
) -> Optional[str]:
    """Why this in-lock call blocks, or ``None`` if it doesn't.

    Checked in order: thread join, untimed queue get, direct I/O
    primitive, then a resolved project callee whose transitive chain
    reaches an I/O primitive (the chain is named in the message).
    """
    name = _call_name(call)
    receivers = [r.lower() for r in _receiver_names(call)]
    if name == "join" and any(
        frag in recv for recv in receivers for frag in _THREADY_FRAGMENTS
    ):
        return "join() waits for a thread"
    if (
        name == "get"
        and not call.args
        and all(kw.arg != "timeout" for kw in call.keywords)
        and any(
            frag in recv for recv in receivers for frag in _QUEUE_FRAGMENTS
        )
    ):
        return "queue get() with no timeout can wait forever"
    method_qual = scan.info.methods.get(method)
    if method_qual is None:
        return None
    for site in graph.sites.get(method_qual, ()):
        if site.lineno != call.lineno or site.col != call.col_offset:
            continue
        if _is_blocking_primitive(site):
            return f"{site.name}() performs file I/O"
        if site.callee is not None and site.callee in index.reaching:
            chain = _chain_text(graph, index, site.callee)
            return f"{_short(site.callee)}(){chain} performs file I/O"
        return None
    return None


def _chain_text(
    graph: cg.CallGraph, index: _BlockingIndex, start: str
) -> str:
    chain = graph.call_chain(start, index.primitives)
    if not chain:
        return ""
    hops = " -> ".join(_short(str(site.callee)) for site in chain)
    return f" -> {hops}"


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


@rule(
    "CONC003",
    name="blocking-call-under-lock",
    severity="error",
    scope="project",
    hint=(
        "do the blocking work (store/file I/O, joins, untimed queue "
        "gets) outside the `with self.<lock>:` block and keep the "
        "critical section to in-memory state"
    ),
)
def blocking_under_lock(ctx: "ProjectContext") -> Iterator[Finding]:
    """A blocking call made while holding a class lock.

    Every thread sharing the lock — request handlers answering
    ``GET /v1/jobs``, workers finishing jobs — stalls behind this disk
    write or join for its full duration.  Critical sections must stay
    in-memory; persist before or after.
    """
    this = get_rule("CONC003")
    graph = ctx.callgraph()
    index = _blocking_index(graph)
    for scan in _scan_classes(graph):
        for locked in scan.locked_calls:
            reason = _blocking_reason(
                graph, index, locked.node, scan, locked.method
            )
            if reason is None:
                continue
            yield this.finding(
                scan.info.relpath,
                locked.node.lineno,
                locked.node.col_offset,
                f"{reason} while {scan.info.name}.{locked.method} holds "
                f"self.{locked.lock}",
            )
