"""The committed findings baseline.

A baseline is the reviewed debt list: findings that predate a rule (or
are accepted for a stated reason) live in a committed JSON file, and CI
fails only on findings *not* in it.  Matching is by line-independent
fingerprint — ``(rule, path, message)`` — with multiplicity, so an edit
that moves a grandfathered violation doesn't break the build but a
*second* occurrence of the same violation does.

The file is written sorted and pretty-printed so diffs review like
code: shrinking the baseline is progress you can see, and
:func:`apply` reports entries that no longer match anything (stale
debt to delete).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.checks.findings import Finding
from repro.errors import CheckError

BASELINE_VERSION = 1

#: Default committed location, repo-root relative.
DEFAULT_BASELINE_NAME = ".repro-baseline.json"


@dataclass
class BaselineResult:
    """Outcome of subtracting a baseline from a report."""

    new_findings: List[Finding]
    baselined: List[Finding]
    stale_entries: List[Dict[str, str]]


def _entry(finding: Finding) -> Dict[str, str]:
    return {
        "rule": finding.rule_id,
        "path": finding.path,
        "message": finding.message,
    }


def _entry_fingerprint(entry: Dict[str, str]) -> str:
    try:
        return f"{entry['rule']}::{entry['path']}::{entry['message']}"
    except KeyError as exc:
        raise CheckError(
            f"baseline entry is missing the {exc.args[0]!r} field: {entry!r}"
        ) from None


def write_entries(entries: List[Dict[str, str]], path: Path) -> None:
    """Persist raw entries as the baseline (sorted, diff-friendly)."""
    ordered = sorted(
        entries, key=lambda e: (e["path"], e["rule"], e["message"])
    )
    payload = {"version": BASELINE_VERSION, "entries": ordered}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def write(findings: List[Finding], path: Path) -> None:
    """Persist ``findings`` as the new baseline (sorted, diff-friendly)."""
    write_entries([_entry(finding) for finding in findings], path)


def prune(
    entries: List[Dict[str, str]], stale: List[Dict[str, str]]
) -> List[Dict[str, str]]:
    """``entries`` minus ``stale``, with multiset semantics.

    Two identical grandfathered violations where only one went away
    must keep exactly one entry, so removal is counted, not set-based.
    """
    budget: Counter = Counter(_entry_fingerprint(e) for e in stale)
    kept: List[Dict[str, str]] = []
    for entry in entries:
        fingerprint = _entry_fingerprint(entry)
        if budget.get(fingerprint, 0) > 0:
            budget[fingerprint] -= 1
            continue
        kept.append(entry)
    return kept


def load(path: Path) -> List[Dict[str, str]]:
    """Read a baseline file, validating shape and version."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise CheckError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "entries" not in payload:
        raise CheckError(f"baseline {path} has no 'entries' list")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise CheckError(
            f"baseline {path} has version {version!r}; this tool reads "
            f"version {BASELINE_VERSION}"
        )
    entries = payload["entries"]
    if not isinstance(entries, list):
        raise CheckError(f"baseline {path} 'entries' must be a list")
    for entry in entries:
        _entry_fingerprint(entry)  # shape validation
    return entries


def apply(
    findings: List[Finding], entries: List[Dict[str, str]]
) -> BaselineResult:
    """Split findings into new-vs-baselined; report stale entries.

    Multiset semantics: a baseline entry absorbs exactly one matching
    finding, so the baseline can never hide *growth* of a violation
    the rule already knows about.
    """
    budget: Counter = Counter(_entry_fingerprint(e) for e in entries)
    new_findings: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        if budget.get(finding.fingerprint, 0) > 0:
            budget[finding.fingerprint] -= 1
            baselined.append(finding)
        else:
            new_findings.append(finding)
    stale: List[Dict[str, str]] = []
    for entry in entries:
        fingerprint = _entry_fingerprint(entry)
        if budget.get(fingerprint, 0) > 0:
            budget[fingerprint] -= 1
            stale.append(entry)
    return BaselineResult(
        new_findings=new_findings, baselined=baselined, stale_entries=stale
    )


def find_default(start: Optional[Path] = None) -> Optional[Path]:
    """The nearest committed baseline, walking up from ``start`` (cwd)."""
    cursor = (start or Path.cwd()).resolve()
    for candidate_dir in [cursor] + list(cursor.parents):
        candidate = candidate_dir / DEFAULT_BASELINE_NAME
        if candidate.exists():
            return candidate
    return None
