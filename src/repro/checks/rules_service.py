"""Service-layering rule (SVC001).

The service exists so that simulation work is *queued*: submissions are
validated, persisted, deduplicated against in-flight twins, and executed
by the worker pool with bounded concurrency.  An HTTP handler (or any
request-path code) that calls a simulation entry point directly bypasses
all of that — the request thread blocks for the whole simulation, the
queue limit stops meaning anything, and identical submissions stop
coalescing.  SVC001 pins the layering: inside ``repro/service/`` only
the executor module may invoke simulation or pipeline entry points.

The rule is *transitive*: a handler that reaches ``simulate_trace``
through any chain of helper calls — even helpers in other modules —
fails the same way a direct call does, and the finding prints the
offending chain.  Reachability runs over the project call graph
(:mod:`repro.checks.callgraph`); thread-spawn edges are not followed,
so handing work to the executor's worker pool (the sanctioned path)
never counts as "reaching simulation".
"""

from __future__ import annotations

import ast
from typing import (
    TYPE_CHECKING,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    cast,
)

import repro.checks.callgraph as cg
from repro.checks.findings import Finding
from repro.checks.registry import Rule, get_rule, rule

if TYPE_CHECKING:
    from repro.checks.engine import ProjectContext

#: Simulation/pipeline entry points that must stay behind the job queue.
SIM_ENTRY_POINTS = frozenset(
    {
        "simulate_trace",
        "simulate_trace_batch",
        "simulate_trace_multi",
        "simulate_frames",
        "simulate_frames_many",
        "cluster_frames",
        "run_pipeline",
        "pathfinding_sweep",
    }
)

#: Receiver-name fragments that mark an ``<obj>.run(...)`` call as a
#: pipeline invocation (``SubsettingPipeline.run`` is the entry point,
#: but the receiver is whatever variable holds the pipeline).
_PIPELINE_RECEIVER_HINTS = ("pipeline",)

#: The one service module allowed to reach the engine: jobs flow
#: through the executor's queue and worker pool by design.  Matching is
#: on the normalized (posix) relpath.
SERVICE_EXECUTOR_ALLOWLIST = ("service/executor.py",)


def _in_service(relpath: str) -> bool:
    normalized = relpath.replace("\\", "/")
    return "/service/" in normalized or normalized.startswith("service/")


def _is_allowlisted(relpath: str) -> bool:
    normalized = relpath.replace("\\", "/")
    return any(
        fragment in normalized for fragment in SERVICE_EXECUTOR_ALLOWLIST
    )


def _call_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _receiver_names(call: ast.Call) -> Iterator[str]:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return
    for node in ast.walk(func.value):
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr


def _is_pipeline_run(call: ast.Call) -> bool:
    if _call_name(call) != "run":
        return False
    for name in _receiver_names(call):
        lowered = name.lower()
        if any(hint in lowered for hint in _PIPELINE_RECEIVER_HINTS):
            return True
    return False


# -- transitive reachability over the call graph ---------------------------


def _is_sim_seed_site(site: cg.CallSite) -> bool:
    """Does this call site invoke a simulation entry point?"""
    if site.name in SIM_ENTRY_POINTS:
        return True
    if site.callee is not None and site.callee.endswith(".run"):
        return "pipeline" in site.callee.lower()
    return False


def sim_reachability(graph: cg.CallGraph) -> Tuple[Set[str], Set[str]]:
    """``(seeds, reaching)``: direct sim callers and who can reach them.

    Shared by SVC001 and OBS002.  Thread-spawn edges are excluded from
    the closure, so enqueueing work for the executor's workers — the
    sanctioned indirection — never puts a handler in the reaching set.
    """
    cached = graph.memo.get("sim_reachability")
    if cached is not None:
        return cast(Tuple[Set[str], Set[str]], cached)
    seeds = {
        caller
        for caller, sites in graph.sites.items()
        if any(_is_sim_seed_site(site) for site in sites)
    }
    result = (seeds, graph.reaching_set(seeds))
    graph.memo["sim_reachability"] = result
    return result


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


def _terminal_sim_call(graph: cg.CallGraph, qualname: str) -> str:
    for site in graph.sites.get(qualname, ()):
        if _is_sim_seed_site(site):
            return site.name
    return "simulation"


def chain_description(
    graph: cg.CallGraph, start: str, seeds: Set[str]
) -> str:
    """``a.b -> c.d -> simulate_trace()`` for the finding message."""
    hops: List[str] = [_short(start)]
    tail = start
    chain = graph.call_chain(start, seeds) or []
    for site in chain:
        tail = str(site.callee)
        hops.append(_short(tail))
    return " -> ".join(hops) + f" -> {_terminal_sim_call(graph, tail)}()"


def transitive_sim_findings(
    graph: cg.CallGraph,
    this: Rule,
    relpath: str,
    *,
    layer: str,
    skip: Set[Tuple[int, int]],
) -> Iterator[Finding]:
    """Findings for calls in ``relpath`` whose chain reaches simulation.

    ``skip`` holds (line, col) positions already reported as direct
    calls, so a resolved direct call is not flagged twice.  ``layer``
    names the violated contract in the message ("service" / "dash").
    """
    seeds, reaching = sim_reachability(graph)
    for info in graph.functions_in(relpath):
        for site in graph.sites.get(info.qualname, ()):
            if site.kind != "call" or site.callee is None:
                continue
            if (site.lineno, site.col) in skip:
                continue
            if site.callee not in reaching:
                continue
            chain = chain_description(graph, site.callee, seeds)
            yield this.finding(
                relpath,
                site.lineno,
                site.col,
                f"{site.name}() transitively runs simulation from "
                f"{layer} code: {chain}",
            )


@rule(
    "SVC001",
    name="service-handler-runs-simulation",
    severity="error",
    scope="project",
    hint=(
        "submit the work through JobExecutor.submit() so it is queued, "
        "bounded, and deduplicated; only repro/service/executor.py may "
        "call simulation or pipeline entry points"
    ),
)
def service_handler_runs_simulation(
    ctx: "ProjectContext",
) -> Iterator[Finding]:
    """Request-path service code invoking the engine, however indirectly.

    Applies to every module under ``repro/service/`` except the
    executor.  A ``simulate_trace`` / ``pipeline.run`` /
    ``pathfinding_sweep`` call in a handler — direct, or at the end of
    any helper chain the call graph can resolve — runs unbounded
    simulation on the request thread: no queue slot, no 429
    backpressure, no coalescing, no job record — the exact failure
    modes the service subsystem was built to prevent.
    """
    this = get_rule("SVC001")
    graph = ctx.callgraph()
    for module in ctx.modules:
        if not _in_service(module.relpath):
            continue
        if _is_allowlisted(module.relpath):
            continue
        direct: Set[Tuple[int, int]] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in SIM_ENTRY_POINTS:
                direct.add((node.lineno, node.col_offset))
                yield this.finding(
                    module.relpath,
                    node.lineno,
                    node.col_offset,
                    f"{name}() called directly from service module "
                    f"{module.relpath}; simulation must go through the "
                    f"job executor",
                )
            elif _is_pipeline_run(node):
                direct.add((node.lineno, node.col_offset))
                yield this.finding(
                    module.relpath,
                    node.lineno,
                    node.col_offset,
                    "pipeline.run() called directly from service module "
                    f"{module.relpath}; simulation must go through the "
                    f"job executor",
                )
        yield from transitive_sim_findings(
            graph, this, module.relpath, layer="service", skip=direct
        )
