"""Service-layering rule (SVC001).

The service exists so that simulation work is *queued*: submissions are
validated, persisted, deduplicated against in-flight twins, and executed
by the worker pool with bounded concurrency.  An HTTP handler (or any
request-path code) that calls a simulation entry point directly bypasses
all of that — the request thread blocks for the whole simulation, the
queue limit stops meaning anything, and identical submissions stop
coalescing.  SVC001 pins the layering: inside ``repro/service/`` only
the executor module may invoke simulation or pipeline entry points.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.checks.findings import Finding
from repro.checks.registry import get_rule, rule

if TYPE_CHECKING:
    from repro.checks.engine import ModuleContext

#: Simulation/pipeline entry points that must stay behind the job queue.
SIM_ENTRY_POINTS = frozenset(
    {
        "simulate_trace",
        "simulate_trace_batch",
        "simulate_trace_multi",
        "simulate_frames",
        "simulate_frames_many",
        "cluster_frames",
        "run_pipeline",
        "pathfinding_sweep",
    }
)

#: Receiver-name fragments that mark an ``<obj>.run(...)`` call as a
#: pipeline invocation (``SubsettingPipeline.run`` is the entry point,
#: but the receiver is whatever variable holds the pipeline).
_PIPELINE_RECEIVER_HINTS = ("pipeline",)

#: The one service module allowed to reach the engine: jobs flow
#: through the executor's queue and worker pool by design.  Matching is
#: on the normalized (posix) relpath.
SERVICE_EXECUTOR_ALLOWLIST = ("service/executor.py",)


def _in_service(relpath: str) -> bool:
    normalized = relpath.replace("\\", "/")
    return "/service/" in normalized or normalized.startswith("service/")


def _is_allowlisted(relpath: str) -> bool:
    normalized = relpath.replace("\\", "/")
    return any(
        fragment in normalized for fragment in SERVICE_EXECUTOR_ALLOWLIST
    )


def _call_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _receiver_names(call: ast.Call) -> Iterator[str]:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return
    for node in ast.walk(func.value):
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr


def _is_pipeline_run(call: ast.Call) -> bool:
    if _call_name(call) != "run":
        return False
    for name in _receiver_names(call):
        lowered = name.lower()
        if any(hint in lowered for hint in _PIPELINE_RECEIVER_HINTS):
            return True
    return False


@rule(
    "SVC001",
    name="service-handler-runs-simulation",
    severity="error",
    hint=(
        "submit the work through JobExecutor.submit() so it is queued, "
        "bounded, and deduplicated; only repro/service/executor.py may "
        "call simulation or pipeline entry points"
    ),
)
def service_handler_runs_simulation(ctx: "ModuleContext") -> Iterator[Finding]:
    """Request-path service code invoking the engine directly.

    Applies to every module under ``repro/service/`` except the
    executor.  A direct ``simulate_trace`` / ``pipeline.run`` /
    ``pathfinding_sweep`` call in a handler runs unbounded simulation on
    the request thread: no queue slot, no 429 backpressure, no
    coalescing, no job record — the exact failure modes the service
    subsystem was built to prevent.
    """
    this = get_rule("SVC001")
    module = ctx.module
    if not _in_service(module.relpath):
        return
    if _is_allowlisted(module.relpath):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name in SIM_ENTRY_POINTS:
            yield this.finding(
                module.relpath,
                node.lineno,
                node.col_offset,
                f"{name}() called directly from service module "
                f"{module.relpath}; simulation must go through the "
                f"job executor",
            )
        elif _is_pipeline_run(node):
            yield this.finding(
                module.relpath,
                node.lineno,
                node.col_offset,
                "pipeline.run() called directly from service module "
                f"{module.relpath}; simulation must go through the "
                f"job executor",
            )
