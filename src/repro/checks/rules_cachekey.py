"""Cache-key completeness rules (KEY001–KEY003).

A content-addressed cache is only as honest as its keys: an input that
doesn't participate in the key means two different computations share
an artifact.  ``runtime/keys.py`` publishes two introspection hooks for
this rule family — :data:`~repro.runtime.keys.KEY_RECORD_FIELDS` (the
fields every key record must carry) and
:data:`~repro.runtime.keys.TASK_FIELD_KEYING` (how each
:class:`~repro.runtime.tasks.Task` dataclass field is, or deliberately
is not, keyed).  The rules cross-check both hooks against the actual
AST, so *adding a task input without extending the key* and *deleting a
field-consumption line from the key builder* are both CI failures.

All three rules are project-scoped: they pair each ``runtime/keys.py``
in the analyzed set with the ``runtime/tasks.py`` beside it, so the
fixtures exercise them the same way the real modules do.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from repro.checks.astutils import ModuleSource
from repro.checks.findings import Finding
from repro.checks.registry import get_rule, rule

if TYPE_CHECKING:
    from repro.checks.engine import ProjectContext

_KEYS_SUFFIX = ("runtime", "keys.py")
_TASKS_SUFFIX = ("runtime", "tasks.py")
_KEYING_HOOK = "TASK_FIELD_KEYING"
_RECORD_HOOK = "KEY_RECORD_FIELDS"
_KEY_BUILDER = "task_key"
_TASK_CLASS = "Task"


def _pairs(
    modules: List[ModuleSource],
) -> Iterator[Tuple[ModuleSource, Optional[ModuleSource]]]:
    """Each ``runtime/keys.py`` with the ``runtime/tasks.py`` beside it."""
    by_dir: Dict[str, Dict[str, ModuleSource]] = {}
    for module in modules:
        parts = module.path.parts
        if len(parts) >= 2 and parts[-2:] == _KEYS_SUFFIX:
            by_dir.setdefault(str(module.path.parent), {})["keys"] = module
        elif len(parts) >= 2 and parts[-2:] == _TASKS_SUFFIX:
            by_dir.setdefault(str(module.path.parent), {})["tasks"] = module
    for _, entry in sorted(by_dir.items()):
        if "keys" in entry:
            yield entry["keys"], entry.get("tasks")


def _dataclass_fields(tree: ast.Module, class_name: str) -> Optional[List[Tuple[str, int]]]:
    """``(field, line)`` for each annotated field of a dataclass."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields = []
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    fields.append((stmt.target.id, stmt.lineno))
            return fields
    return None


def _string_dict_keys(
    tree: ast.Module, name: str
) -> Optional[Tuple[Set[str], int]]:
    """Keys of a module-level ``NAME = {...}`` / ``NAME: T = {...}`` literal."""
    for node in tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if (
            isinstance(target, ast.Name)
            and target.id == name
            and isinstance(value, ast.Dict)
        ):
            keys = {
                key.value
                for key in value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            }
            return keys, node.lineno
    return None


def _string_tuple(
    tree: ast.Module, name: str
) -> Optional[Tuple[List[str], int]]:
    """Members of a module-level ``NAME = ("a", "b", ...)`` literal."""
    for node in tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if (
            isinstance(target, ast.Name)
            and target.id == name
            and isinstance(value, (ast.Tuple, ast.List))
        ):
            members = [
                element.value
                for element in value.elts
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ]
            return members, node.lineno
    return None


def _find_function(
    tree: ast.Module, name: str
) -> Optional[ast.FunctionDef]:
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


@rule(
    "KEY001",
    name="task-field-not-keyed",
    scope="project",
    hint=(
        "add the field to TASK_FIELD_KEYING in runtime/keys.py, stating how "
        "it reaches the cache key (or why it never influences results)"
    ),
)
def task_field_not_keyed(ctx: "ProjectContext") -> Iterator[Finding]:
    """Every ``Task`` dataclass field needs a declared keying policy.

    Adding a field to the task vocabulary without deciding how it
    participates in cache keys is exactly how caches go quietly stale:
    the new input changes results but not keys.  The policy table makes
    that decision explicit and reviewable — an exemption is a documented
    claim, not an accident.
    """
    this = get_rule("KEY001")
    for keys_module, tasks_module in _pairs(ctx.modules):
        if tasks_module is None:
            continue
        fields = _dataclass_fields(tasks_module.tree, _TASK_CLASS)
        if fields is None:
            continue
        hook = _string_dict_keys(keys_module.tree, _KEYING_HOOK)
        if hook is None:
            yield this.finding(
                keys_module.relpath,
                1,
                0,
                f"missing {_KEYING_HOOK} introspection hook "
                f"(required beside {_TASK_CLASS} in {tasks_module.relpath})",
            )
            continue
        declared, hook_line = hook
        for field_name, field_line in fields:
            if field_name not in declared:
                yield this.finding(
                    tasks_module.relpath,
                    field_line,
                    0,
                    f"Task field {field_name!r} has no keying policy in "
                    f"{_KEYING_HOOK} ({keys_module.relpath})",
                )
        field_names = {name for name, _ in fields}
        for stale in sorted(declared - field_names):
            yield this.finding(
                keys_module.relpath,
                hook_line,
                0,
                f"{_KEYING_HOOK} names {stale!r}, which is not a field of "
                f"{_TASK_CLASS} ({tasks_module.relpath})",
                hint="remove the stale entry so the policy table stays exact",
            )


@rule(
    "KEY002",
    name="key-param-not-consumed",
    scope="project",
    hint=(
        "feed the parameter into the key record (digest it if needed) or "
        "remove it from the signature"
    ),
)
def key_param_not_consumed(ctx: "ProjectContext") -> Iterator[Finding]:
    """Every ``task_key`` parameter must flow into the key.

    A parameter the builder accepts but never reads is an input the
    cache cannot see: callers believe they keyed on it, and two calls
    differing only in that input collide on one artifact.  This is the
    rule that fires when a field-consumption line is deleted from
    ``runtime/keys.py``.
    """
    this = get_rule("KEY002")
    for keys_module, _tasks_module in _pairs(ctx.modules):
        builder = _find_function(keys_module.tree, _KEY_BUILDER)
        if builder is None:
            yield this.finding(
                keys_module.relpath,
                1,
                0,
                f"key builder {_KEY_BUILDER}() not found",
                hint=f"define {_KEY_BUILDER}() or rename the hook target",
            )
            continue
        params = [
            arg.arg
            for arg in builder.args.posonlyargs
            + builder.args.args
            + builder.args.kwonlyargs
            if arg.arg != "self"
        ]
        loaded: Set[str] = set()
        for node in ast.walk(builder):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                loaded.add(node.id)
        for param in params:
            if param not in loaded:
                yield this.finding(
                    keys_module.relpath,
                    builder.lineno,
                    builder.col_offset,
                    f"{_KEY_BUILDER}() parameter {param!r} never reaches "
                    "the key record",
                )


@rule(
    "KEY003",
    name="key-record-fields-drift",
    scope="project",
    hint=(
        "keep the record dict literal and KEY_RECORD_FIELDS in lockstep — "
        "both must list every key input"
    ),
)
def key_record_fields_drift(ctx: "ProjectContext") -> Iterator[Finding]:
    """The key record must carry exactly the declared fields.

    ``KEY_RECORD_FIELDS`` is the reviewed contract of what a cache key
    pins; the ``record`` dict literal inside ``task_key`` is the
    implementation.  Any drift — a field deleted from the literal, a
    field added without declaring it — is a finding, so the contract
    can only change in a diff that touches the declaration.
    """
    this = get_rule("KEY003")
    for keys_module, _tasks_module in _pairs(ctx.modules):
        declared = _string_tuple(keys_module.tree, _RECORD_HOOK)
        builder = _find_function(keys_module.tree, _KEY_BUILDER)
        if declared is None:
            yield this.finding(
                keys_module.relpath,
                1,
                0,
                f"missing {_RECORD_HOOK} introspection hook",
                hint=(
                    f"declare {_RECORD_HOOK} = (...) listing every field of "
                    "the key record"
                ),
            )
            continue
        if builder is None:
            continue  # KEY002 already reports the missing builder
        declared_fields, _line = declared
        record = _record_dict(builder)
        if record is None:
            yield this.finding(
                keys_module.relpath,
                builder.lineno,
                builder.col_offset,
                f"{_KEY_BUILDER}() has no literal `record = {{...}}` dict "
                "to cross-check",
                hint="build the key from a literal dict so the rule can see it",
            )
            continue
        record_node, record_keys = record
        for missing in [f for f in declared_fields if f not in record_keys]:
            yield this.finding(
                keys_module.relpath,
                record_node.lineno,
                record_node.col_offset,
                f"key record is missing declared field {missing!r}",
            )
        for extra in sorted(set(record_keys) - set(declared_fields)):
            yield this.finding(
                keys_module.relpath,
                record_node.lineno,
                record_node.col_offset,
                f"key record carries undeclared field {extra!r}",
            )


def _record_dict(
    builder: ast.FunctionDef,
) -> Optional[Tuple[ast.Dict, List[str]]]:
    """The ``record = {...}`` literal assigned inside the key builder."""
    for node in ast.walk(builder):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "record"
            and isinstance(node.value, ast.Dict)
        ):
            keys = [
                key.value
                for key in node.value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            ]
            return node.value, keys
    return None
