"""Finding renderers: human text, machine JSON, GitHub annotations, SARIF.

One findings list, four audiences: ``text`` for a developer terminal
(clickable ``path:line``, the fix hint inline), ``json`` for tooling
(stable schema, summary block, parses with no flags), ``github``
for CI (``::error``/``::warning`` workflow commands that annotate the
diff view), and ``sarif`` for code-scanning services (a minimal but
valid SARIF 2.1.0 log that ``github/codeql-action/upload-sarif``
accepts).  Reporters are pure ``findings -> str`` functions so tests
can assert on exact output.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.checks.findings import Finding

JSON_SCHEMA_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

FORMATS = ("text", "json", "github", "sarif")


def summarize(
    findings: Sequence[Finding],
    *,
    files_scanned: int = 0,
    noqa_suppressed: int = 0,
    baselined: int = 0,
    files_analyzed: Optional[int] = None,
    files_cached: int = 0,
) -> Dict[str, int]:
    """The summary block shared by the text footer and the JSON output.

    ``files_analyzed``/``files_cached`` split the scan by incremental
    cache outcome; without a cache every scanned file was analyzed.
    """
    return {
        "findings": len(findings),
        "errors": sum(1 for f in findings if f.severity == "error"),
        "warnings": sum(1 for f in findings if f.severity == "warning"),
        "files_scanned": files_scanned,
        "files_analyzed": (
            files_scanned if files_analyzed is None else files_analyzed
        ),
        "files_cached": files_cached,
        "noqa_suppressed": noqa_suppressed,
        "baselined": baselined,
    }


def render_text(
    findings: Sequence[Finding], summary: Optional[Mapping[str, int]] = None
) -> str:
    """Terminal rendering: one line per finding plus its hint, then a footer."""
    lines: List[str] = []
    for finding in findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule_id} {finding.severity}: {finding.message}"
        )
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    if summary is not None:
        if lines:
            lines.append("")
        lines.append(
            f"{summary['findings']} finding(s) "
            f"({summary['errors']} error(s), {summary['warnings']} warning(s)) "
            f"in {summary['files_scanned']} file(s); "
            f"{summary['baselined']} baselined, "
            f"{summary['noqa_suppressed']} suppressed inline"
        )
    elif not lines:
        return ""
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], summary: Optional[Mapping[str, int]] = None
) -> str:
    """Machine rendering: ``{"version", "summary", "findings"}``."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "summary": dict(summary) if summary is not None else summarize(findings),
        "findings": [finding.as_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def _escape_github(value: str) -> str:
    """Workflow-command escaping (the documented %, CR, LF triples)."""
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def render_github(findings: Sequence[Finding]) -> str:
    """CI rendering: one ``::error``/``::warning`` annotation per finding."""
    lines: List[str] = []
    for finding in findings:
        level = "error" if finding.severity == "error" else "warning"
        message = finding.message
        if finding.hint:
            message = f"{message} (hint: {finding.hint})"
        lines.append(
            f"::{level} file={_escape_github(finding.path)},"
            f"line={finding.line},col={finding.col + 1},"
            f"title={_escape_github(finding.rule_id)}::"
            f"{_escape_github(message)}"
        )
    return "\n".join(lines)


def _sarif_rule_metadata(rule_id: str) -> Dict[str, Any]:
    """Registry metadata for one rule, degrading gracefully for ids the
    registry no longer knows (e.g. findings replayed from an old run)."""
    from repro.checks.registry import get_rule
    from repro.errors import CheckError

    entry: Dict[str, Any] = {"id": rule_id}
    try:
        rule = get_rule(rule_id)
    except CheckError:
        return entry
    entry["name"] = rule.name
    entry["shortDescription"] = {"text": rule.name.replace("-", " ")}
    doc_line = rule.doc.splitlines()[0] if rule.doc else rule.name
    entry["fullDescription"] = {"text": doc_line}
    if rule.hint:
        entry["help"] = {"text": rule.hint}
    entry["defaultConfiguration"] = {
        "level": "error" if rule.severity == "error" else "warning"
    }
    return entry


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 rendering for code-scanning upload."""
    rule_ids = sorted({finding.rule_id for finding in findings})
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.rule_id,
                "ruleIndex": rule_index[finding.rule_id],
                "level": (
                    "error" if finding.severity == "error" else "warning"
                ),
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path.replace("\\", "/"),
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    log = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "rules": [
                            _sarif_rule_metadata(rule_id)
                            for rule_id in rule_ids
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=False)


def render(
    fmt: str,
    findings: Sequence[Finding],
    summary: Optional[Mapping[str, int]] = None,
) -> str:
    """Dispatch on ``--format``."""
    if fmt == "text":
        return render_text(findings, summary)
    if fmt == "json":
        return render_json(findings, summary)
    if fmt == "github":
        return render_github(findings)
    if fmt == "sarif":
        return render_sarif(findings)
    raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")
