"""Finding renderers: human text, machine JSON, GitHub annotations.

One findings list, three audiences: ``text`` for a developer terminal
(clickable ``path:line``, the fix hint inline), ``json`` for tooling
(stable schema, summary block, parses with no flags), and ``github``
for CI (``::error``/``::warning`` workflow commands that annotate the
diff view).  Reporters are pure ``findings -> str`` functions so tests
can assert on exact output.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence

from repro.checks.findings import Finding

JSON_SCHEMA_VERSION = 1

FORMATS = ("text", "json", "github")


def summarize(
    findings: Sequence[Finding],
    *,
    files_scanned: int = 0,
    noqa_suppressed: int = 0,
    baselined: int = 0,
) -> Dict[str, int]:
    """The summary block shared by the text footer and the JSON output."""
    return {
        "findings": len(findings),
        "errors": sum(1 for f in findings if f.severity == "error"),
        "warnings": sum(1 for f in findings if f.severity == "warning"),
        "files_scanned": files_scanned,
        "noqa_suppressed": noqa_suppressed,
        "baselined": baselined,
    }


def render_text(
    findings: Sequence[Finding], summary: Optional[Mapping[str, int]] = None
) -> str:
    """Terminal rendering: one line per finding plus its hint, then a footer."""
    lines: List[str] = []
    for finding in findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule_id} {finding.severity}: {finding.message}"
        )
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    if summary is not None:
        if lines:
            lines.append("")
        lines.append(
            f"{summary['findings']} finding(s) "
            f"({summary['errors']} error(s), {summary['warnings']} warning(s)) "
            f"in {summary['files_scanned']} file(s); "
            f"{summary['baselined']} baselined, "
            f"{summary['noqa_suppressed']} suppressed inline"
        )
    elif not lines:
        return ""
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], summary: Optional[Mapping[str, int]] = None
) -> str:
    """Machine rendering: ``{"version", "summary", "findings"}``."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "summary": dict(summary) if summary is not None else summarize(findings),
        "findings": [finding.as_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def _escape_github(value: str) -> str:
    """Workflow-command escaping (the documented %, CR, LF triples)."""
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def render_github(findings: Sequence[Finding]) -> str:
    """CI rendering: one ``::error``/``::warning`` annotation per finding."""
    lines: List[str] = []
    for finding in findings:
        level = "error" if finding.severity == "error" else "warning"
        message = finding.message
        if finding.hint:
            message = f"{message} (hint: {finding.hint})"
        lines.append(
            f"::{level} file={_escape_github(finding.path)},"
            f"line={finding.line},col={finding.col + 1},"
            f"title={_escape_github(finding.rule_id)}::"
            f"{_escape_github(message)}"
        )
    return "\n".join(lines)


def render(
    fmt: str,
    findings: Sequence[Finding],
    summary: Optional[Mapping[str, int]] = None,
) -> str:
    """Dispatch on ``--format``."""
    if fmt == "text":
        return render_text(findings, summary)
    if fmt == "json":
        return render_json(findings, summary)
    if fmt == "github":
        return render_github(findings)
    raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")
