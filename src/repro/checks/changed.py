"""``repro check --changed``: restrict analysis to files git touched.

The changed set is the union of tracked modifications against a base
rev (``git diff --name-only <base>``, deletions excluded — a deleted
file has nothing to analyze) and untracked-but-not-ignored files
(``git ls-files --others --exclude-standard``).  Both lists come back
repo-root relative, so callers get absolute resolved paths ready to
intersect with whatever the user asked to analyze.

This is a CLI/CI convenience, not a correctness feature: project-scope
rules still see only the files handed to the engine, so a ``--changed``
run can miss cross-module violations a full run would catch.  CI runs
the full gate; ``--changed`` is for the edit loop.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import List, Optional, Set

from repro.errors import CheckError

DEFAULT_DIFF_BASE = "origin/main"


def _git(args: List[str], cwd: Optional[Path]) -> str:
    try:
        completed = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError as exc:
        raise CheckError(f"cannot run git: {exc}") from exc
    if completed.returncode != 0:
        detail = completed.stderr.strip() or completed.stdout.strip()
        raise CheckError(f"git {' '.join(args)} failed: {detail}")
    return completed.stdout


def _repo_root(cwd: Optional[Path]) -> Path:
    return Path(_git(["rev-parse", "--show-toplevel"], cwd).strip())


def changed_files(
    base: str = DEFAULT_DIFF_BASE, cwd: Optional[Path] = None
) -> Set[Path]:
    """Absolute paths of files changed since ``base`` (plus untracked)."""
    root = _repo_root(cwd)
    names: Set[str] = set()
    diff = _git(["diff", "--name-only", "--diff-filter=d", base], cwd)
    names.update(line for line in diff.splitlines() if line.strip())
    untracked = _git(["ls-files", "--others", "--exclude-standard"], cwd)
    names.update(line for line in untracked.splitlines() if line.strip())
    resolved: Set[Path] = set()
    for name in names:
        candidate = (root / name).resolve()
        if candidate.exists():
            resolved.add(candidate)
    return resolved


def restrict_to_changed(
    files: List[Path], base: str, cwd: Optional[Path] = None
) -> List[Path]:
    """The subset of ``files`` that git reports as changed, order kept."""
    changed = changed_files(base, cwd)
    return [path for path in files if path.resolve() in changed]
