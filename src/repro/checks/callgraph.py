"""Project-wide call graph over the parsed module set.

This is the cross-module layer of the checker: one index of every
function and class in the analyzed tree, with call sites resolved
through each module's import map (:func:`repro.checks.astutils`
qualname resolution), light attribute/parameter type inference, and
``threading.Thread(target=...)`` spawn edges tagged separately from
plain calls.  Project-scoped rules use it to answer questions no
single-file rule can: *which classes run on multiple threads* (the
CONC race detector), *can this HTTP handler reach the simulator
through any chain of helpers* (the transitive SVC001/OBS002 layering
rules), and *does this call block on file I/O* (the lock-discipline
rule's transitive blocking set).

Resolution is deliberately conservative: an edge exists only when the
receiver is nailed down — a direct name bound by a module-level def, an
imported qualname, ``self``-dotted chains walked through inferred
attribute types, or a local whose constructor or annotation names a
project class.  Unresolved calls stay in the per-function site list
(``callee=None``) so rules can still pattern-match raw names, but they
never create edges — a hazard report must be able to print the exact
chain it found.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

# Leaf import — the package __init__ imports the engine, so going
# through ``repro.checks`` here would be the IMP003 cycle we flag.
import repro.checks.astutils as astutils

#: Qualnames whose construction marks an attribute as a lock.
LOCK_FACTORIES: FrozenSet[str] = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)

#: Construction qualnames for containers that are thread-safe by design;
#: attributes holding one are exempt from lock-discipline analysis.
THREADSAFE_FACTORIES: FrozenSet[str] = frozenset(
    {
        "queue.Queue",
        "queue.LifoQueue",
        "queue.PriorityQueue",
        "queue.SimpleQueue",
        "threading.local",
        "threading.Event",
        "threading.Barrier",
    }
    | LOCK_FACTORIES
)

#: Base classes whose subclasses' ``do_*``/``handle`` methods run on
#: server-spawned threads (one per request under ThreadingHTTPServer).
HTTP_HANDLER_BASES: FrozenSet[str] = frozenset(
    {
        "http.server.BaseHTTPRequestHandler",
        "http.server.SimpleHTTPRequestHandler",
        "socketserver.BaseRequestHandler",
        "socketserver.StreamRequestHandler",
    }
)

#: Pseudo-function name holding a module's top-level call sites.
MODULE_BODY = "<module>"


@dataclass(frozen=True)
class CallSite:
    """One call expression inside an indexed function.

    ``callee`` is the resolved target qualname (``None`` when the
    receiver could not be nailed down); ``name`` is always the raw
    called name (the last attribute segment), so rules can pattern-match
    unresolved calls too.  ``dotted`` is the import-resolved dotted name
    even when it is not a project symbol (``os.replace``, ``time.sleep``
    — how rules tell stdlib blocking primitives from same-named methods).
    ``kind`` is ``"call"`` for plain invocation and ``"thread"`` for a
    ``threading.Thread(target=...)`` spawn edge.
    """

    caller: str
    callee: Optional[str]
    name: str
    lineno: int
    col: int
    kind: str = "call"
    dotted: Optional[str] = None


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    qualname: str
    relpath: str
    name: str
    lineno: int
    class_qualname: Optional[str] = None


@dataclass
class ClassInfo:
    """One indexed class: methods, inferred attribute types, locks."""

    qualname: str
    relpath: str
    name: str
    lineno: int
    #: resolved base-class qualnames (project or external)
    bases: List[str] = field(default_factory=list)
    #: method name -> function qualname
    methods: Dict[str, str] = field(default_factory=dict)
    #: ``self.<attr>`` -> inferred class qualname
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: attributes holding a lock object (``with self._lock:`` guards)
    lock_attrs: Set[str] = field(default_factory=set)
    #: attributes holding thread-safe containers (exempt from guarding)
    threadsafe_attrs: Set[str] = field(default_factory=set)


class CallGraph:
    """The linked graph: function index, class index, resolved edges."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: caller qualname -> every call site in its body
        self.sites: Dict[str, List[CallSite]] = {}
        #: scratch space for rules to memoize derived sets per graph
        self.memo: Dict[str, object] = {}
        #: function AST node per qualname (module-body pseudo-nodes excluded)
        self._nodes: Dict[str, astutils.FunctionNode] = {}
        #: module each qualname was defined in
        self._modules: Dict[str, astutils.ModuleSource] = {}

    # -- lookups -----------------------------------------------------------

    def node_for(self, qualname: str) -> Optional[astutils.FunctionNode]:
        return self._nodes.get(qualname)

    def module_for(self, qualname: str) -> Optional[astutils.ModuleSource]:
        return self._modules.get(qualname)

    def functions_in(self, relpath: str) -> List[FunctionInfo]:
        """Indexed functions of one module, in definition order."""
        return sorted(
            (f for f in self.functions.values() if f.relpath == relpath),
            key=lambda f: f.lineno,
        )

    def method_class(self, qualname: str) -> Optional[ClassInfo]:
        info = self.functions.get(qualname)
        if info is None or info.class_qualname is None:
            return None
        return self.classes.get(info.class_qualname)

    def resolve_method(
        self, class_qualname: str, method: str
    ) -> Optional[str]:
        """``method`` on a class, walking project base classes."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            stack.extend(info.bases)
        return None

    # -- thread model ------------------------------------------------------

    def thread_entry_points(self) -> Set[str]:
        """Functions that start on their own thread.

        ``threading.Thread(target=...)`` targets, plus every ``do_*`` /
        ``handle`` method of an HTTP request-handler subclass (each
        request runs on a server-spawned thread).
        """
        entries: Set[str] = set()
        for sites in self.sites.values():
            for site in sites:
                if site.kind == "thread" and site.callee is not None:
                    entries.add(site.callee)
        for cls in self.classes.values():
            if not self._is_handler_class(cls, set()):
                continue
            for name, qualname in cls.methods.items():
                if name.startswith("do_") or name == "handle":
                    entries.add(qualname)
        return entries

    def _is_handler_class(self, cls: ClassInfo, seen: Set[str]) -> bool:
        for base in cls.bases:
            if base in HTTP_HANDLER_BASES:
                return True
            if base in seen:
                continue
            seen.add(base)
            parent = self.classes.get(base)
            if parent is not None and self._is_handler_class(parent, seen):
                return True
        return False

    def threaded_classes(self) -> Set[str]:
        """Classes whose methods run on more than one thread.

        A class qualifies when a bound method of it is a thread target
        or a request-handler entry, or when any of its methods is
        reachable through call edges from such an entry point — the
        cross-module case (a ``JobStore`` shared by executor worker
        threads never spawns a thread itself).
        """
        shared = self.reachable_from(
            self.thread_entry_points(), follow_threads=True
        )
        result: Set[str] = set()
        for qualname in shared:
            info = self.functions.get(qualname)
            if info is not None and info.class_qualname is not None:
                result.add(info.class_qualname)
        return result

    # -- traversal ---------------------------------------------------------

    def _adjacent(
        self, qualname: str, follow_threads: bool
    ) -> Iterable[CallSite]:
        for site in self.sites.get(qualname, ()):
            if site.callee is None:
                continue
            if site.kind == "thread" and not follow_threads:
                continue
            yield site

    def reachable_from(
        self,
        seeds: Iterable[str],
        *,
        follow_threads: bool = False,
        exclude: Optional[FrozenSet[str]] = None,
    ) -> Set[str]:
        """Every function reachable *from* the seeds (seeds included).

        ``exclude`` is a set of module relpaths that act as a boundary:
        functions defined there are neither entered nor traversed.
        """
        excluded = exclude or frozenset()
        seen: Set[str] = set()
        stack = [s for s in seeds if s in self.functions or s in self.sites]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            info = self.functions.get(current)
            if info is not None and info.relpath in excluded:
                continue
            seen.add(current)
            for site in self._adjacent(current, follow_threads):
                if site.callee not in seen:
                    stack.append(str(site.callee))
        return seen

    def reaching_set(
        self,
        seeds: Iterable[str],
        *,
        follow_threads: bool = False,
        exclude: Optional[FrozenSet[str]] = None,
    ) -> Set[str]:
        """Every function from which some seed is reachable.

        The reverse closure of :meth:`reachable_from`: seeds included,
        ``exclude`` module relpaths form the same hard boundary (their
        functions never join the set, so paths cannot tunnel through
        them).
        """
        excluded = exclude or frozenset()
        reverse: Dict[str, Set[str]] = {}
        for caller, sites in self.sites.items():
            info = self.functions.get(caller)
            if info is not None and info.relpath in excluded:
                continue
            for site in sites:
                if site.callee is None:
                    continue
                if site.kind == "thread" and not follow_threads:
                    continue
                reverse.setdefault(site.callee, set()).add(caller)
        seen: Set[str] = set()
        stack = [
            s
            for s in seeds
            if not self._in_modules(s, excluded)
        ]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(c for c in reverse.get(current, ()) if c not in seen)
        return seen

    def _in_modules(self, qualname: str, relpaths: FrozenSet[str]) -> bool:
        info = self.functions.get(qualname)
        return info is not None and info.relpath in relpaths

    def call_chain(
        self,
        start: str,
        targets: Set[str],
        *,
        follow_threads: bool = False,
        exclude: Optional[FrozenSet[str]] = None,
    ) -> Optional[List[CallSite]]:
        """Shortest call-site path from ``start`` to any target.

        Breadth-first, so the reported chain is the most direct route;
        returns ``None`` when no target is reachable.
        """
        excluded = exclude or frozenset()
        if start in targets:
            return []
        parents: Dict[str, CallSite] = {}
        frontier: List[str] = [start]
        seen: Set[str] = {start}
        while frontier:
            nxt: List[str] = []
            for current in frontier:
                for site in self._adjacent(current, follow_threads):
                    callee = str(site.callee)
                    if callee in seen or self._in_modules(callee, excluded):
                        continue
                    seen.add(callee)
                    parents[callee] = site
                    if callee in targets:
                        chain: List[CallSite] = []
                        cursor: Optional[str] = callee
                        while cursor is not None and cursor != start:
                            chain.append(parents[cursor])
                            cursor = parents[cursor].caller
                        chain.reverse()
                        return chain
                    nxt.append(callee)
            frontier = nxt
        return None


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


def _module_basename(module: astutils.ModuleSource) -> str:
    if module.module_name:
        return module.module_name
    return module.relpath.replace("\\", "/").rsplit("/", 1)[-1].removesuffix(
        ".py"
    )


class _ModuleIndexer:
    """Per-module symbol table used during both build passes."""

    def __init__(self, module: astutils.ModuleSource) -> None:
        self.module = module
        self.modname = _module_basename(module)
        #: top-level name -> qualname (defs and classes in this module)
        self.local_defs: Dict[str, str] = {}
        self.local_classes: Dict[str, str] = {}
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.local_defs[node.name] = f"{self.modname}.{node.name}"
            elif isinstance(node, ast.ClassDef):
                qual = f"{self.modname}.{node.name}"
                self.local_defs[node.name] = qual
                self.local_classes[node.name] = qual

    def resolve_name(self, name: str) -> Optional[str]:
        """A bare name to the qualname it denotes, if determinable."""
        if name in self.local_defs:
            return self.local_defs[name]
        return self.module.import_map.get(name)

    def resolve_dotted(self, node: ast.AST) -> Optional[str]:
        """A name/attribute chain to a fully qualified dotted name."""
        chain = astutils.attribute_chain(node)
        if chain is None:
            return None
        root = self.resolve_name(chain[0])
        if root is None:
            return None
        return ".".join([root] + chain[1:])


def _annotation_class(
    annotation: Optional[ast.expr], indexer: _ModuleIndexer
) -> Optional[str]:
    """The project-class qualname an annotation denotes, if any.

    Unwraps ``Optional[X]`` / ``Union[X, None]`` and quoted forward
    references; anything more exotic resolves to ``None``.
    """
    if annotation is None:
        return None
    node: ast.expr = annotation
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        base = astutils.attribute_chain(node.value)
        if base is not None and base[-1] in ("Optional", "Union"):
            inner = node.slice
            elements = (
                list(inner.elts) if isinstance(inner, ast.Tuple) else [inner]
            )
            for element in elements:
                resolved = _annotation_class(element, indexer)
                if resolved is not None:
                    return resolved
        return None
    return indexer.resolve_dotted(node)


class _FunctionScanner(ast.NodeVisitor):
    """Collect call sites (and thread spawns) inside one function body.

    Nested defs/lambdas are scanned as part of the enclosing indexed
    function — a closure's calls still happen on behalf of its owner.
    """

    def __init__(
        self,
        graph: CallGraph,
        indexer: _ModuleIndexer,
        caller: str,
        class_info: Optional[ClassInfo],
        param_types: Dict[str, str],
    ) -> None:
        self.graph = graph
        self.indexer = indexer
        self.caller = caller
        self.class_info = class_info
        #: local name -> class qualname (params seeded, assignments added)
        self.local_types: Dict[str, str] = dict(param_types)
        self.sites: List[CallSite] = []

    # -- type inference ----------------------------------------------------

    def _expr_class(self, node: ast.expr) -> Optional[str]:
        """The project-class qualname an expression evaluates to."""
        if isinstance(node, ast.IfExp):
            return self._expr_class(node.body) or self._expr_class(node.orelse)
        if isinstance(node, ast.Call):
            target = self._callable_target(node.func)
            if target is not None and target in self.graph.classes:
                return target
            return None
        if isinstance(node, ast.Name):
            return self.local_types.get(node.id)
        if isinstance(node, ast.Attribute):
            chain = astutils.attribute_chain(node)
            if chain is not None:
                return self._chain_class(chain)
        return None

    def _chain_class(self, chain: List[str]) -> Optional[str]:
        """Walk ``a.b.c`` through attribute types to a class qualname."""
        root = chain[0]
        if root == "self" and self.class_info is not None:
            current: Optional[str] = self.class_info.qualname
        elif root in self.local_types:
            current = self.local_types[root]
        else:
            return None
        for attr in chain[1:]:
            if current is None:
                return None
            info = self.graph.classes.get(current)
            if info is None:
                return None
            current = info.attr_types.get(attr)
        return current

    # -- call resolution ---------------------------------------------------

    def _callable_target(self, func: ast.expr) -> Optional[str]:
        """Resolve a call's function expression to a qualname.

        Returns a function qualname, a class qualname (construction), or
        ``None``.  Method chains rooted at ``self`` or a typed local are
        walked through inferred attribute types.
        """
        if isinstance(func, ast.Name):
            return self.indexer.resolve_name(func.id)
        if not isinstance(func, ast.Attribute):
            return None
        chain = astutils.attribute_chain(func)
        if chain is None:
            return None
        owner = self._chain_class(chain[:-1])
        if owner is not None:
            return self.graph.resolve_method(owner, chain[-1])
        dotted = self.indexer.resolve_dotted(func)
        if dotted is None:
            return None
        if dotted in self.graph.functions or dotted in self.graph.classes:
            return dotted
        # ``Class.method`` spelled through an import of the class.
        prefix, _, method = dotted.rpartition(".")
        if prefix in self.graph.classes:
            return self.graph.resolve_method(prefix, method)
        return dotted

    def _resolve_edge(self, target: Optional[str]) -> Optional[str]:
        """Normalize a callable target into a graph node, if one exists."""
        if target is None:
            return None
        if target in self.graph.functions:
            return target
        if target in self.graph.classes:
            init = self.graph.resolve_method(target, "__init__")
            return init
        return None

    def _thread_target(self, call: ast.Call) -> Optional[Tuple[str, ast.expr]]:
        func_target = self._callable_target(call.func)
        if func_target != "threading.Thread":
            return None
        target = astutils.call_keyword(call, "target")
        if target is None:
            return None
        return "thread", target

    # -- visitor -----------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        inferred = self._expr_class(node.value)
        if inferred is not None:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.local_types[target.id] = inferred
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            annotated = _annotation_class(node.annotation, self.indexer)
            if annotated is not None:
                self.local_types[node.target.id] = annotated
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        spawn = self._thread_target(node)
        if spawn is not None:
            _, target_expr = spawn
            resolved: Optional[str] = None
            if isinstance(target_expr, (ast.Name, ast.Attribute)):
                resolved = self._resolve_edge(
                    self._callable_target(target_expr)
                    if not isinstance(target_expr, ast.Name)
                    else self.indexer.resolve_name(target_expr.id)
                )
                if resolved is None and isinstance(target_expr, ast.Attribute):
                    chain = astutils.attribute_chain(target_expr)
                    if chain is not None:
                        owner = self._chain_class(chain[:-1])
                        if owner is not None:
                            resolved = self.graph.resolve_method(
                                owner, chain[-1]
                            )
            self.sites.append(
                CallSite(
                    caller=self.caller,
                    callee=resolved,
                    name="Thread",
                    lineno=node.lineno,
                    col=node.col_offset,
                    kind="thread",
                )
            )
            self.generic_visit(node)
            return
        raw_name = _raw_call_name(node)
        target = self._callable_target(node.func)
        self.sites.append(
            CallSite(
                caller=self.caller,
                callee=self._resolve_edge(target),
                name=raw_name,
                lineno=node.lineno,
                col=node.col_offset,
                dotted=target,
            )
        )
        self.generic_visit(node)


def _raw_call_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return "<expr>"


def _param_types(
    node: astutils.FunctionNode, indexer: _ModuleIndexer
) -> Dict[str, str]:
    types: Dict[str, str] = {}
    args = node.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        resolved = _annotation_class(arg.annotation, indexer)
        if resolved is not None:
            types[arg.arg] = resolved
    return types


def _index_module(graph: CallGraph, module: astutils.ModuleSource) -> None:
    indexer = _ModuleIndexer(module)
    modname = indexer.modname
    body_qual = f"{modname}.{MODULE_BODY}"
    if body_qual not in graph.functions:
        graph.functions[body_qual] = FunctionInfo(
            qualname=body_qual,
            relpath=module.relpath,
            name=MODULE_BODY,
            lineno=1,
        )
        graph._modules[body_qual] = module
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{modname}.{node.name}"
            if qual in graph.functions:
                continue
            graph.functions[qual] = FunctionInfo(
                qualname=qual,
                relpath=module.relpath,
                name=node.name,
                lineno=node.lineno,
            )
            graph._nodes[qual] = node
            graph._modules[qual] = module
        elif isinstance(node, ast.ClassDef):
            cls_qual = f"{modname}.{node.name}"
            if cls_qual in graph.classes:
                continue
            info = ClassInfo(
                qualname=cls_qual,
                relpath=module.relpath,
                name=node.name,
                lineno=node.lineno,
            )
            for base in node.bases:
                resolved = indexer.resolve_dotted(base)
                if resolved is not None:
                    info.bases.append(resolved)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    meth_qual = f"{cls_qual}.{item.name}"
                    info.methods[item.name] = meth_qual
                    graph.functions[meth_qual] = FunctionInfo(
                        qualname=meth_qual,
                        relpath=module.relpath,
                        name=item.name,
                        lineno=item.lineno,
                        class_qualname=cls_qual,
                    )
                    graph._nodes[meth_qual] = item
                    graph._modules[meth_qual] = module
            graph.classes[cls_qual] = info


def _infer_class_attrs(graph: CallGraph, module: astutils.ModuleSource) -> None:
    indexer = _ModuleIndexer(module)
    for cls_name, cls_qual in indexer.local_classes.items():
        info = graph.classes.get(cls_qual)
        if info is None or info.relpath != module.relpath:
            continue
        class_node = _class_node(module, cls_name)
        if class_node is None:
            continue
        # Class-body annotations (``server: "ServiceServer"``).
        for item in class_node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                resolved = _annotation_class(item.annotation, indexer)
                if resolved is not None:
                    info.attr_types[item.target.id] = resolved
        for item in class_node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = _param_types(item, indexer)
            for node in ast.walk(item):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        _record_attr(
                            graph, info, indexer, params, target.attr,
                            node.value,
                        )
    return None


def _record_attr(
    graph: CallGraph,
    info: ClassInfo,
    indexer: _ModuleIndexer,
    params: Dict[str, str],
    attr: str,
    value: ast.expr,
) -> None:
    if isinstance(value, ast.IfExp):
        _record_attr(graph, info, indexer, params, attr, value.body)
        _record_attr(graph, info, indexer, params, attr, value.orelse)
        return
    if isinstance(value, ast.Call):
        target = indexer.resolve_dotted(value.func)
        if target in LOCK_FACTORIES:
            info.lock_attrs.add(attr)
            return
        if target in THREADSAFE_FACTORIES:
            info.threadsafe_attrs.add(attr)
            return
        if target is not None and target in graph.classes:
            info.attr_types.setdefault(attr, target)
        return
    if isinstance(value, ast.Name) and value.id in params:
        info.attr_types.setdefault(attr, params[value.id])


def _class_node(
    module: astutils.ModuleSource, name: str
) -> Optional[ast.ClassDef]:
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _scan_module(graph: CallGraph, module: astutils.ModuleSource) -> None:
    indexer = _ModuleIndexer(module)
    modname = indexer.modname
    # Module-level statements (everything outside def/class bodies).
    body_scanner = _FunctionScanner(
        graph, indexer, f"{modname}.{MODULE_BODY}", None, {}
    )
    for node in module.tree.body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        body_scanner.visit(node)
    graph.sites.setdefault(body_scanner.caller, []).extend(body_scanner.sites)

    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _scan_function(graph, indexer, node, f"{modname}.{node.name}", None)
        elif isinstance(node, ast.ClassDef):
            cls_info = graph.classes.get(f"{modname}.{node.name}")
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _scan_function(
                        graph,
                        indexer,
                        item,
                        f"{modname}.{node.name}.{item.name}",
                        cls_info,
                    )


def _scan_function(
    graph: CallGraph,
    indexer: _ModuleIndexer,
    node: astutils.FunctionNode,
    qualname: str,
    class_info: Optional[ClassInfo],
) -> None:
    if graph.functions.get(qualname) is None:
        return
    if graph.functions[qualname].relpath != indexer.module.relpath:
        return  # a same-named module shadowed this one; first wins
    scanner = _FunctionScanner(
        graph, indexer, qualname, class_info, _param_types(node, indexer)
    )
    for stmt in node.body:
        scanner.visit(stmt)
    graph.sites.setdefault(qualname, []).extend(scanner.sites)


def build_call_graph(modules: Sequence[astutils.ModuleSource]) -> CallGraph:
    """Index, infer, and link the whole analyzed module set.

    Three passes: symbol indexing (every function/class gets a
    qualname), attribute-type and lock inference (needs the full class
    index), then call-site scanning and edge resolution (needs both).
    """
    graph = CallGraph()
    ordered = sorted(modules, key=lambda m: m.relpath)
    for module in ordered:
        _index_module(graph, module)
    for module in ordered:
        _infer_class_attrs(graph, module)
    for module in ordered:
        _scan_module(graph, module)
    return graph
