"""Observability hygiene rules (OBS001, OBS002).

Library code that ``print``\\ s bypasses every output contract the
subsystem maintains: structured JSON-lines logs stay machine-parseable,
CLI stdout stays stable for the golden tests, and worker processes
don't interleave garbage into the parent's report.  OBS001 keeps bare
``print`` calls confined to the two modules whose *job* is user-facing
output: the CLI itself and the checks reporting renderer.

OBS002 pins the dashboard's layering the way SVC001 pins the job
handlers': dash data code is a *consumer* of artifacts already on disk
(run records, span JSONL, BENCH files) and must never import
``repro.simgpu`` or call a simulation entry point — otherwise a GET
from a browser tab could start unbounded simulation work on a server
that was promised to be read-only.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Set, Tuple

from repro.checks.findings import Finding
from repro.checks.registry import get_rule, rule

if TYPE_CHECKING:
    from repro.checks.engine import ModuleContext, ProjectContext

#: Relpath fragments where ``print`` IS the module's output contract.
PRINT_ALLOWLIST = (
    "repro/cli.py",
    "repro/checks/reporting.py",
)


def _is_allowlisted(relpath: str) -> bool:
    normalized = relpath.replace("\\", "/")
    return any(fragment in normalized for fragment in PRINT_ALLOWLIST)


@rule(
    "OBS001",
    name="print-in-library-code",
    severity="warning",
    hint=(
        "route library output through repro.obs.logjson (structured "
        "events), the progress reporter (live status), or return values "
        "the CLI renders; bare print() belongs only in repro/cli.py and "
        "repro/checks/reporting.py"
    ),
)
def print_in_library_code(ctx: "ModuleContext") -> Iterator[Finding]:
    """A bare ``print(...)`` call outside the CLI/reporting modules.

    Only direct ``print`` name calls count — method calls like
    ``device.print()`` and references without a call are fine.  Debug
    prints that must stay (none are known) carry
    ``# repro: noqa[OBS001]``.
    """
    this = get_rule("OBS001")
    module = ctx.module
    if _is_allowlisted(module.relpath):
        return
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield this.finding(
                module.relpath,
                node.lineno,
                node.col_offset,
                "print() in library code bypasses structured logging",
            )


#: Relpath fragments marking a module as dashboard data code: the
#: aggregation module, the service handler layer, and any dedicated
#: ``dash/`` package (fixtures included).  Matching is on the
#: normalized (posix) relpath.
DASH_PATH_FRAGMENTS = (
    "obs/dash.py",
    "service/dashboard.py",
    "/dash/",
)


def _is_dash_module(relpath: str) -> bool:
    normalized = relpath.replace("\\", "/")
    return any(fragment in normalized for fragment in DASH_PATH_FRAGMENTS)


@rule(
    "OBS002",
    name="dash-handler-runs-simulation",
    severity="error",
    scope="project",
    hint=(
        "dashboard data code is a read-only consumer of on-disk "
        "artifacts (run records, span JSONL, BENCH files); importing "
        "repro.simgpu or calling a simulation entry point turns a GET "
        "into unbounded compute — read artifacts, or submit a job "
        "through the service instead"
    ),
)
def dash_handler_runs_simulation(ctx: "ProjectContext") -> Iterator[Finding]:
    """Dashboard data code importing or invoking the simulator.

    Applies to ``repro/obs/dash.py``, ``repro/service/dashboard.py``,
    and anything under a ``dash/`` package.  Fires on any import whose
    dotted module path mentions ``simgpu``, on importing a simulation
    entry-point name, and on calling one — directly (including
    ``pipeline.run(...)``, mirroring SVC001's call detection) or at the
    end of any helper chain the project call graph resolves.
    """
    from repro.checks.rules_service import (
        SIM_ENTRY_POINTS,
        _call_name,
        _is_pipeline_run,
        transitive_sim_findings,
    )

    this = get_rule("OBS002")
    graph = ctx.callgraph()
    for module in ctx.modules:
        if not _is_dash_module(module.relpath):
            continue
        direct: Set[Tuple[int, int]] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if "simgpu" in alias.name.split("."):
                        yield this.finding(
                            module.relpath,
                            node.lineno,
                            node.col_offset,
                            f"dash data code imports {alias.name}; the "
                            "dashboard layer is read-only",
                        )
            elif isinstance(node, ast.ImportFrom):
                source = node.module or ""
                if "simgpu" in source.split("."):
                    yield this.finding(
                        module.relpath,
                        node.lineno,
                        node.col_offset,
                        f"dash data code imports from {source}; the "
                        "dashboard layer is read-only",
                    )
                    continue
                for alias in node.names:
                    if alias.name in SIM_ENTRY_POINTS:
                        yield this.finding(
                            module.relpath,
                            node.lineno,
                            node.col_offset,
                            f"dash data code imports simulation entry point "
                            f"{alias.name}; the dashboard layer is read-only",
                        )
            elif isinstance(node, ast.Call):
                name = _call_name(node)
                if name in SIM_ENTRY_POINTS:
                    direct.add((node.lineno, node.col_offset))
                    yield this.finding(
                        module.relpath,
                        node.lineno,
                        node.col_offset,
                        f"{name}() called from dash data code; the "
                        "dashboard layer must not run simulations",
                    )
                elif _is_pipeline_run(node):
                    direct.add((node.lineno, node.col_offset))
                    yield this.finding(
                        module.relpath,
                        node.lineno,
                        node.col_offset,
                        "pipeline.run() called from dash data code; the "
                        "dashboard layer must not run simulations",
                    )
        yield from transitive_sim_findings(
            graph, this, module.relpath, layer="dash data", skip=direct
        )
