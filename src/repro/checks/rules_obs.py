"""Observability hygiene rules (OBS001).

Library code that ``print``\\ s bypasses every output contract the
subsystem maintains: structured JSON-lines logs stay machine-parseable,
CLI stdout stays stable for the golden tests, and worker processes
don't interleave garbage into the parent's report.  OBS001 keeps bare
``print`` calls confined to the two modules whose *job* is user-facing
output: the CLI itself and the checks reporting renderer.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.checks.findings import Finding
from repro.checks.registry import get_rule, rule

if TYPE_CHECKING:
    from repro.checks.engine import ModuleContext

#: Relpath fragments where ``print`` IS the module's output contract.
PRINT_ALLOWLIST = (
    "repro/cli.py",
    "repro/checks/reporting.py",
)


def _is_allowlisted(relpath: str) -> bool:
    normalized = relpath.replace("\\", "/")
    return any(fragment in normalized for fragment in PRINT_ALLOWLIST)


@rule(
    "OBS001",
    name="print-in-library-code",
    severity="warning",
    hint=(
        "route library output through repro.obs.logjson (structured "
        "events), the progress reporter (live status), or return values "
        "the CLI renders; bare print() belongs only in repro/cli.py and "
        "repro/checks/reporting.py"
    ),
)
def print_in_library_code(ctx: "ModuleContext") -> Iterator[Finding]:
    """A bare ``print(...)`` call outside the CLI/reporting modules.

    Only direct ``print`` name calls count — method calls like
    ``device.print()`` and references without a call are fine.  Debug
    prints that must stay (none are known) carry
    ``# repro: noqa[OBS001]``.
    """
    this = get_rule("OBS001")
    module = ctx.module
    if _is_allowlisted(module.relpath):
        return
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield this.finding(
                module.relpath,
                node.lineno,
                node.col_offset,
                "print() in library code bypasses structured logging",
            )
