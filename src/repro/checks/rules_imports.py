"""Import-hygiene rules (IMP000–IMP003).

PR 2 shipped the motivating bug: ``simgpu/batch.py`` referenced
``Sequence`` and ``SimulationError`` without importing them, and nothing
noticed until a rarely-taken error path ran.  These rules make that
class of defect a CI failure: names must resolve somewhere, imports
must earn their keep, and the ``repro.*`` module graph must stay
acyclic (cycles are why "just import it at the top" sometimes can't
fix the first two).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Set, Tuple

from repro.checks.astutils import (
    ModuleSource,
    ScopeAnalyzer,
    annotation_string_names,
)
from repro.checks.findings import Finding
from repro.checks.registry import get_rule, rule

if TYPE_CHECKING:
    from repro.checks.engine import ModuleContext, ProjectContext


@rule(
    "IMP000",
    name="syntax-error",
    hint="fix the syntax error; no other rule can run on this file",
)
def syntax_error(ctx: "ModuleContext") -> Iterator[Finding]:
    """A file that does not parse fails every other guarantee.

    This rule never runs as a checker: the engine emits IMP000 directly
    when ``ast.parse`` raises, so the failure is a structured finding
    (baseline-able, renderable as a GitHub annotation) instead of a
    crash.  It is registered so it appears in the catalog and can be
    selected or suppressed like any other rule.
    """
    return iter(())


@rule(
    "IMP001",
    name="undefined-name",
    hint="import or define the name; this is a NameError waiting for its code path",
)
def undefined_name(ctx: "ModuleContext") -> Iterator[Finding]:
    """A load of a name with no binding in any enclosing scope.

    The analysis is deliberately flow-free (a name bound anywhere in a
    scope counts everywhere in it), so every finding is a genuine
    "nothing ever binds this" — the kind that raises ``NameError`` the
    first time its branch executes, typically an error path no test
    covers.  A ``from x import *`` anywhere in the module disables the
    rule for that module.
    """
    this = get_rule("IMP001")
    module = ctx.module
    analyzer = ScopeAnalyzer(module.tree)
    seen: Set[Tuple[str, int]] = set()
    for undefined in analyzer.undefined_names():
        key = (undefined.name, undefined.line)
        if key in seen:
            continue
        seen.add(key)
        yield this.finding(
            module.relpath,
            undefined.line,
            undefined.col,
            f"undefined name {undefined.name!r}",
        )


@rule(
    "IMP002",
    name="unused-import",
    severity="warning",
    hint="delete the import (or add the name to __all__ if it is a re-export)",
)
def unused_import(ctx: "ModuleContext") -> Iterator[Finding]:
    """An imported name no code in the module ever loads.

    Dead imports hide real dependencies, slow worker spawn (every pool
    worker re-imports the module graph), and mask typos — an unused
    import next to an undefined name is usually one rename gone wrong.
    ``__init__.py`` files are exempt: their imports *are* the package's
    public surface.  Same-name re-exports (``import x as x``) and
    ``__all__`` members count as used.
    """
    this = get_rule("IMP002")
    module = ctx.module
    if module.path.name == "__init__.py":
        return
    loads: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            loads.add(node.id)
    loads |= _all_exports(module.tree)
    loads |= annotation_string_names(module.tree)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname == alias.name:
                    continue  # re-export idiom
                bound = alias.asname or alias.name.split(".")[0]
                if bound not in loads:
                    yield this.finding(
                        module.relpath,
                        node.lineno,
                        node.col_offset,
                        f"unused import {bound!r}",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*" or alias.asname == alias.name:
                    continue
                bound = alias.asname or alias.name
                if bound not in loads:
                    yield this.finding(
                        module.relpath,
                        node.lineno,
                        node.col_offset,
                        f"unused import {bound!r}",
                    )


def _all_exports(tree: ast.Module) -> Set[str]:
    """String members of a module-level ``__all__`` literal."""
    exports: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        for element in node.value.elts:
                            if isinstance(element, ast.Constant) and isinstance(
                                element.value, str
                            ):
                                exports.add(element.value)
    return exports


@rule(
    "IMP003",
    name="import-cycle",
    scope="project",
    hint=(
        "break the cycle: move the import into the function that needs it, "
        "or split the shared vocabulary into a leaf module"
    ),
)
def import_cycle(ctx: "ProjectContext") -> Iterator[Finding]:
    """Top-level import cycles across ``repro.*`` modules.

    Cycles make import order load-bearing: whichever module imports
    first sees a half-initialized partner, and worker processes — which
    import in a different order than the parent — are where that
    surfaces.  Function-local imports are excluded deliberately; they
    are the sanctioned way to *break* a cycle and the codebase uses
    them as such.
    """
    this = get_rule("IMP003")
    graph, first_import_line = _module_graph(ctx.modules)
    for cycle in _cycles(graph):
        anchor = min(cycle)
        module = next(
            (m for m in ctx.modules if m.module_name == anchor), None
        )
        if module is None:
            continue
        line = min(
            (
                first_import_line[(anchor, member)]
                for member in cycle
                if (anchor, member) in first_import_line
            ),
            default=1,
        )
        # The SCC is a set, not a path — render it as membership so the
        # message never implies an edge that does not exist.
        yield this.finding(
            module.relpath,
            line,
            0,
            f"import cycle among: {', '.join(cycle)}",
        )


def _module_graph(
    modules: List[ModuleSource],
) -> Tuple[Dict[str, Set[str]], Dict[Tuple[str, str], int]]:
    """Top-level-import edges between analyzed modules."""
    known = {m.module_name for m in modules if m.module_name}
    graph: Dict[str, Set[str]] = {name: set() for name in known if name}
    first_line: Dict[Tuple[str, str], int] = {}

    def add_edge(src: str, dst: str, line: int) -> None:
        if dst in known and dst != src:
            graph[src].add(dst)
            first_line.setdefault((src, dst), line)

    for module in modules:
        src = module.module_name
        if not src:
            continue
        for node in _toplevel_statements(module.tree):
            if isinstance(node, ast.Import):
                # Edges point at the named module only: technically
                # `import a.b.c` also initializes the parent packages,
                # but counting those edges would report every package
                # that re-exports its own submodules as a "cycle".
                for alias in node.names:
                    add_edge(src, alias.name, node.lineno)
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_from_import(
                    src, node, is_package=module.path.name == "__init__.py"
                )
                if not base:
                    continue
                add_edge(src, base, node.lineno)
                for alias in node.names:
                    if alias.name != "*":
                        add_edge(src, f"{base}.{alias.name}", node.lineno)
    return graph, first_line


def _toplevel_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Module-body statements, descending into if/try (they run at import)."""
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop(0)
        yield node
        if isinstance(node, ast.If):
            stack.extend(node.body)
            stack.extend(node.orelse)
        elif isinstance(node, ast.Try):
            stack.extend(node.body)
            stack.extend(node.orelse)
            stack.extend(node.finalbody)
            for handler in node.handlers:
                stack.extend(handler.body)


def _resolve_from_import(
    src_module: str, node: ast.ImportFrom, *, is_package: bool = False
) -> str:
    """Absolute module a ``from ... import`` targets ("" if unresolvable)."""
    if node.level == 0:
        return node.module or ""
    # Relative: level 1 means "my package" — which is the module itself
    # for an __init__.py, its parent otherwise.
    strip = node.level - 1 if is_package else node.level
    parts = src_module.split(".")
    if len(parts) < strip:
        return ""
    base_parts = parts[: len(parts) - strip] if strip else parts
    if node.module:
        base_parts = base_parts + node.module.split(".")
    return ".".join(base_parts)


def _cycles(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components with more than one member (Tarjan)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    result: List[List[str]] = []

    def strongconnect(v: str) -> None:
        # Iterative Tarjan: recursion depth would track module-graph depth.
        work: List[Tuple[str, Iterator[str]]] = [(v, iter(sorted(graph[v])))]
        index[v] = lowlink[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, edges = work[-1]
            advanced = False
            for dst in edges:
                if dst not in index:
                    index[dst] = lowlink[dst] = counter[0]
                    counter[0] += 1
                    stack.append(dst)
                    on_stack.add(dst)
                    work.append((dst, iter(sorted(graph[dst]))))
                    advanced = True
                    break
                if dst in on_stack:
                    lowlink[node] = min(lowlink[node], index[dst])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    result.append(sorted(component))

    for vertex in sorted(graph):
        if vertex not in index:
            strongconnect(vertex)
    # Self-loops (module importing itself) would be len==1; ignore.
    return result
