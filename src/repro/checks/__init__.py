"""repro.checks — determinism & cache-safety static analysis.

The reproduction's core claim (docs/RUNTIME.md) is that serial,
parallel, and cached runs agree bit for bit.  This package enforces
the invariants that claim rests on *statically*: unseeded global RNG
use, wall-clock and environment reads in cache-keyed code, mutable
default arguments, unsorted dict iteration feeding digests, task
functions that can't survive a worker round-trip, cache-key builders
that silently drop an input, and import-hygiene defects (undefined
names, unused imports, cycles).

Entry points:

- ``repro check [paths]`` — the CLI gate (text/JSON/GitHub output,
  inline ``# repro: noqa[RULE]`` suppressions, committed baseline).
- :func:`repro.checks.engine.run_checks` — the library API the CLI and
  tests share.
- :func:`repro.checks.registry.rule` — the decorator user extension
  modules use to ship additional rules (``--load-rules my.module``).

The rule catalog with per-rule rationale lives in ``docs/CHECKS.md``.
"""

from repro.checks.baseline import DEFAULT_BASELINE_NAME
from repro.checks.engine import (
    CheckReport,
    ModuleContext,
    ProjectContext,
    run_checks,
)
from repro.checks.findings import Finding
from repro.checks.registry import Rule, all_rules, get_rule, rule

__all__ = [
    "CheckReport",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "all_rules",
    "get_rule",
    "rule",
    "run_checks",
]
