"""The finding vocabulary shared by every rule and reporter.

A :class:`Finding` is one rule violation at one source location.  Rules
yield them; the engine filters them through inline ``# repro: noqa``
suppressions and the committed baseline; reporters render whatever
survives.  Findings are plain frozen dataclasses so they sort stably
(by path, then line, then rule) and serialize losslessly to JSON.

The *fingerprint* deliberately excludes the line number: baselines must
survive unrelated edits above a grandfathered violation, so identity is
``(rule_id, path, message)`` — messages name the offending symbol, which
keeps two different violations in one file distinguishable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

#: Finding severities, in increasing order of gravity.  Both gate CI —
#: severity only affects how reporters render a finding (and how
#: urgently a human should treat it), never whether it counts.
SEVERITIES: Tuple[str, ...] = ("warning", "error")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one ``path:line``.

    ``hint`` is the rule's fix suggestion — one imperative sentence a
    developer can act on without opening the rule catalog.
    """

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def location(self) -> str:
        """Clickable ``path:line`` form."""
        return f"{self.path}:{self.line}"

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.rule_id}::{self.path}::{self.message}"

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (stable key order)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`as_dict` (used by the incremental cache)."""
        return cls(
            path=payload["path"],
            line=payload["line"],
            col=payload["col"],
            rule_id=payload["rule"],
            severity=payload["severity"],
            message=payload["message"],
            hint=payload.get("hint", ""),
        )
