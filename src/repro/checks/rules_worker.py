"""Worker-safety rules (WRK001–WRK002).

Task functions registered through
:func:`repro.runtime.tasks.task_function` execute in pool workers:
they are resolved *by kind name* after a fork/spawn, so they must be
importable module-level callables, and anything they write to module
globals stays in the worker — invisible to the parent and to every
other worker, which is a serial-vs-parallel divergence by
construction.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional, Set, Tuple

from repro.checks.findings import Finding
from repro.checks.registry import get_rule, rule

if TYPE_CHECKING:
    from repro.checks.engine import ModuleContext

_TASK_DECORATOR_NAMES = {"task_function"}


def _task_decorated(node: ast.AST) -> bool:
    """Is this def decorated with ``@task_function("kind")``?"""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name: Optional[str] = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name in _TASK_DECORATOR_NAMES:
            return True
    return False


def _iter_task_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
    """``(def, ancestors)`` for every task-decorated function."""
    stack: list = [(tree, ())]
    while stack:
        node, parents = stack.pop()
        if _task_decorated(node):
            yield node, parents
        for child in ast.iter_child_nodes(node):
            stack.append((child, parents + (node,)))


@rule(
    "WRK001",
    name="task-fn-not-module-level",
    hint=(
        "move the task function to module scope so worker processes can "
        "resolve it by kind name after fork/spawn"
    ),
)
def task_fn_not_module_level(ctx: "ModuleContext") -> Iterator[Finding]:
    """Nested task functions are unreachable from worker processes.

    The engine ships ``kind`` strings, not function objects; the worker
    re-resolves them through ``TASK_FUNCTIONS``, whose entries register
    at *import* time.  A def nested in a function or class only
    registers when its enclosing scope runs — which a fresh worker
    never does — so ``jobs=1`` works and ``jobs=8`` raises (or worse,
    resolves a stale registration).
    """
    this = get_rule("WRK001")
    module = ctx.module
    for node, parents in _iter_task_functions(module.tree):
        nested = any(
            isinstance(p, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            for p in parents
        )
        if nested:
            yield this.finding(
                module.relpath,
                node.lineno,
                node.col_offset,
                f"task function {node.name}() is not defined at module level",
            )


@rule(
    "WRK002",
    name="task-fn-mutates-global-state",
    hint=(
        "return the data in the TaskResult instead; worker-side global "
        "writes never reach the parent process"
    ),
)
def task_fn_mutates_global_state(ctx: "ModuleContext") -> Iterator[Finding]:
    """Module-global writes inside task bodies diverge under a pool.

    Inline (``jobs=1``) the write lands in the parent's module and
    persists; in a worker it lands in a forked copy and evaporates.
    Results must flow through the :class:`TaskResult` — values,
    counters, metrics, spans — which the engine merges
    deterministically.  Flagged: ``global`` declarations, and stores
    through a module-level name (``CACHE[k] = v``, ``STATE.field = v``).
    """
    this = get_rule("WRK002")
    module = ctx.module
    module_names = _module_level_names(module.tree)
    for fn, _parents in _iter_task_functions(module.tree):
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        local_names = _local_names(fn)
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                yield this.finding(
                    module.relpath,
                    node.lineno,
                    node.col_offset,
                    f"task function {fn.name}() declares "
                    f"global {', '.join(node.names)}",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    base = _store_base_name(target)
                    if (
                        base is not None
                        and base in module_names
                        and base not in local_names
                    ):
                        yield this.finding(
                            module.relpath,
                            target.lineno,
                            target.col_offset,
                            f"task function {fn.name}() writes through "
                            f"module-level name {base!r}",
                        )


def _store_base_name(target: ast.AST) -> Optional[str]:
    """Root name of a subscript/attribute store target (``X[k]``, ``X.a``)."""
    cursor = target
    if not isinstance(cursor, (ast.Subscript, ast.Attribute)):
        return None
    while isinstance(cursor, (ast.Subscript, ast.Attribute)):
        cursor = cursor.value
    return cursor.id if isinstance(cursor, ast.Name) else None


def _module_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
    return names


def _local_names(fn: ast.AST) -> Set[str]:
    """Parameters plus names assigned (as plain names) inside the body."""
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    names: Set[str] = set()
    args = fn.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        names.add(arg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
        elif isinstance(node, ast.withitem) and isinstance(
            node.optional_vars, ast.Name
        ):
            names.add(node.optional_vars.id)
    return names
