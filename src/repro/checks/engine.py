"""Check orchestration: collect files, run rules, apply suppressions.

:func:`run_checks` is the one entry point the CLI and the tests share.
It parses every ``.py`` file under the given paths once, hands each
module to the module-scoped rules and the whole set to the
project-scoped rules, filters findings through inline
``# repro: noqa[RULE]`` comments, and returns a :class:`CheckReport`.
Baseline subtraction is deliberately *not* done here — the committed
baseline is a CLI/CI concern (see :mod:`repro.checks.baseline`), while
the report is the ground truth of what the rules see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

# Leaf import (not `from repro.checks import astutils`): the package
# __init__ imports this module, so going through the package would be
# exactly the IMP003 cycle this subsystem flags.
import repro.checks.astutils as astutils
import repro.checks.cache as cache_mod
import repro.checks.callgraph as callgraph_mod
from repro.checks.findings import Finding
from repro.checks.registry import get_rule, load_plugin, select_rules
from repro.errors import CheckError


@dataclass
class ProjectContext:
    """Everything the project-scoped rules can see."""

    modules: List[astutils.ModuleSource]
    _callgraph: Optional["callgraph_mod.CallGraph"] = field(
        default=None, repr=False, compare=False
    )

    def by_relpath(self) -> Dict[str, astutils.ModuleSource]:
        return {module.relpath: module for module in self.modules}

    def callgraph(self) -> "callgraph_mod.CallGraph":
        """The project call graph, built on first use and shared.

        Several project rules (CONC, transitive SVC/OBS) need it; one
        build per invocation keeps the whole-project pass linear.
        """
        if self._callgraph is None:
            self._callgraph = callgraph_mod.build_call_graph(self.modules)
        return self._callgraph


@dataclass
class ModuleContext:
    """One module plus the project it belongs to."""

    module: astutils.ModuleSource
    project: ProjectContext


@dataclass
class CheckReport:
    """The outcome of one analysis run (pre-baseline).

    ``files_analyzed`` counts files whose rules actually ran this
    invocation; ``files_cached`` counts files replayed from the
    incremental cache.  Without a cache every scanned file is analyzed.
    """

    findings: List[Finding]
    files_scanned: int
    noqa_suppressed: int
    rules_run: List[str] = field(default_factory=list)
    files_analyzed: int = 0
    files_cached: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == "warning")


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths``, stable order, no duplicates.

    Hidden directories and ``__pycache__`` are skipped; explicit file
    arguments are taken as-is (so a fixture with a weird name can still
    be analyzed directly).
    """
    seen: Dict[Path, None] = {}
    for path in paths:
        if not path.exists():
            raise CheckError(f"path does not exist: {path}")
        if path.is_file():
            seen.setdefault(path.resolve(), None)
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.relative_to(path).parts
            if any(p == "__pycache__" or p.startswith(".") for p in parts):
                continue
            seen.setdefault(candidate.resolve(), None)
    return list(seen)


def _relpath(path: Path) -> str:
    """Path as reported in findings: cwd-relative posix when possible."""
    try:
        rel = path.resolve().relative_to(Path.cwd())
    except ValueError:
        rel = path
    return rel.as_posix()


def run_checks(
    paths: Sequence[object],
    *,
    select: Optional[Iterable[str]] = None,
    plugins: Sequence[str] = (),
    cache: Optional[cache_mod.CheckCache] = None,
) -> CheckReport:
    """Analyze ``paths`` (files or directories) with the selected rules.

    ``plugins`` are module names imported first so their ``@rule``
    decorators register; ``select`` restricts to specific rule ids
    (default: every registered rule).  Files that fail to parse yield
    an ``IMP000`` finding instead of aborting the run.

    With a ``cache``, files whose content digest matches a cached entry
    replay their module-scope findings without being parsed, and an
    unchanged file *set* replays the project-scope findings too — a
    fully warm run analyzes zero files.  Project rules are whole-program
    by nature, so any changed file re-runs them over the full set.
    """
    for plugin in plugins:
        load_plugin(plugin)
    rules = select_rules(select or ())
    selected_ids = {r.rule_id for r in rules}
    module_rules = [r for r in rules if r.scope == "module"]
    project_rules = [r for r in rules if r.scope == "project"]

    files = collect_files([Path(p) for p in paths])
    located = [(path, _relpath(path)) for path in files]
    digests = {
        relpath: cache_mod.file_digest(path.read_bytes())
        for path, relpath in located
    }

    file_results: Dict[str, cache_mod.CachedResult] = {}
    dirty: List[Path] = []
    dirty_relpaths: List[str] = []
    for path, relpath in located:
        cached = (
            cache.get_file(relpath, digests[relpath]) if cache else None
        )
        if cached is not None:
            file_results[relpath] = cached
        else:
            dirty.append(path)
            dirty_relpaths.append(relpath)

    proj_key = cache_mod.project_digest(digests)
    project_result: Optional[cache_mod.CachedResult] = None
    if not project_rules:
        project_result = cache_mod.CachedResult(findings=[], suppressed=0)
    elif cache is not None and not dirty:
        project_result = cache.get_project(proj_key)

    # Dirty files must be parsed for their module rules; a stale
    # project pass needs every module's AST for the call graph.
    dirty_set = set(dirty_relpaths)
    parse_targets = located if project_result is None else [
        (path, relpath) for path, relpath in located if relpath in dirty_set
    ]
    modules: List[astutils.ModuleSource] = []
    syntax_findings: Dict[str, List[Finding]] = {}
    for path, relpath in parse_targets:
        try:
            modules.append(astutils.parse_module(path, relpath))
        except SyntaxError as exc:
            if relpath in dirty_set and "IMP000" in selected_ids:
                syntax_findings[relpath] = [
                    get_rule("IMP000").finding(
                        relpath,
                        exc.lineno or 1,
                        (exc.offset or 1) - 1,
                        f"syntax error: {exc.msg}",
                    )
                ]

    project = ProjectContext(modules)
    by_relpath = project.by_relpath()

    for relpath in dirty_relpaths:
        raw: List[Finding] = list(syntax_findings.get(relpath, []))
        module = by_relpath.get(relpath)
        if module is not None:
            for a_rule in module_rules:
                raw.extend(a_rule.func(ModuleContext(module, project)))
        result = _suppress(raw, by_relpath)
        file_results[relpath] = result
        if cache is not None:
            cache.put_file(relpath, digests[relpath], result)

    if project_result is None:
        raw = []
        for a_rule in project_rules:
            raw.extend(a_rule.func(project))
        project_result = _suppress(raw, by_relpath)
        if cache is not None:
            cache.put_project(proj_key, project_result)

    if cache is not None:
        cache.save()

    findings: List[Finding] = list(project_result.findings)
    suppressed = project_result.suppressed
    for result in file_results.values():
        findings.extend(result.findings)
        suppressed += result.suppressed
    findings.sort()
    return CheckReport(
        findings=findings,
        files_scanned=len(files),
        noqa_suppressed=suppressed,
        rules_run=sorted(selected_ids),
        files_analyzed=len(dirty_relpaths),
        files_cached=len(files) - len(dirty_relpaths),
    )


def _suppress(
    findings: List[Finding],
    by_relpath: Dict[str, astutils.ModuleSource],
) -> cache_mod.CachedResult:
    """Apply inline ``# repro: noqa`` filtering to one batch of findings."""
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        module = by_relpath.get(finding.path)
        if module is not None and module.is_suppressed(
            finding.rule_id, finding.line
        ):
            suppressed += 1
            continue
        kept.append(finding)
    return cache_mod.CachedResult(findings=kept, suppressed=suppressed)
