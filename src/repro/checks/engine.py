"""Check orchestration: collect files, run rules, apply suppressions.

:func:`run_checks` is the one entry point the CLI and the tests share.
It parses every ``.py`` file under the given paths once, hands each
module to the module-scoped rules and the whole set to the
project-scoped rules, filters findings through inline
``# repro: noqa[RULE]`` comments, and returns a :class:`CheckReport`.
Baseline subtraction is deliberately *not* done here — the committed
baseline is a CLI/CI concern (see :mod:`repro.checks.baseline`), while
the report is the ground truth of what the rules see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

# Leaf import (not `from repro.checks import astutils`): the package
# __init__ imports this module, so going through the package would be
# exactly the IMP003 cycle this subsystem flags.
import repro.checks.astutils as astutils
from repro.checks.findings import Finding
from repro.checks.registry import Rule, get_rule, load_plugin, select_rules
from repro.errors import CheckError


@dataclass
class ProjectContext:
    """Everything the project-scoped rules can see."""

    modules: List[astutils.ModuleSource]

    def by_relpath(self) -> Dict[str, astutils.ModuleSource]:
        return {module.relpath: module for module in self.modules}


@dataclass
class ModuleContext:
    """One module plus the project it belongs to."""

    module: astutils.ModuleSource
    project: ProjectContext


@dataclass
class CheckReport:
    """The outcome of one analysis run (pre-baseline)."""

    findings: List[Finding]
    files_scanned: int
    noqa_suppressed: int
    rules_run: List[str] = field(default_factory=list)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == "warning")


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths``, stable order, no duplicates.

    Hidden directories and ``__pycache__`` are skipped; explicit file
    arguments are taken as-is (so a fixture with a weird name can still
    be analyzed directly).
    """
    seen: Dict[Path, None] = {}
    for path in paths:
        if not path.exists():
            raise CheckError(f"path does not exist: {path}")
        if path.is_file():
            seen.setdefault(path.resolve(), None)
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.relative_to(path).parts
            if any(p == "__pycache__" or p.startswith(".") for p in parts):
                continue
            seen.setdefault(candidate.resolve(), None)
    return list(seen)


def _relpath(path: Path) -> str:
    """Path as reported in findings: cwd-relative posix when possible."""
    try:
        rel = path.resolve().relative_to(Path.cwd())
    except ValueError:
        rel = path
    return rel.as_posix()


def run_checks(
    paths: Sequence[object],
    *,
    select: Optional[Iterable[str]] = None,
    plugins: Sequence[str] = (),
) -> CheckReport:
    """Analyze ``paths`` (files or directories) with the selected rules.

    ``plugins`` are module names imported first so their ``@rule``
    decorators register; ``select`` restricts to specific rule ids
    (default: every registered rule).  Files that fail to parse yield
    an ``IMP000`` finding instead of aborting the run.
    """
    for plugin in plugins:
        load_plugin(plugin)
    rules = select_rules(select or ())
    selected_ids = {r.rule_id for r in rules}

    files = collect_files([Path(p) for p in paths])
    modules: List[astutils.ModuleSource] = []
    findings: List[Finding] = []
    for path in files:
        relpath = _relpath(path)
        try:
            modules.append(astutils.parse_module(path, relpath))
        except SyntaxError as exc:
            if "IMP000" in selected_ids:
                findings.append(
                    get_rule("IMP000").finding(
                        relpath,
                        exc.lineno or 1,
                        (exc.offset or 1) - 1,
                        f"syntax error: {exc.msg}",
                    )
                )

    project = ProjectContext(modules)
    for a_rule in rules:
        findings.extend(_run_rule(a_rule, project))

    by_relpath = project.by_relpath()
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        module = by_relpath.get(finding.path)
        if module is not None and module.is_suppressed(
            finding.rule_id, finding.line
        ):
            suppressed += 1
            continue
        kept.append(finding)
    kept.sort()
    return CheckReport(
        findings=kept,
        files_scanned=len(files),
        noqa_suppressed=suppressed,
        rules_run=sorted(selected_ids),
    )


def _run_rule(a_rule: Rule, project: ProjectContext) -> List[Finding]:
    findings: List[Finding] = []
    if a_rule.scope == "project":
        findings.extend(a_rule.func(project))
        return findings
    for module in project.modules:
        findings.extend(a_rule.func(ModuleContext(module, project)))
    return findings
