"""Agglomerative clustering with a distance cutoff.

Implements bottom-up merging under average or complete linkage using the
Lance-Williams recurrence on a full distance matrix.  Like the leader
algorithm it takes a distance threshold rather than k, which matches the
paper's similarity-radius framing; unlike leader it is order-independent.
O(n^2) memory and roughly O(n^2 log n) time — fine at per-frame draw
counts (hundreds to a few thousand).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distance import pairwise_euclidean
from repro.errors import ClusteringError
from repro.util.validation import check_in

LINKAGES = ("average", "complete")


@dataclass(frozen=True)
class AgglomerativeResult:
    """Cluster labels after cutting the merge tree at the threshold."""

    labels: np.ndarray
    num_clusters: int


def agglomerative_cluster(
    matrix: np.ndarray, threshold: float, linkage: str = "average"
) -> AgglomerativeResult:
    """Merge clusters until no inter-cluster distance is <= ``threshold``."""
    check_in("linkage", linkage, LINKAGES)
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise ClusteringError(
            f"matrix must be a non-empty 2-D array, got shape {matrix.shape}"
        )
    if not threshold > 0:
        raise ClusteringError(f"threshold must be > 0, got {threshold}")

    n = matrix.shape[0]
    if n == 1:
        return AgglomerativeResult(labels=np.zeros(1, dtype=np.int64), num_clusters=1)

    distances = pairwise_euclidean(matrix)
    np.fill_diagonal(distances, np.inf)
    active = np.ones(n, dtype=bool)
    sizes = np.ones(n)
    # Union-find-ish: parent pointer flattened at the end.
    members: list = [[i] for i in range(n)]

    while True:
        flat = np.argmin(distances)
        a, b = np.unravel_index(flat, distances.shape)
        if distances[a, b] > threshold or not np.isfinite(distances[a, b]):
            break
        a, b = int(min(a, b)), int(max(a, b))
        # Lance-Williams update of row/column a to represent (a U b).
        if linkage == "average":
            wa = sizes[a] / (sizes[a] + sizes[b])
            wb = sizes[b] / (sizes[a] + sizes[b])
            merged = wa * distances[a] + wb * distances[b]
        else:  # complete
            merged = np.maximum(distances[a], distances[b])
        distances[a, :] = merged
        distances[:, a] = merged
        distances[a, a] = np.inf
        distances[b, :] = np.inf
        distances[:, b] = np.inf
        sizes[a] += sizes[b]
        members[a].extend(members[b])
        members[b] = []
        active[b] = False
        if active.sum() == 1:
            break

    labels = np.empty(n, dtype=np.int64)
    cluster_id = 0
    for i in range(n):
        if active[i]:
            for member in members[i]:
                labels[member] = cluster_id
            cluster_id += 1
    return AgglomerativeResult(labels=labels, num_clusters=cluster_id)
