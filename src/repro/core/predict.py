"""Frame-performance prediction from cluster representatives.

Predicted frame time = sum over clusters of (population x representative
time).  Representative times come from simulating only the representative
draws, in their original submission order — exactly the reduced
simulation a pathfinding team would run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.cluster_frame import FrameClustering
from repro.errors import ValidationError
from repro.gfx.frame import Frame
from repro.gfx.trace import Trace
from repro.simgpu.config import GpuConfig
from repro.simgpu.simulator import GpuSimulator


@dataclass(frozen=True)
class FramePrediction:
    """Predicted vs actual performance of one frame.

    Two predictions are carried:

    - ``predicted_time_ns`` — representatives priced at their *in-context*
      cost from the detailed run (the paper's per-frame prediction-error
      metric: pure clustering fidelity).
    - ``isolated_time_ns`` — representatives re-simulated alone, as a
      deployment would run them; includes the cold-context bias of
      isolated re-simulation.  May be ``None`` when not computed.
    """

    frame_index: int
    actual_time_ns: float
    predicted_time_ns: float
    num_draws: int
    num_clusters: int
    isolated_time_ns: Optional[float] = None

    @property
    def error(self) -> float:
        """Relative in-context prediction error, as a fraction (0.01 == 1%)."""
        return abs(self.predicted_time_ns - self.actual_time_ns) / self.actual_time_ns

    @property
    def isolated_error(self) -> float:
        """Relative error of the isolated re-simulation prediction."""
        if self.isolated_time_ns is None:
            raise ValidationError(
                "isolated prediction was not computed for this frame"
            )
        return abs(self.isolated_time_ns - self.actual_time_ns) / self.actual_time_ns

    @property
    def efficiency(self) -> float:
        return 1.0 - self.num_clusters / self.num_draws


def predict_time_ns(
    rep_times_ns: Sequence[float], weights: Sequence[int]
) -> float:
    """Weighted-representative frame-time estimate."""
    rep_times = np.asarray(rep_times_ns, dtype=float)
    weight_arr = np.asarray(weights, dtype=float)
    if rep_times.shape != weight_arr.shape:
        raise ValidationError(
            f"rep_times and weights must match: {rep_times.shape} vs "
            f"{weight_arr.shape}"
        )
    if rep_times.size == 0:
        raise ValidationError("prediction needs at least one representative")
    return float(rep_times @ weight_arr)


def representative_draw_order(clustering: FrameClustering) -> np.ndarray:
    """Representative indices sorted into original submission order.

    Simulating representatives in submission order preserves whatever
    context effects (state switches, warmth) survive subsetting.
    """
    return np.sort(clustering.representatives)


def predict_frame(
    frame: Frame,
    trace: Trace,
    clustering: FrameClustering,
    config: GpuConfig,
    actual_time_ns: float,
    draw_times_ns: Optional[Sequence[float]] = None,
) -> FramePrediction:
    """Simulate a frame's representatives alone and predict its full time.

    ``actual_time_ns`` is the ground-truth frame time from the full
    simulation the caller already ran.  When that run's per-draw times
    are supplied via ``draw_times_ns``, the in-context prediction (the
    paper's metric) is computed from them; otherwise the isolated
    re-simulation serves as both predictions.
    """
    draws = frame.draw_list
    if len(draws) != clustering.num_draws:
        raise ValidationError(
            f"clustering covers {clustering.num_draws} draws but frame "
            f"{frame.index} has {len(draws)}"
        )
    order = representative_draw_order(clustering)
    rep_draws = [draws[i] for i in order]
    costs = GpuSimulator(config).simulate_draws(
        rep_draws, trace, frame_index=frame.index
    )
    time_by_draw_index = {
        int(draw_index): cost.time_ns for draw_index, cost in zip(order, costs)
    }
    isolated_times = [
        time_by_draw_index[int(rep)] for rep in clustering.representatives
    ]
    isolated = predict_time_ns(isolated_times, clustering.weights)
    if draw_times_ns is not None:
        in_context_times = rep_times_from_draw_times(clustering, draw_times_ns)
        predicted = predict_time_ns(in_context_times, clustering.weights)
    else:
        predicted = isolated
    return FramePrediction(
        frame_index=frame.index,
        actual_time_ns=actual_time_ns,
        predicted_time_ns=predicted,
        num_draws=clustering.num_draws,
        num_clusters=clustering.num_clusters,
        isolated_time_ns=isolated,
    )


def rep_times_from_draw_times(
    clustering: FrameClustering, draw_times_ns: Sequence[float]
) -> List[float]:
    """Representative times read out of a full per-draw simulation.

    Used for cluster-quality metrics (E2), where the question is how well
    the representative's *in-context* cost stands for its cluster.
    """
    times = np.asarray(draw_times_ns, dtype=float)
    if times.shape[0] != clustering.num_draws:
        raise ValidationError(
            f"draw_times covers {times.shape[0]} draws but clustering has "
            f"{clustering.num_draws}"
        )
    return [float(times[int(rep)]) for rep in clustering.representatives]
