"""Feature normalization.

Clustering distances are meaningless when features live on wildly
different scales (log-pixels vs ALU counts vs 0/1 flags).  The paper
clusters per frame, so the default workflow fits a normalizer on each
frame's feature matrix.  Zero-variance columns normalize to exactly zero
so constant features never contribute distance.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.util.validation import check_in

METHODS = ("zscore", "minmax", "none")


class Normalizer:
    """Fit/transform feature matrices with a chosen scheme."""

    def __init__(self, method: str = "zscore") -> None:
        check_in("method", method, METHODS)
        self.method = method
        self._center: np.ndarray = np.empty(0)
        self._scale: np.ndarray = np.empty(0)
        self._fitted = False

    def fit(self, matrix: np.ndarray) -> "Normalizer":
        """Learn per-column statistics from ``matrix``."""
        matrix = _check_matrix(matrix)
        if self.method == "zscore":
            self._center = matrix.mean(axis=0)
            self._scale = matrix.std(axis=0)
        elif self.method == "minmax":
            self._center = matrix.min(axis=0)
            self._scale = matrix.max(axis=0) - self._center
        else:  # none
            self._center = np.zeros(matrix.shape[1])
            self._scale = np.ones(matrix.shape[1])
        # Constant columns carry no information; map them to zero.
        self._scale = np.where(self._scale == 0.0, np.inf, self._scale)
        self._fitted = True
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Apply the fitted statistics to ``matrix``."""
        if not self._fitted:
            raise ValidationError("Normalizer.transform called before fit")
        matrix = _check_matrix(matrix)
        if matrix.shape[1] != self._center.shape[0]:
            raise ValidationError(
                f"matrix has {matrix.shape[1]} columns but normalizer was "
                f"fitted on {self._center.shape[0]}"
            )
        return (matrix - self._center) / self._scale

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).transform(matrix)


def _check_matrix(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValidationError(
            f"feature matrix must be 2-D, got shape {matrix.shape}"
        )
    if matrix.shape[0] == 0:
        raise ValidationError("feature matrix must have at least one row")
    if not np.all(np.isfinite(matrix)):
        raise ValidationError("feature matrix contains non-finite values")
    return matrix
