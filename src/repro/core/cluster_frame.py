"""Per-frame draw-call clustering — the driver for the paper's first part.

Given a frame's micro-architecture-independent feature matrix, normalize
it, run the chosen grouping algorithm, and select one representative per
cluster with its population weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.hierarchical import agglomerative_cluster
from repro.core.kmeans import kmeans
from repro.core.kselect import select_k_bic
from repro.core.leader import leader_cluster
from repro.core.normalize import Normalizer
from repro.core.representatives import cluster_sizes, representative_indices
from repro.errors import ClusteringError
from repro.util.validation import check_in

METHODS = ("leader", "kmeans", "kmeans_bic", "agglomerative")

# Default similarity radius in per-frame z-scored feature space.
# Calibrated so the BioShock-like corpus lands at the paper's operating
# point (~66% clustering efficiency, ~3% cluster outliers); see
# EXPERIMENTS.md for the calibration sweep (E3).
DEFAULT_RADIUS = 0.21


@dataclass(frozen=True)
class FrameClustering:
    """Clustering of one frame's draws.

    ``labels[i]`` is the cluster of draw i; ``representatives[c]`` is the
    draw index simulated for cluster c; ``weights[c]`` its population.
    """

    labels: np.ndarray
    representatives: np.ndarray
    weights: np.ndarray
    method: str

    @property
    def num_draws(self) -> int:
        return int(self.labels.shape[0])

    @property
    def num_clusters(self) -> int:
        return int(self.representatives.shape[0])

    @property
    def efficiency(self) -> float:
        """Fraction of per-draw simulations avoided (paper's metric)."""
        return 1.0 - self.num_clusters / self.num_draws


def cluster_frame(
    features: np.ndarray,
    method: str = "leader",
    radius: float = DEFAULT_RADIUS,
    k: Optional[int] = None,
    k_candidates: Optional[Sequence[int]] = None,
    linkage: str = "average",
    normalize: str = "zscore",
    seed: int = 0,
) -> FrameClustering:
    """Cluster one frame's feature matrix.

    Args:
        features: (num_draws, num_features) raw feature matrix.
        method: 'leader' (radius, default), 'kmeans' (fixed k),
            'kmeans_bic' (BIC-selected k), or 'agglomerative' (threshold).
        radius: similarity radius for 'leader'/'agglomerative', in
            normalized feature space.
        k: cluster count for 'kmeans'.
        k_candidates: k search range for 'kmeans_bic'; defaults to powers
            of two up to num_draws.
        linkage: linkage rule for 'agglomerative'.
        normalize: 'zscore' (default), 'minmax', or 'none'.
        seed: randomness seed (k-means initialization).
    """
    check_in("method", method, METHODS)
    features = np.asarray(features, dtype=float)
    if features.ndim != 2 or features.shape[0] == 0:
        raise ClusteringError(
            f"features must be a non-empty 2-D matrix, got shape {features.shape}"
        )
    normalized = Normalizer(normalize).fit_transform(features)

    if method == "leader":
        labels = leader_cluster(normalized, radius).labels
    elif method == "agglomerative":
        labels = agglomerative_cluster(normalized, radius, linkage).labels
    elif method == "kmeans":
        if k is None:
            raise ClusteringError("method 'kmeans' requires k")
        labels = kmeans(normalized, min(k, features.shape[0]), seed=seed).labels
    else:  # kmeans_bic
        if k_candidates is None:
            n = features.shape[0]
            k_candidates = [1, 2, 4, 8, 16, 32, 64, 128]
            k_candidates = [c for c in k_candidates if c <= n] or [n]
        labels = select_k_bic(normalized, k_candidates, seed=seed).result.labels

    labels = _compact_labels(labels)
    representatives = representative_indices(normalized, labels)
    weights = cluster_sizes(labels)
    return FrameClustering(
        labels=labels,
        representatives=representatives,
        weights=weights,
        method=method,
    )


def _compact_labels(labels: np.ndarray) -> np.ndarray:
    """Renumber labels to contiguous 0..k-1 preserving first-seen order."""
    mapping = {}
    out = np.empty_like(labels)
    for i, label in enumerate(labels):
        key = int(label)
        if key not in mapping:
            mapping[key] = len(mapping)
        out[i] = mapping[key]
    return out
