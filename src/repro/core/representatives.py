"""Representative selection: one simulated draw stands in for its cluster."""

from __future__ import annotations

import numpy as np

from repro.core.distance import euclidean_to_point
from repro.errors import ClusteringError


def representative_indices(matrix: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """The medoid-ish representative of each cluster.

    For each cluster, the member nearest the cluster centroid in feature
    space.  Returns an array of row indices, one per cluster id
    (0..num_clusters-1), in cluster-id order.
    """
    matrix = np.asarray(matrix, dtype=float)
    labels = np.asarray(labels)
    if matrix.shape[0] != labels.shape[0]:
        raise ClusteringError(
            f"matrix has {matrix.shape[0]} rows but labels has {labels.shape[0]}"
        )
    if matrix.shape[0] == 0:
        raise ClusteringError("cannot pick representatives of an empty matrix")
    num_clusters = int(labels.max()) + 1
    expected = set(range(num_clusters))
    present = set(np.unique(labels).tolist())
    if present != expected:
        raise ClusteringError(
            f"labels must be contiguous 0..{num_clusters - 1}; got {sorted(present)}"
        )
    reps = np.empty(num_clusters, dtype=np.int64)
    for cluster in range(num_clusters):
        member_rows = np.nonzero(labels == cluster)[0]
        centroid = matrix[member_rows].mean(axis=0)
        dists = euclidean_to_point(matrix[member_rows], centroid)
        reps[cluster] = member_rows[int(np.argmin(dists))]
    return reps


def cluster_sizes(labels: np.ndarray) -> np.ndarray:
    """Population of each cluster id (the prediction weights)."""
    labels = np.asarray(labels)
    if labels.size == 0:
        raise ClusteringError("labels must be non-empty")
    return np.bincount(labels, minlength=int(labels.max()) + 1).astype(np.int64)
