"""Choosing k for k-means: BIC score and SimPoint-style search.

SimPoint picks the smallest k whose BIC reaches a fixed fraction of the
best BIC seen across the k range; we use the same rule for the k-means
variant of draw-call clustering and for the frame-level SimPoint-analog
baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.kmeans import KMeansResult, kmeans
from repro.errors import ClusteringError


def bic_score(matrix: np.ndarray, result: KMeansResult) -> float:
    """Bayesian information criterion of a k-means clustering.

    Spherical-Gaussian formulation (Pelleg & Moore's X-means, as used by
    SimPoint): higher is better.
    """
    matrix = np.asarray(matrix, dtype=float)
    n, d = matrix.shape
    k = result.num_clusters
    if n <= k:
        # Degenerate: every point its own cluster; likelihood unbounded.
        return float("inf")
    variance = result.inertia / (d * (n - k))
    if variance <= 0.0:
        return float("inf")
    log_likelihood = 0.0
    for j in range(k):
        size = int((result.labels == j).sum())
        if size == 0:
            continue
        log_likelihood += (
            size * math.log(size / n)
            - 0.5 * size * d * math.log(2.0 * math.pi * variance)
            - 0.5 * (size - k / n) * d
        )
    free_parameters = k * (d + 1)
    return log_likelihood - 0.5 * free_parameters * math.log(n)


@dataclass(frozen=True)
class KSelection:
    """Outcome of a BIC-driven k search."""

    k: int
    result: KMeansResult
    bic_by_k: Tuple[Tuple[int, float], ...]


def select_k_bic(
    matrix: np.ndarray,
    k_candidates: Sequence[int],
    seed: int = 0,
    bic_fraction: float = 0.9,
) -> KSelection:
    """Pick the smallest candidate k reaching ``bic_fraction`` of max BIC."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise ClusteringError(
            f"matrix must be a non-empty 2-D array, got shape {matrix.shape}"
        )
    n = matrix.shape[0]
    candidates = sorted({k for k in k_candidates if 1 <= k <= n})
    if not candidates:
        raise ClusteringError(
            f"no valid k candidates in [1, {n}] among {list(k_candidates)}"
        )
    results = {}
    scores = {}
    for k in candidates:
        result = kmeans(matrix, k, seed=seed)
        results[k] = result
        scores[k] = bic_score(matrix, result)
    finite = [s for s in scores.values() if math.isfinite(s)]
    if not finite:
        chosen = candidates[0]
    else:
        best = max(finite)
        # Threshold interpolates toward the worst score when best <= 0.
        worst = min(finite)
        cut = worst + bic_fraction * (best - worst)
        chosen = candidates[-1]
        for k in candidates:
            if math.isfinite(scores[k]) and scores[k] >= cut:
                chosen = k
                break
    return KSelection(
        k=chosen,
        result=results[chosen],
        bic_by_k=tuple((k, scores[k]) for k in candidates),
    )


def silhouette_score(matrix: np.ndarray, labels: np.ndarray, sample: int = 256,
                     seed: int = 0) -> float:
    """Mean silhouette over a sample of points (exact when n <= sample)."""
    from repro.core.distance import cdist_euclidean
    from repro.util.rng import make_rng

    matrix = np.asarray(matrix, dtype=float)
    labels = np.asarray(labels)
    n = matrix.shape[0]
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ClusteringError("silhouette requires at least two clusters")
    if n > sample:
        picks = make_rng(seed, "silhouette", n).choice(n, size=sample, replace=False)
    else:
        picks = np.arange(n)
    total = 0.0
    counted = 0
    dists = cdist_euclidean(matrix[picks], matrix)
    for row, i in enumerate(picks):
        own = labels[i]
        own_mask = labels == own
        own_size = int(own_mask.sum())
        if own_size <= 1:
            continue  # singleton: silhouette undefined, conventionally 0
        a = dists[row][own_mask].sum() / (own_size - 1)
        b = min(
            dists[row][labels == other].mean()
            for other in unique
            if other != own
        )
        total += (b - a) / max(a, b) if max(a, b) > 0 else 0.0
        counted += 1
    if counted == 0:
        return 0.0
    return total / counted
