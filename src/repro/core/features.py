"""Micro-architecture-independent draw-call characteristics.

These are the clustering features of the paper's first contribution.
Every entry is observable from the API stream alone — geometry counts,
static shader instruction mix, texture demands, render-target traffic,
fixed-function state — and none depends on any GPU's cache sizes, core
counts, or clocks.  Count-like features are log-compressed so a 10x and
a 11x-vertex draw are near, while a 10x and a 10000x draw are far.

Deliberately absent (they are micro-architecture *dependent*): register
pressure / occupancy, cache warmth, position in the frame, and any
simulated cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.gfx.drawcall import DrawCall
from repro.gfx.frame import Frame
from repro.gfx.trace import Trace
from repro.simgpu import _kernels

FEATURE_NAMES = (
    "log_vertices",
    "log_primitives",
    "log_pixels_rasterized",
    "log_pixels_shaded",
    "vs_alu_ops",
    "vs_tex_ops",
    "ps_alu_ops",
    "ps_tex_ops",
    "interpolants",
    "log_texture_footprint",
    "num_textures",
    "rt_bytes_per_pixel",
    "num_render_targets",
    "log_vertex_stride",
    "log_instances",
    "depth_reads",
    "depth_writes",
    "blend_reads_dest",
    "cull_disabled",
)

NUM_FEATURES = len(FEATURE_NAMES)


class FeatureExtractor:
    """Extracts feature vectors/matrices for the draws of one trace.

    Matrix extraction is column-vectorized: scalar draw attributes are
    gathered into numpy columns in one pass, shader sub-vectors come from
    a per-trace ``(num_shaders, 5)`` table via fancy indexing, and the
    ``log1p`` compression runs over whole columns.  :meth:`extract` stays
    as the one-draw reference; :meth:`draws_matrix` produces bit-identical
    rows without paying a Python-level model evaluation per draw.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self._shader_lookup: Optional[Tuple[np.ndarray, Dict[int, int]]] = None
        self._footprint_cache: Dict[tuple, float] = {}
        self._rt_bpp_cache: Dict[tuple, float] = {}
        self._texture_sizes: Optional[Dict[int, int]] = None
        self._rt_bpp_by_id: Optional[Dict[int, float]] = None

    def extract(self, draw: DrawCall) -> np.ndarray:
        """The feature vector of one draw (length ``NUM_FEATURES``).

        Uses ``np.log1p`` (not ``math.log1p``) so scalar extraction is
        bit-identical to the vectorized :meth:`draws_matrix` columns —
        the two can differ by 1 ULP on some inputs.
        """
        row = np.empty(NUM_FEATURES)
        row[0] = np.log1p(draw.total_vertices)
        row[1] = np.log1p(draw.primitive_count)
        row[2] = np.log1p(draw.pixels_rasterized)
        row[3] = np.log1p(draw.pixels_shaded)
        row[4:9] = self._shader_features(draw.shader_id)
        row[9] = np.log1p(self._footprint(draw.texture_ids))
        row[10] = len(draw.texture_ids)
        row[11] = self._rt_bytes_per_pixel(draw.render_target_ids)
        row[12] = len(draw.render_target_ids)
        row[13] = np.log1p(draw.vertex_stride_bytes)
        row[14] = np.log1p(draw.instance_count)
        row[15] = 1.0 if draw.state.depth.reads_depth else 0.0
        row[16] = 1.0 if draw.state.depth.writes_depth else 0.0
        row[17] = 1.0 if draw.state.blend.reads_destination else 0.0
        row[18] = 1.0 if draw.state.cull.value == "none" else 0.0
        return row

    def frame_matrix(self, frame: Frame) -> np.ndarray:
        """Feature matrix of a frame: (num_draws, NUM_FEATURES)."""
        draws = frame.draw_list
        if not draws:
            raise ValidationError(f"frame {frame.index} has no draws")
        return self.draws_matrix(draws)

    def draws_matrix(self, draws: Sequence[DrawCall]) -> np.ndarray:
        """Feature matrix for an arbitrary draw sequence, vectorized.

        Row ``i`` equals ``extract(draws[i])`` exactly (``math.log1p``
        and ``np.log1p`` are the same libm call).
        """
        n = len(draws)
        matrix = np.empty((n, NUM_FEATURES))
        if n == 0:
            return matrix
        counts = np.array(
            [
                (
                    d.total_vertices,
                    d.primitive_count,
                    d.pixels_rasterized,
                    d.pixels_shaded,
                    d.vertex_stride_bytes,
                    d.instance_count,
                )
                for d in draws
            ],
            dtype=float,
        )
        np.log1p(counts, out=counts)
        matrix[:, 0:4] = counts[:, 0:4]
        matrix[:, 13] = counts[:, 4]
        matrix[:, 14] = counts[:, 5]
        table, index = self._shader_table()
        try:
            rows = np.array(
                [index[d.shader_id] for d in draws], dtype=np.intp
            )
        except KeyError as missing:
            self.trace.shader(missing.args[0])  # raises "unknown shader"
            raise
        matrix[:, 4:9] = table[rows]
        # Texture/render-target columns run as flat slot arrays through
        # the segment-sum kernels: per-draw totals of per-trace size
        # tables, bit-identical to the python sums in extract() because
        # every addend is an exact integer / dyadic float.
        tex_sizes, tex_offsets = self._texture_slot_arrays(draws)
        matrix[:, 9] = np.log1p(
            _kernels.segment_sums_i64(tex_sizes, tex_offsets).astype(np.float64)
        )
        matrix[:, 10] = np.diff(tex_offsets)
        rt_bpps, rt_offsets = self._render_target_slot_arrays(draws)
        matrix[:, 11] = _kernels.segment_sums(rt_bpps, rt_offsets)
        matrix[:, 12] = np.diff(rt_offsets)
        matrix[:, 15] = [d.state.depth.reads_depth for d in draws]
        matrix[:, 16] = [d.state.depth.writes_depth for d in draws]
        matrix[:, 17] = [d.state.blend.reads_destination for d in draws]
        matrix[:, 18] = [d.state.cull.value == "none" for d in draws]
        return matrix

    def trace_matrices(self) -> List[np.ndarray]:
        """One feature matrix per frame, for the whole trace."""
        return [self.frame_matrix(frame) for frame in self.trace.frames]

    # -- cached lookups ------------------------------------------------------

    def _shader_table(self) -> Tuple[np.ndarray, Dict[int, int]]:
        """Per-trace shader feature table + shader-id -> row mapping."""
        if self._shader_lookup is None:
            index: Dict[int, int] = {}
            rows = []
            for shader_id, shader in self.trace.shaders.items():
                index[shader_id] = len(rows)
                rows.append(
                    (
                        float(shader.vertex.alu_ops),
                        float(shader.vertex.tex_ops),
                        float(shader.pixel.alu_ops),
                        float(shader.pixel.tex_ops),
                        float(shader.pixel.interpolants),
                    )
                )
            table = np.array(rows) if rows else np.empty((0, 5))
            self._shader_lookup = (table, index)
        return self._shader_lookup

    def _shader_features(self, shader_id: int) -> np.ndarray:
        table, index = self._shader_table()
        row = index.get(shader_id)
        if row is None:
            self.trace.shader(shader_id)  # raises "unknown shader"
        return table[index[shader_id]]

    def _texture_slot_arrays(
        self, draws: Sequence[DrawCall]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat per-slot texture byte sizes + per-draw offsets.

        The per-trace id -> byte_size table is built once (``byte_size``
        is a computed property, so this also caches its evaluation).
        """
        if self._texture_sizes is None:
            self._texture_sizes = {
                tid: tex.byte_size for tid, tex in self.trace.textures.items()
            }
        table = self._texture_sizes
        offsets = np.zeros(len(draws) + 1, dtype=np.int64)
        flat: List[int] = []
        try:
            for i, draw in enumerate(draws):
                offsets[i] = len(flat)
                for tid in draw.texture_ids:
                    flat.append(table[tid])
        except KeyError as missing:
            self.trace.texture(missing.args[0])  # raises "unknown texture"
            raise
        offsets[len(draws)] = len(flat)
        return np.array(flat, dtype=np.int64), offsets

    def _render_target_slot_arrays(
        self, draws: Sequence[DrawCall]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat per-slot render-target bytes/pixel + per-draw offsets."""
        if self._rt_bpp_by_id is None:
            self._rt_bpp_by_id = {
                rid: rt.bytes_per_pixel
                for rid, rt in self.trace.render_targets.items()
            }
        table = self._rt_bpp_by_id
        offsets = np.zeros(len(draws) + 1, dtype=np.int64)
        flat: List[float] = []
        try:
            for i, draw in enumerate(draws):
                offsets[i] = len(flat)
                for rid in draw.render_target_ids:
                    flat.append(table[rid])
        except KeyError as missing:
            self.trace.render_target(missing.args[0])  # raises "unknown RT"
            raise
        offsets[len(draws)] = len(flat)
        return np.array(flat, dtype=np.float64), offsets

    def _footprint(self, texture_ids: tuple) -> float:
        cached = self._footprint_cache.get(texture_ids)
        if cached is None:
            cached = float(
                sum(self.trace.texture(tid).byte_size for tid in texture_ids)
            )
            self._footprint_cache[texture_ids] = cached
        return cached

    def _rt_bytes_per_pixel(self, target_ids: tuple) -> float:
        cached = self._rt_bpp_cache.get(target_ids)
        if cached is None:
            cached = float(
                sum(
                    self.trace.render_target(rid).bytes_per_pixel
                    for rid in target_ids
                )
            )
            self._rt_bpp_cache[target_ids] = cached
        return cached
