"""Micro-architecture-independent draw-call characteristics.

These are the clustering features of the paper's first contribution.
Every entry is observable from the API stream alone — geometry counts,
static shader instruction mix, texture demands, render-target traffic,
fixed-function state — and none depends on any GPU's cache sizes, core
counts, or clocks.  Count-like features are log-compressed so a 10x and
a 11x-vertex draw are near, while a 10x and a 10000x draw are far.

Deliberately absent (they are micro-architecture *dependent*): register
pressure / occupancy, cache warmth, position in the frame, and any
simulated cost.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.gfx.drawcall import DrawCall
from repro.gfx.frame import Frame
from repro.gfx.trace import Trace

FEATURE_NAMES = (
    "log_vertices",
    "log_primitives",
    "log_pixels_rasterized",
    "log_pixels_shaded",
    "vs_alu_ops",
    "vs_tex_ops",
    "ps_alu_ops",
    "ps_tex_ops",
    "interpolants",
    "log_texture_footprint",
    "num_textures",
    "rt_bytes_per_pixel",
    "num_render_targets",
    "log_vertex_stride",
    "log_instances",
    "depth_reads",
    "depth_writes",
    "blend_reads_dest",
    "cull_disabled",
)

NUM_FEATURES = len(FEATURE_NAMES)


class FeatureExtractor:
    """Extracts feature vectors/matrices for the draws of one trace.

    Shader- and texture-derived sub-vectors are cached per id, so paper-
    scale corpora extract quickly.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self._shader_cache: Dict[int, np.ndarray] = {}
        self._footprint_cache: Dict[tuple, float] = {}
        self._rt_bpp_cache: Dict[tuple, float] = {}

    def extract(self, draw: DrawCall) -> np.ndarray:
        """The feature vector of one draw (length ``NUM_FEATURES``)."""
        row = np.empty(NUM_FEATURES)
        row[0] = math.log1p(draw.total_vertices)
        row[1] = math.log1p(draw.primitive_count)
        row[2] = math.log1p(draw.pixels_rasterized)
        row[3] = math.log1p(draw.pixels_shaded)
        row[4:9] = self._shader_features(draw.shader_id)
        row[9] = math.log1p(self._footprint(draw.texture_ids))
        row[10] = len(draw.texture_ids)
        row[11] = self._rt_bytes_per_pixel(draw.render_target_ids)
        row[12] = len(draw.render_target_ids)
        row[13] = math.log1p(draw.vertex_stride_bytes)
        row[14] = math.log1p(draw.instance_count)
        row[15] = 1.0 if draw.state.depth.reads_depth else 0.0
        row[16] = 1.0 if draw.state.depth.writes_depth else 0.0
        row[17] = 1.0 if draw.state.blend.reads_destination else 0.0
        row[18] = 1.0 if draw.state.cull.value == "none" else 0.0
        return row

    def frame_matrix(self, frame: Frame) -> np.ndarray:
        """Feature matrix of a frame: (num_draws, NUM_FEATURES)."""
        draws = frame.draw_list
        if not draws:
            raise ValidationError(f"frame {frame.index} has no draws")
        return self.draws_matrix(draws)

    def draws_matrix(self, draws: Sequence[DrawCall]) -> np.ndarray:
        """Feature matrix for an arbitrary draw sequence."""
        matrix = np.empty((len(draws), NUM_FEATURES))
        for i, draw in enumerate(draws):
            matrix[i] = self.extract(draw)
        return matrix

    def trace_matrices(self) -> List[np.ndarray]:
        """One feature matrix per frame, for the whole trace."""
        return [self.frame_matrix(frame) for frame in self.trace.frames]

    # -- cached lookups ------------------------------------------------------

    def _shader_features(self, shader_id: int) -> np.ndarray:
        cached = self._shader_cache.get(shader_id)
        if cached is None:
            shader = self.trace.shader(shader_id)
            cached = np.array(
                [
                    float(shader.vertex.alu_ops),
                    float(shader.vertex.tex_ops),
                    float(shader.pixel.alu_ops),
                    float(shader.pixel.tex_ops),
                    float(shader.pixel.interpolants),
                ]
            )
            self._shader_cache[shader_id] = cached
        return cached

    def _footprint(self, texture_ids: tuple) -> float:
        cached = self._footprint_cache.get(texture_ids)
        if cached is None:
            cached = float(
                sum(self.trace.texture(tid).byte_size for tid in texture_ids)
            )
            self._footprint_cache[texture_ids] = cached
        return cached

    def _rt_bytes_per_pixel(self, target_ids: tuple) -> float:
        cached = self._rt_bpp_cache.get(target_ids)
        if cached is None:
            cached = float(
                sum(
                    self.trace.render_target(rid).bytes_per_pixel
                    for rid in target_ids
                )
            )
            self._rt_bpp_cache[target_ids] = cached
        return cached
