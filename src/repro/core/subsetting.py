"""Workload-subset extraction: phases -> representative frames -> subset.

A :class:`WorkloadSubset` keeps one representative interval per detected
phase, weighted by how many frames that phase covers in the parent.
Simulating only the subset and scaling by the weights estimates the
parent's total time — on any architecture configuration, which is the
whole point for pathfinding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.phasedetect import PhaseDetection, detect_phases
from repro.errors import SubsetError
from repro.gfx.trace import Trace
from repro.simgpu.config import GpuConfig


@dataclass(frozen=True)
class WorkloadSubset:
    """A weighted frame subset of a parent trace.

    Built by phase detection (``method='phase'``, with ``detection`` set)
    or by one of the frame-level baselines in :mod:`repro.baselines`.
    """

    parent_name: str
    detection: Optional[PhaseDetection]
    frame_positions: Tuple[int, ...]  # positions kept, ascending
    frame_weights: Tuple[float, ...]  # parent frames each kept frame stands for
    parent_num_frames: int
    parent_num_draws: int
    subset_num_draws: int
    method: str = "phase"

    @property
    def num_frames(self) -> int:
        return len(self.frame_positions)

    @property
    def frame_fraction(self) -> float:
        """Kept frames / parent frames."""
        return self.num_frames / self.parent_num_frames

    @property
    def draw_fraction(self) -> float:
        """Kept draws / parent draws (the paper's '< 1%' is measured after
        also clustering within the kept frames; see the pipeline)."""
        return self.subset_num_draws / self.parent_num_draws

    def weights_check(self) -> None:
        """Weights must re-cover exactly the parent's frame count."""
        total = sum(self.frame_weights)
        if abs(total - self.parent_num_frames) > 1e-6 * self.parent_num_frames:
            raise SubsetError(
                f"subset weights sum to {total}, parent has "
                f"{self.parent_num_frames} frames"
            )

    def materialize(self, parent: Trace) -> Trace:
        """Build the subset trace (kept frames, shared tables)."""
        if parent.name != self.parent_name:
            raise SubsetError(
                f"subset was built from {self.parent_name!r}, got trace "
                f"{parent.name!r}"
            )
        return parent.subset_frames(list(self.frame_positions))

    def estimate_total_time_ns(self, subset_frame_times_ns: Sequence[float]) -> float:
        """Weighted estimate of the parent's total time.

        ``subset_frame_times_ns`` are the simulated times of the kept
        frames, in :attr:`frame_positions` order.
        """
        times = np.asarray(subset_frame_times_ns, dtype=float)
        if times.shape[0] != self.num_frames:
            raise SubsetError(
                f"expected {self.num_frames} frame times, got {times.shape[0]}"
            )
        return float(times @ np.asarray(self.frame_weights))

    def estimate_on_config(self, parent: Trace, config: GpuConfig) -> float:
        """Simulate only the subset on ``config`` and estimate parent time."""
        from repro.simgpu.batch import simulate_trace_batch

        subset_trace = self.materialize(parent)
        result = simulate_trace_batch(subset_trace, config)
        return self.estimate_total_time_ns(result.frame_times_ns)


@dataclass(frozen=True)
class CombinedSubset:
    """The composed deliverable: phase frames x cluster representatives.

    This is the artifact the paper ships to architects — under 1% of the
    parent at scale.  ``rep_trace`` holds only the kept frames' cluster
    representatives; estimating the parent's total time means simulating
    ``rep_trace`` and applying two weight levels: cluster populations
    within each frame, then phase weights across frames.

    Unlike the frame-level :class:`WorkloadSubset` (whole frames, no
    intra-frame reduction, context-exact), simulating representatives in
    isolation re-creates their context from the reduced sequence, so the
    estimate carries the cold-context bias measured by the pipeline's
    isolated-resim metric.
    """

    parent_name: str
    rep_trace: Trace
    frame_weights: Tuple[float, ...]  # one per kept frame, in rep_trace order
    draw_weights: Tuple[Tuple[int, ...], ...]  # cluster sizes, sorted-rep order
    parent_num_frames: int
    parent_num_draws: int

    @property
    def num_frames(self) -> int:
        return self.rep_trace.num_frames

    @property
    def num_draws(self) -> int:
        return self.rep_trace.num_draws

    @property
    def draw_fraction(self) -> float:
        """Simulated draws / parent draws (the paper's '< 1%' at scale)."""
        return self.num_draws / self.parent_num_draws

    def estimate_on_config(self, config: GpuConfig) -> float:
        """Simulate only the representatives and estimate parent total time."""
        from repro.simgpu.batch import simulate_frames_batch

        outputs = simulate_frames_batch(self.rep_trace, config)
        total = 0.0
        for output, weights, frame_weight in zip(
            outputs, self.draw_weights, self.frame_weights
        ):
            frame_estimate = float(
                output.draw_times_ns @ np.asarray(weights, dtype=float)
            )
            total += frame_estimate * frame_weight
        return total


def build_combined_subset(
    trace: Trace,
    subset: WorkloadSubset,
    clusterings: Sequence,
) -> CombinedSubset:
    """Compose a frame subset with per-frame clusterings.

    ``clusterings`` must cover every frame of ``trace`` (one
    :class:`~repro.core.cluster_frame.FrameClustering` per frame, e.g.
    from ``SubsettingPipeline.cluster_all_frames``); only the subset's
    kept positions are used.
    """
    from repro.gfx.frame import Frame, RenderPass

    if subset.parent_name != trace.name:
        raise SubsetError(
            f"subset was built from {subset.parent_name!r}, got trace "
            f"{trace.name!r}"
        )
    if len(clusterings) != trace.num_frames:
        raise SubsetError(
            f"{len(clusterings)} clusterings for {trace.num_frames} frames"
        )
    rep_frames = []
    draw_weights = []
    for position in subset.frame_positions:
        frame = trace.frames[position]
        clustering = clusterings[position]
        if clustering.num_draws != frame.num_draws:
            raise SubsetError(
                f"clustering at position {position} covers "
                f"{clustering.num_draws} draws, frame has {frame.num_draws}"
            )
        draws = frame.draw_list
        order = np.sort(clustering.representatives)
        rep_draws = tuple(draws[int(i)] for i in order)
        weight_of = {
            int(rep): int(weight)
            for rep, weight in zip(clustering.representatives, clustering.weights)
        }
        draw_weights.append(tuple(weight_of[int(i)] for i in order))
        rep_frames.append(
            Frame(
                index=frame.index,
                passes=(
                    RenderPass(pass_type=rep_draws[0].pass_type, draws=rep_draws),
                ),
                metadata=dict(frame.metadata),
            )
        )
    rep_trace = Trace(
        name=f"{trace.name}.combined",
        frames=tuple(rep_frames),
        shaders=dict(trace.shaders),
        textures=dict(trace.textures),
        render_targets=dict(trace.render_targets),
        buffers=dict(trace.buffers),
        metadata={**trace.metadata, "parent": trace.name},
    )
    return CombinedSubset(
        parent_name=trace.name,
        rep_trace=rep_trace,
        frame_weights=subset.frame_weights,
        draw_weights=tuple(draw_weights),
        parent_num_frames=trace.num_frames,
        parent_num_draws=trace.num_draws,
    )


def build_subset(
    trace: Trace, detection: Optional[PhaseDetection] = None, **detect_kwargs
) -> WorkloadSubset:
    """Extract the phase-representative subset of ``trace``.

    Keeps the first-occurrence interval of each phase; each kept frame's
    weight is ``phase_total_frames / representative_interval_frames``, so
    the weights sum back to the parent's frame count.
    """
    if detection is None:
        detection = detect_phases(trace, **detect_kwargs)
    elif detect_kwargs:
        raise SubsetError("pass either a detection or detect kwargs, not both")
    if detection.trace_name != trace.name:
        raise SubsetError(
            f"detection was computed on {detection.trace_name!r}, got trace "
            f"{trace.name!r}"
        )

    reps = detection.representative_intervals()
    phase_frames = detection.phase_frame_counts()
    positions: List[int] = []
    weights: List[float] = []
    for phase in sorted(reps):
        interval = reps[phase]
        weight = phase_frames[phase] / interval.num_frames
        for position in range(interval.start, interval.end):
            positions.append(position)
            weights.append(weight)
    order = np.argsort(positions)
    positions_sorted = [positions[i] for i in order]
    weights_sorted = [weights[i] for i in order]

    subset_draws = sum(trace.frames[p].num_draws for p in positions_sorted)
    subset = WorkloadSubset(
        parent_name=trace.name,
        detection=detection,
        frame_positions=tuple(positions_sorted),
        frame_weights=tuple(weights_sorted),
        parent_num_frames=trace.num_frames,
        parent_num_draws=trace.num_draws,
        subset_num_draws=subset_draws,
    )
    subset.weights_check()
    return subset
