"""Subset persistence: workload subsets as shareable artifacts.

A pathfinding team extracts a subset once and reuses it for months of
architecture studies.  This module serializes a
:class:`~repro.core.subsetting.WorkloadSubset` (positions, weights,
provenance) to JSON, so the subset definition travels separately from
the (large) trace files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Union

from repro.core.subsetting import WorkloadSubset
from repro.errors import SubsetError
from repro.gfx.trace import Trace

FORMAT_VERSION = 1


def write_subset(subset: WorkloadSubset, stream: IO[str]) -> None:
    """Serialize a subset definition to an open text stream.

    The phase-detection provenance is summarized (parameters and phase
    sequence), not fully serialized — the subset is reproducible from the
    parent trace anyway.
    """
    record = {
        "version": FORMAT_VERSION,
        "parent_name": subset.parent_name,
        "method": subset.method,
        "frame_positions": list(subset.frame_positions),
        "frame_weights": list(subset.frame_weights),
        "parent_num_frames": subset.parent_num_frames,
        "parent_num_draws": subset.parent_num_draws,
        "subset_num_draws": subset.subset_num_draws,
    }
    if subset.detection is not None:
        record["detection"] = {
            "interval_length": subset.detection.interval_length,
            "mode": subset.detection.mode,
            "tolerance": subset.detection.tolerance,
            "num_phases": subset.detection.num_phases,
            "phase_ids": list(subset.detection.phase_ids),
        }
    json.dump(record, stream, indent=2)
    stream.write("\n")


#: Exactly the keys ``write_subset`` emits — reads reject anything else,
#: so a loaded artifact is guaranteed to round-trip unchanged.
_REQUIRED_KEYS = frozenset(
    {
        "version",
        "parent_name",
        "method",
        "frame_positions",
        "frame_weights",
        "parent_num_frames",
        "parent_num_draws",
        "subset_num_draws",
    }
)
_OPTIONAL_KEYS = frozenset({"detection"})
_DETECTION_KEYS = frozenset(
    {"interval_length", "mode", "tolerance", "num_phases", "phase_ids"}
)


def read_subset(stream: IO[str]) -> WorkloadSubset:
    """Parse a subset definition (provenance summary is not restored).

    The reader is strict: it accepts exactly what :func:`write_subset`
    produces.  Unknown keys mean the file came from a newer writer (or
    isn't a subset definition at all), and silently dropping them would
    turn a save/load cycle into quiet data loss — so they are rejected.
    """
    try:
        record = json.load(stream)
    except json.JSONDecodeError as exc:
        raise SubsetError(f"malformed subset file: {exc}") from exc
    if not isinstance(record, dict):
        raise SubsetError(
            f"subset file must hold a JSON object, got {type(record).__name__}"
        )
    version = record.get("version")
    if version != FORMAT_VERSION:
        raise SubsetError(
            f"unsupported subset format version {version!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    unknown = sorted(set(record) - _REQUIRED_KEYS - _OPTIONAL_KEYS)
    if unknown:
        raise SubsetError(f"subset file has unknown fields: {unknown}")
    detection = record.get("detection")
    if "detection" in record:
        if not isinstance(detection, dict):
            raise SubsetError(
                "subset file field 'detection' must be a JSON object, "
                f"got {type(detection).__name__}"
            )
        unknown = sorted(set(detection) - _DETECTION_KEYS)
        if unknown:
            raise SubsetError(
                f"subset file has unknown detection fields: {unknown}"
            )
        missing = sorted(_DETECTION_KEYS - set(detection))
        if missing:
            raise SubsetError(
                f"subset file missing field 'detection.{missing[0]}'"
            )
    try:
        return WorkloadSubset(
            parent_name=record["parent_name"],
            detection=None,
            frame_positions=tuple(record["frame_positions"]),
            frame_weights=tuple(record["frame_weights"]),
            parent_num_frames=record["parent_num_frames"],
            parent_num_draws=record["parent_num_draws"],
            subset_num_draws=record["subset_num_draws"],
            method=record["method"],
        )
    except KeyError as exc:
        raise SubsetError(f"subset file missing field {exc}") from exc


def save_subset(subset: WorkloadSubset, path: Union[str, Path]) -> None:
    """Write a subset definition to ``path`` (overwrites)."""
    with open(path, "w", encoding="utf-8") as handle:
        write_subset(subset, handle)


def load_subset(path: Union[str, Path]) -> WorkloadSubset:
    """Read a subset definition from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return read_subset(handle)


def check_subset_against(subset: WorkloadSubset, trace: Trace) -> None:
    """Verify a loaded subset actually fits ``trace``.

    Catches the classic mistake of applying a saved subset to a different
    capture (or a re-generated one with a different seed).
    """
    if subset.parent_name != trace.name:
        raise SubsetError(
            f"subset was extracted from {subset.parent_name!r}, "
            f"trace is {trace.name!r}"
        )
    if subset.parent_num_frames != trace.num_frames:
        raise SubsetError(
            f"subset expects a {subset.parent_num_frames}-frame parent, "
            f"trace has {trace.num_frames}"
        )
    if subset.parent_num_draws != trace.num_draws:
        raise SubsetError(
            f"subset expects {subset.parent_num_draws} parent draws, "
            f"trace has {trace.num_draws} (different seed or scale?)"
        )
    for position in subset.frame_positions:
        if not 0 <= position < trace.num_frames:
            raise SubsetError(f"subset frame position {position} out of range")
