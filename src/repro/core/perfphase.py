"""Performance-signal phase detection — the ablation foil to shader vectors.

One could detect phases from measured per-frame performance instead of
shader vectors.  The catch: performance is a property of *one*
architecture, so the phase structure can shift when the candidate
architecture changes — exactly what a pathfinding subset must not do.
Shader vectors are API-stream facts and give the same phases everywhere.

This module implements the performance-based detector so experiment E10
can quantify the difference: shader-vector phases have cross-architecture
agreement 1.0 by construction; performance phases score lower.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.shadervector import partition_intervals
from repro.errors import PhaseDetectionError
from repro.gfx.trace import Trace
from repro.simgpu.batch import precompute_trace, simulate_frames_batch
from repro.simgpu.config import GpuConfig


def pass_time_matrix(trace: Trace, config: GpuConfig) -> np.ndarray:
    """(num_frames, num_pass_types) matrix of per-pass times on ``config``.

    The per-pass breakdown is the performance analog of a shader vector:
    it captures *where* the frame's time goes on this architecture.
    Columns are ordered by sorted pass-type name.
    """
    outputs = simulate_frames_batch(trace, config, precompute_trace(trace))
    pass_names = sorted({name for out in outputs for name in out.pass_times_ns})
    column = {name: j for j, name in enumerate(pass_names)}
    matrix = np.zeros((len(outputs), len(pass_names)))
    for i, out in enumerate(outputs):
        for name, value in out.pass_times_ns.items():
            matrix[i, column[name]] = value
    return matrix


def detect_phases_from_performance(
    matrix: np.ndarray,
    interval_length: int = 4,
    tolerance: float = 0.10,
) -> Tuple[int, ...]:
    """Greedy first-match phase ids over interval-mean performance vectors.

    Mirrors the shader-vector similarity rule (relative L1 within
    ``tolerance``) so the only difference under test is the *signal*.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise PhaseDetectionError(
            f"matrix must be a non-empty 2-D array, got shape {matrix.shape}"
        )
    if tolerance < 0:
        raise PhaseDetectionError(f"tolerance must be >= 0, got {tolerance}")
    intervals = partition_intervals(matrix.shape[0], interval_length)
    founders: List[np.ndarray] = []
    phase_ids: List[int] = []
    for interval in intervals:
        vector = matrix[interval.start : interval.end].mean(axis=0)
        matched: Optional[int] = None
        for phase, founder in enumerate(founders):
            scale = max(founder.sum(), vector.sum())
            if scale <= 0:
                continue
            if np.abs(vector - founder).sum() / scale <= tolerance:
                matched = phase
                break
        if matched is None:
            founders.append(vector)
            matched = len(founders) - 1
        phase_ids.append(matched)
    return tuple(phase_ids)


def cross_architecture_agreement(
    labels_a: Tuple[int, ...], labels_b: Tuple[int, ...]
) -> float:
    """Rand index between two phase labelings of the same intervals.

    Pair-counting agreement: the fraction of interval pairs on which the
    two labelings agree about same-phase/different-phase.  1.0 means the
    phase structure is identical (up to renaming).
    """
    if len(labels_a) != len(labels_b):
        raise PhaseDetectionError(
            f"labelings cover {len(labels_a)} vs {len(labels_b)} intervals"
        )
    n = len(labels_a)
    if n < 2:
        raise PhaseDetectionError("agreement needs at least two intervals")
    agree = 0
    total = 0
    for i in range(n):
        for j in range(i + 1, n):
            same_a = labels_a[i] == labels_a[j]
            same_b = labels_b[i] == labels_b[j]
            agree += same_a == same_b
            total += 1
    return agree / total
