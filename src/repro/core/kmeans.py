"""k-means clustering (k-means++ initialization, Lloyd iterations).

Implemented from scratch on numpy; deterministic given a seed.  Used by
the SimPoint-analog baseline, the E7 algorithm ablation, and
:mod:`repro.core.kselect`'s BIC-driven k search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distance import cdist_euclidean, euclidean_to_point
from repro.errors import ClusteringError
from repro.util.rng import make_rng


@dataclass(frozen=True)
class KMeansResult:
    """Labels, centers, and the final within-cluster sum of squares."""

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    iterations: int

    @property
    def num_clusters(self) -> int:
        return self.centers.shape[0]


def _plus_plus_init(matrix: np.ndarray, k: int, rng) -> np.ndarray:
    """k-means++ seeding: spread initial centers by squared distance."""
    n = matrix.shape[0]
    centers = np.empty((k, matrix.shape[1]))
    first = int(rng.integers(0, n))
    centers[0] = matrix[first]
    closest_sq = euclidean_to_point(matrix, centers[0]) ** 2
    for j in range(1, k):
        total = closest_sq.sum()
        if total == 0.0:
            # All remaining points coincide with a center; any pick works.
            centers[j] = matrix[int(rng.integers(0, n))]
            continue
        probs = closest_sq / total
        pick = int(rng.choice(n, p=probs))
        centers[j] = matrix[pick]
        dist_sq = euclidean_to_point(matrix, centers[j]) ** 2
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centers


def kmeans(
    matrix: np.ndarray,
    k: int,
    seed: int = 0,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
) -> KMeansResult:
    """Cluster rows of ``matrix`` into ``k`` groups.

    Empty clusters are reseeded to the point farthest from its center,
    so the result always has exactly ``k`` non-empty clusters (when
    ``k <= n``).
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise ClusteringError(
            f"matrix must be a non-empty 2-D array, got shape {matrix.shape}"
        )
    n = matrix.shape[0]
    if not 1 <= k <= n:
        raise ClusteringError(f"k must be in [1, {n}], got {k}")

    rng = make_rng(seed, "kmeans", n, k)
    centers = _plus_plus_init(matrix, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    previous_inertia = np.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        distances = cdist_euclidean(matrix, centers)
        labels = distances.argmin(axis=1)
        row_index = np.arange(n)
        inertia = float((distances[row_index, labels] ** 2).sum())
        for j in range(k):
            members = labels == j
            if members.any():
                centers[j] = matrix[members].mean(axis=0)
            else:
                # Reseed on the current worst-fitted point.
                worst = int(distances[row_index, labels].argmax())
                centers[j] = matrix[worst]
                labels[worst] = j
        if previous_inertia - inertia <= tolerance * max(previous_inertia, 1.0):
            previous_inertia = inertia
            break
        previous_inertia = inertia

    return KMeansResult(
        labels=labels,
        centers=centers,
        inertia=previous_inertia,
        iterations=iterations,
    )
