"""End-to-end subsetting pipeline: the paper's full methodology on one trace.

Given a trace and a GPU configuration:

1. simulate the full trace for ground truth (the expensive run the
   methodology exists to avoid — here it doubles as the referee);
2. cluster every frame's draws on micro-architecture-independent
   features, pick representatives, simulate *only* them, and predict
   each frame's time (E1), scoring efficiency and cluster outliers (E2);
3. detect phases from shader vectors and extract the phase-representative
   frame subset (E4, E5);
4. compose both reductions into the final subset size and a subset-based
   estimate of total trace time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.cluster_frame import DEFAULT_RADIUS, FrameClustering, cluster_frame
from repro.core.features import FeatureExtractor
from repro.core.metrics import cluster_quality
from repro.core.phasedetect import (
    DEFAULT_INTERVAL_LENGTH,
    DEFAULT_TOLERANCE,
    PhaseDetection,
    detect_phases,
)
from repro.core.predict import (
    FramePrediction,
    predict_time_ns,
    rep_times_from_draw_times,
)
from repro.core.subsetting import WorkloadSubset, build_subset
from repro.errors import SubsetError
from repro.gfx.frame import Frame, RenderPass
from repro.gfx.trace import Trace
from repro.runtime.engine import Runtime
from repro.runtime.telemetry import TelemetrySnapshot
from repro.simgpu.config import GpuConfig
from repro.util.tables import format_table


@dataclass(frozen=True)
class PipelineResult:
    """Everything the paper's evaluation reports, for one trace+config."""

    trace_name: str
    config_name: str
    frame_predictions: Tuple[FramePrediction, ...]
    frame_outlier_rates: Tuple[float, ...]
    detection: PhaseDetection
    subset: WorkloadSubset
    actual_total_time_ns: float
    subset_estimated_total_time_ns: float
    combined_draw_fraction: float
    clusterings: Optional[Tuple[FrameClustering, ...]] = field(
        default=None, compare=False
    )
    telemetry: Optional[TelemetrySnapshot] = field(default=None, compare=False)

    # -- E1 ------------------------------------------------------------------

    @property
    def mean_prediction_error(self) -> float:
        """Paper metric: representatives priced at in-context cost."""
        return float(np.mean([p.error for p in self.frame_predictions]))

    @property
    def mean_isolated_error(self) -> float:
        """Deployment metric: representatives re-simulated in isolation."""
        return float(np.mean([p.isolated_error for p in self.frame_predictions]))

    @property
    def mean_efficiency(self) -> float:
        return float(np.mean([p.efficiency for p in self.frame_predictions]))

    # -- E2 ---------------------------------------------------------------

    @property
    def mean_outlier_rate(self) -> float:
        return float(np.mean(self.frame_outlier_rates))

    # -- E5 / phase-level accuracy ---------------------------------------------

    @property
    def subset_time_error(self) -> float:
        return (
            abs(self.subset_estimated_total_time_ns - self.actual_total_time_ns)
            / self.actual_total_time_ns
        )

    def report(self) -> str:
        """Human-readable summary (the per-game row of the paper's tables)."""
        rows = [
            ["frames", len(self.frame_predictions)],
            ["draws", self.subset.parent_num_draws],
            ["mean frame prediction error %", 100.0 * self.mean_prediction_error],
            ["mean isolated-resim error %", 100.0 * self.mean_isolated_error],
            ["mean clustering efficiency %", 100.0 * self.mean_efficiency],
            ["mean cluster outlier rate %", 100.0 * self.mean_outlier_rate],
            ["phases detected", self.detection.num_phases],
            ["intervals", self.detection.num_intervals],
            ["subset frame fraction %", 100.0 * self.subset.frame_fraction],
            ["subset draw fraction %", 100.0 * self.subset.draw_fraction],
            ["combined subset (clustered) %", 100.0 * self.combined_draw_fraction],
            ["subset total-time error %", 100.0 * self.subset_time_error],
        ]
        table = format_table(
            ["metric", "value"],
            rows,
            title=f"Subsetting report: {self.trace_name} on {self.config_name}",
        )
        if self.telemetry is not None:
            table = f"{table}\n{self.telemetry.summary_line()}"
        return table


class SubsettingPipeline:
    """Configured, reusable runner for the full methodology.

    Parameters are validated eagerly and *collectively*: every bad
    argument is reported with its field path in one
    :class:`~repro.util.validation.FieldValidationError`, so a CLI user
    or API client learns which knob was wrong (not just that something
    was) before any simulation starts.
    """

    def __init__(
        self,
        cluster_method: str = "leader",
        radius: float = DEFAULT_RADIUS,
        normalize: str = "zscore",
        k: Optional[int] = None,
        interval_length: int = DEFAULT_INTERVAL_LENGTH,
        phase_mode: str = "similarity",
        phase_tolerance: float = DEFAULT_TOLERANCE,
        seed: int = 0,
    ) -> None:
        from repro.core.cluster_frame import METHODS as CLUSTER_METHODS
        from repro.core.normalize import METHODS as NORMALIZE_METHODS
        from repro.core.phasedetect import MODES as PHASE_MODES
        from repro.util.validation import (
            FieldErrors,
            check_fraction,
            check_in,
            check_positive,
            check_type,
        )

        errors = FieldErrors()
        errors.collect(
            "cluster_method", check_in,
            "cluster_method", cluster_method, CLUSTER_METHODS,
        )
        errors.collect("radius", check_positive, "radius", radius)
        errors.collect(
            "normalize", check_in, "normalize", normalize, NORMALIZE_METHODS
        )
        if k is not None:
            if errors.collect("k", check_type, "k", k, int):
                errors.collect("k", check_positive, "k", k)
        if errors.collect(
            "interval_length", check_type,
            "interval_length", interval_length, int,
        ):
            errors.collect(
                "interval_length", check_positive,
                "interval_length", interval_length,
            )
        errors.collect(
            "phase_mode", check_in, "phase_mode", phase_mode, PHASE_MODES
        )
        errors.collect(
            "phase_tolerance", check_fraction,
            "phase_tolerance", phase_tolerance,
        )
        errors.collect("seed", check_type, "seed", seed, int)
        errors.raise_if_any()
        self.cluster_method = cluster_method
        self.radius = radius
        self.normalize = normalize
        self.k = k
        self.interval_length = interval_length
        self.phase_mode = phase_mode
        self.phase_tolerance = phase_tolerance
        self.seed = seed

    # -- pieces (reused by the experiment harness) -----------------------------

    def cluster_all_frames(
        self, trace: Trace, runtime: Optional[Runtime] = None
    ) -> List[FrameClustering]:
        """Cluster every frame of ``trace`` on its feature matrix."""
        if runtime is not None:
            return list(
                runtime.cluster_frames(
                    trace,
                    method=self.cluster_method,
                    radius=self.radius,
                    k=self.k,
                    normalize=self.normalize,
                    seed=self.seed,
                )
            )
        extractor = FeatureExtractor(trace)
        return [
            cluster_frame(
                extractor.frame_matrix(frame),
                method=self.cluster_method,
                radius=self.radius,
                k=self.k,
                normalize=self.normalize,
                seed=self.seed,
            )
            for frame in trace.frames
        ]

    @staticmethod
    def representative_trace(
        trace: Trace, clusterings: List[FrameClustering]
    ) -> Trace:
        """The reduced trace containing only representative draws.

        Frame indices are preserved so the simulator's per-slot noise
        stays consistent with simulating the representatives alone.
        """
        if len(clusterings) != trace.num_frames:
            raise SubsetError(
                f"{len(clusterings)} clusterings for {trace.num_frames} frames"
            )
        rep_frames = []
        for frame, clustering in zip(trace.frames, clusterings):
            draws = frame.draw_list
            order = np.sort(clustering.representatives)
            rep_draws = tuple(draws[int(i)] for i in order)
            rep_frames.append(
                Frame(
                    index=frame.index,
                    passes=(
                        RenderPass(pass_type=rep_draws[0].pass_type, draws=rep_draws),
                    ),
                    metadata=dict(frame.metadata),
                )
            )
        return Trace(
            name=f"{trace.name}.reps",
            frames=tuple(rep_frames),
            shaders=dict(trace.shaders),
            textures=dict(trace.textures),
            render_targets=dict(trace.render_targets),
            buffers=dict(trace.buffers),
            metadata={**trace.metadata, "parent": trace.name},
        )

    # -- full run ---------------------------------------------------------

    def run(
        self,
        trace: Trace,
        config: GpuConfig,
        keep_clusterings: bool = False,
        runtime: Optional[Runtime] = None,
    ) -> PipelineResult:
        """Execute the full methodology on ``trace`` at ``config``.

        Pass ``keep_clusterings=True`` to retain the per-frame
        clusterings, e.g. to compose the final deliverable artifact::

            result = pipeline.run(trace, config, keep_clusterings=True)
            artifact = build_combined_subset(
                trace, result.subset, result.clusterings
            )

        ``runtime`` selects the execution backend (parallel workers,
        artifact cache).  The default serial runtime reproduces the
        historical single-process behavior bit for bit.
        """
        if runtime is None:
            runtime = Runtime.serial()
        with runtime.tracer.span(
            "pipeline", category="pipeline", trace=trace.name, config=config.name
        ):
            ground = runtime.simulate_frames(trace, config, label="ground_truth")
            clusterings = self.cluster_all_frames(trace, runtime=runtime)

            rep_trace = self.representative_trace(trace, clusterings)
            rep_outputs = runtime.simulate_frames(
                rep_trace, config, label="representatives"
            )

            predictions: List[FramePrediction] = []
            outlier_rates: List[float] = []
            with runtime.telemetry.timer("predict"):
                for frame, clustering, truth, rep_out in zip(
                    trace.frames, clusterings, ground, rep_outputs
                ):
                    order = np.sort(clustering.representatives)
                    position_of = {
                        int(draw_i): pos for pos, draw_i in enumerate(order)
                    }
                    isolated_times = [
                        float(rep_out.draw_times_ns[position_of[int(rep)]])
                        for rep in clustering.representatives
                    ]
                    isolated = predict_time_ns(isolated_times, clustering.weights)
                    in_context_times = rep_times_from_draw_times(
                        clustering, truth.draw_times_ns
                    )
                    predicted = predict_time_ns(
                        in_context_times, clustering.weights
                    )
                    predictions.append(
                        FramePrediction(
                            frame_index=frame.index,
                            actual_time_ns=truth.time_ns,
                            predicted_time_ns=predicted,
                            num_draws=clustering.num_draws,
                            num_clusters=clustering.num_clusters,
                            isolated_time_ns=isolated,
                        )
                    )
                    outlier_rates.append(
                        cluster_quality(
                            clustering, truth.draw_times_ns
                        ).outlier_rate
                    )

            with runtime.telemetry.timer("phase_detect"):
                detection = detect_phases(
                    trace,
                    interval_length=self.interval_length,
                    mode=self.phase_mode,
                    tolerance=self.phase_tolerance,
                )
                subset = build_subset(trace, detection)
            frame_times = [ground[p].time_ns for p in subset.frame_positions]
            subset_estimate = subset.estimate_total_time_ns(frame_times)
            actual_total = float(sum(out.time_ns for out in ground))

            kept_clusters = sum(
                clusterings[p].num_clusters for p in subset.frame_positions
            )
            combined_fraction = kept_clusters / trace.num_draws

        return PipelineResult(
            trace_name=trace.name,
            config_name=config.name,
            frame_predictions=tuple(predictions),
            frame_outlier_rates=tuple(outlier_rates),
            detection=detection,
            subset=subset,
            actual_total_time_ns=actual_total,
            subset_estimated_total_time_ns=subset_estimate,
            combined_draw_fraction=combined_fraction,
            clusterings=tuple(clusterings) if keep_clusterings else None,
            telemetry=runtime.snapshot(),
        )
