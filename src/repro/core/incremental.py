"""Incremental cross-frame clustering (extension beyond the paper).

The paper clusters each frame independently.  Consecutive frames render
nearly the same scene, so their clusterings are nearly identical —
re-clustering from scratch wastes work and, worse, may pick *different*
representatives for the same recurring group, defeating simulation-
result caching.

:class:`IncrementalClusterer` keeps the leader set alive across frames:
each new frame's draws are assigned to surviving leaders when within the
radius, and only novel draws found new clusters.  Leaders unused for
``max_idle_frames`` frames are retired.  The output per frame is a
standard :class:`~repro.core.cluster_frame.FrameClustering`, so all
metrics and prediction machinery apply unchanged; E7's ablation bench
quantifies the accuracy cost of reusing stale leaders.

Note: features must be normalized with a *shared* normalizer (fit on the
first frame or a sample), not per frame, or leader coordinates would
shift meaning between frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.cluster_frame import FrameClustering
from repro.core.distance import euclidean_to_point
from repro.core.normalize import Normalizer
from repro.core.representatives import cluster_sizes, representative_indices
from repro.errors import ClusteringError


@dataclass
class _Leader:
    row: np.ndarray
    last_used_frame: int


class IncrementalClusterer:
    """Leader clustering with a warm leader set shared across frames."""

    def __init__(
        self,
        radius: float,
        normalizer: Normalizer,
        max_idle_frames: int = 8,
    ) -> None:
        if not radius > 0:
            raise ClusteringError(f"radius must be > 0, got {radius}")
        if max_idle_frames < 1:
            raise ClusteringError(
                f"max_idle_frames must be >= 1, got {max_idle_frames}"
            )
        self.radius = radius
        self.normalizer = normalizer
        self.max_idle_frames = max_idle_frames
        self._leaders: List[_Leader] = []
        self._frame_counter = 0

    @property
    def num_live_leaders(self) -> int:
        return len(self._leaders)

    def cluster_frame(self, features: np.ndarray) -> FrameClustering:
        """Cluster one frame's raw feature matrix, reusing live leaders."""
        features = np.asarray(features, dtype=float)
        if features.ndim != 2 or features.shape[0] == 0:
            raise ClusteringError(
                f"features must be a non-empty 2-D matrix, got {features.shape}"
            )
        normalized = self.normalizer.transform(features)
        frame = self._frame_counter
        self._frame_counter += 1

        # Retire leaders idle too long (scene content that scrolled away).
        self._leaders = [
            leader
            for leader in self._leaders
            if frame - leader.last_used_frame <= self.max_idle_frames
        ]

        n = normalized.shape[0]
        global_labels = np.empty(n, dtype=np.int64)
        for i in range(n):
            assigned: Optional[int] = None
            if self._leaders:
                matrix = np.stack([leader.row for leader in self._leaders])
                dists = euclidean_to_point(matrix, normalized[i])
                nearest = int(np.argmin(dists))
                if dists[nearest] <= self.radius:
                    assigned = nearest
            if assigned is None:
                self._leaders.append(
                    _Leader(row=normalized[i].copy(), last_used_frame=frame)
                )
                assigned = len(self._leaders) - 1
            else:
                self._leaders[assigned].last_used_frame = frame
            global_labels[i] = assigned

        # Compact to this frame's local cluster ids (first-seen order).
        mapping = {}
        labels = np.empty(n, dtype=np.int64)
        for i, g in enumerate(global_labels):
            key = int(g)
            if key not in mapping:
                mapping[key] = len(mapping)
            labels[i] = mapping[key]

        return FrameClustering(
            labels=labels,
            representatives=representative_indices(normalized, labels),
            weights=cluster_sizes(labels),
            method="incremental_leader",
        )


def fit_shared_normalizer(
    feature_matrices: List[np.ndarray], method: str = "zscore"
) -> Normalizer:
    """Fit one normalizer over (a sample of) the trace's feature rows."""
    if not feature_matrices:
        raise ClusteringError("need at least one feature matrix to fit")
    stacked = np.vstack(feature_matrices)
    return Normalizer(method).fit(stacked)
