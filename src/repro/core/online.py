"""Online phase detection (extension beyond the paper).

The offline detector (:mod:`repro.core.phasedetect`) needs the whole
capture.  A capture tool wants the opposite: while the game runs, decide
per interval — is this a phase we have already recorded, or new behaviour
worth keeping?  :class:`OnlinePhaseDetector` ingests frames one at a
time, closes intervals as they fill, matches each against the phases
seen so far (same shader-vector similarity rule as offline), and reports
a keep/skip decision per interval.

Feeding the frames of a trace in order reproduces the offline detector's
phase sequence exactly, since the offline similarity mode is itself a
greedy first-match scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.shadervector import relative_l1_distance, shader_vector
from repro.errors import PhaseDetectionError
from repro.gfx.frame import Frame
from repro.util.validation import check_positive


@dataclass(frozen=True)
class IntervalDecision:
    """The detector's verdict on one completed interval."""

    interval_index: int
    start_frame: int
    end_frame: int
    phase: int
    is_new_phase: bool

    @property
    def keep(self) -> bool:
        """Capture-tool policy: record only the first interval of a phase."""
        return self.is_new_phase


class OnlinePhaseDetector:
    """Streaming shader-vector phase classification."""

    def __init__(self, interval_length: int = 4, tolerance: float = 0.10) -> None:
        check_positive("interval_length", interval_length)
        if tolerance < 0:
            raise PhaseDetectionError(f"tolerance must be >= 0, got {tolerance}")
        self.interval_length = interval_length
        self.tolerance = tolerance
        self._founders: List[Dict[int, int]] = []
        self._founder_lengths: List[int] = []
        self._pending: List[Frame] = []
        self._frames_seen = 0
        self._intervals_closed = 0
        self._decisions: List[IntervalDecision] = []

    @property
    def num_phases(self) -> int:
        return len(self._founders)

    @property
    def decisions(self) -> List[IntervalDecision]:
        return list(self._decisions)

    @property
    def frames_kept(self) -> int:
        return sum(
            d.end_frame - d.start_frame for d in self._decisions if d.keep
        )

    def feed(self, frame: Frame) -> Optional[IntervalDecision]:
        """Ingest one frame; returns a decision when an interval closes."""
        if not isinstance(frame, Frame):
            raise PhaseDetectionError(
                f"feed expects a Frame, got {type(frame).__name__}"
            )
        self._pending.append(frame)
        self._frames_seen += 1
        if len(self._pending) < self.interval_length:
            return None
        return self._close_interval()

    def finish(self) -> Optional[IntervalDecision]:
        """Close a trailing partial interval, if any frames are pending."""
        if not self._pending:
            return None
        return self._close_interval()

    # -- internals -----------------------------------------------------------

    def _close_interval(self) -> IntervalDecision:
        frames = self._pending
        self._pending = []
        vector = shader_vector(frames)
        matched: Optional[int] = None
        for phase, founder in enumerate(self._founders):
            scaled = _scale(founder, len(frames), self._founder_lengths[phase])
            if relative_l1_distance(vector, scaled) <= self.tolerance:
                matched = phase
                break
        is_new = matched is None
        if is_new:
            self._founders.append(vector)
            self._founder_lengths.append(len(frames))
            matched = len(self._founders) - 1
        end = self._frames_seen
        decision = IntervalDecision(
            interval_index=self._intervals_closed,
            start_frame=end - len(frames),
            end_frame=end,
            phase=matched,
            is_new_phase=is_new,
        )
        self._intervals_closed += 1
        self._decisions.append(decision)
        return decision


def _scale(
    vector: Dict[int, int], target_frames: int, source_frames: int
) -> Dict[int, int]:
    if target_frames == source_frames:
        return vector
    ratio = target_frames / source_frames
    return {sid: round(count * ratio) for sid, count in vector.items()}
