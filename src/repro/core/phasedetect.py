"""Phase detection by shader-vector comparison across frame intervals.

Intervals with matching shader vectors are the same phase.  Phases are
numbered by first occurrence, so the phase sequence reads as the
workload's repeating pattern (e.g. ``0 1 2 1 3 1`` — phase 1 recurs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.shadervector import (
    Interval,
    interval_signature,
    partition_intervals,
    relative_l1_distance,
    shader_vector,
)
from repro.errors import PhaseDetectionError
from repro.gfx.trace import Trace
from repro.util.validation import check_in

MODES = ("equality", "similarity")

DEFAULT_INTERVAL_LENGTH = 4
DEFAULT_TOLERANCE = 0.10


@dataclass(frozen=True)
class PhaseDetection:
    """The phase structure found in a trace."""

    trace_name: str
    interval_length: int
    mode: str
    tolerance: float
    intervals: Tuple[Interval, ...]
    phase_ids: Tuple[int, ...]  # phase of each interval, first-occurrence order

    @property
    def num_intervals(self) -> int:
        return len(self.intervals)

    @property
    def num_phases(self) -> int:
        return max(self.phase_ids) + 1

    @property
    def has_repetition(self) -> bool:
        """True when at least one phase covers more than one interval."""
        return self.num_phases < self.num_intervals

    def phase_members(self) -> Dict[int, List[Interval]]:
        """Intervals of each phase."""
        members: Dict[int, List[Interval]] = {}
        for interval, phase in zip(self.intervals, self.phase_ids):
            members.setdefault(phase, []).append(interval)
        return members

    def representative_intervals(self) -> Dict[int, Interval]:
        """First-occurrence interval per phase — the retained subset."""
        reps: Dict[int, Interval] = {}
        for interval, phase in zip(self.intervals, self.phase_ids):
            reps.setdefault(phase, interval)
        return reps

    def phase_frame_counts(self) -> Dict[int, int]:
        """Total frames each phase covers (the prediction weights)."""
        counts: Dict[int, int] = {}
        for interval, phase in zip(self.intervals, self.phase_ids):
            counts[phase] = counts.get(phase, 0) + interval.num_frames
        return counts

    @property
    def retained_frame_fraction(self) -> float:
        """Fraction of frames the representative intervals keep."""
        total = sum(i.num_frames for i in self.intervals)
        kept = sum(i.num_frames for i in self.representative_intervals().values())
        return kept / total


def detect_phases(
    trace: Trace,
    interval_length: int = DEFAULT_INTERVAL_LENGTH,
    mode: str = "similarity",
    tolerance: float = DEFAULT_TOLERANCE,
) -> PhaseDetection:
    """Find repeating phases in ``trace`` via shader-vector matching.

    ``equality`` mode hashes quantized signatures; ``similarity`` mode
    greedily matches each interval to the earliest phase whose founding
    shader vector is within ``tolerance`` relative L1 distance.
    """
    check_in("mode", mode, MODES)
    if tolerance < 0:
        raise PhaseDetectionError(f"tolerance must be >= 0, got {tolerance}")
    intervals = partition_intervals(trace.num_frames, interval_length)
    frames = trace.frames

    phase_ids: List[int] = []
    if mode == "equality":
        signature_to_phase: Dict[tuple, int] = {}
        for interval in intervals:
            signature = interval_signature(
                interval.frames_of(frames), tolerance=tolerance
            )
            phase = signature_to_phase.setdefault(signature, len(signature_to_phase))
            phase_ids.append(phase)
    else:  # similarity
        founders: List[Dict[int, int]] = []
        founder_lengths: List[int] = []
        for interval in intervals:
            vector = shader_vector(interval.frames_of(frames))
            matched: Optional[int] = None
            for phase, founder in enumerate(founders):
                # Compare per-frame-normalized vectors so a short trailing
                # interval can still match the phase it belongs to.
                scaled = _scale_vector(founder, interval.num_frames,
                                       founder_lengths[phase])
                if relative_l1_distance(vector, scaled) <= tolerance:
                    matched = phase
                    break
            if matched is None:
                founders.append(vector)
                founder_lengths.append(interval.num_frames)
                matched = len(founders) - 1
            phase_ids.append(matched)

    return PhaseDetection(
        trace_name=trace.name,
        interval_length=interval_length,
        mode=mode,
        tolerance=tolerance,
        intervals=tuple(intervals),
        phase_ids=tuple(phase_ids),
    )


def _scale_vector(
    vector: Dict[int, int], target_frames: int, source_frames: int
) -> Dict[int, int]:
    """Rescale a shader vector from one interval length to another."""
    if target_frames == source_frames:
        return vector
    ratio = target_frames / source_frames
    return {sid: round(count * ratio) for sid, count in vector.items()}


def phase_purity(detection: PhaseDetection, trace: Trace) -> float:
    """Agreement between detected phases and generator ground truth.

    For traces from :mod:`repro.synth`, ``trace.metadata['segments']``
    records the true phase label of every frame.  Purity is the fraction
    of frames whose detected phase's majority ground-truth label matches
    their own — 1.0 means detection recovered the script exactly.
    """
    segments = trace.metadata.get("segments")
    if not segments:
        raise PhaseDetectionError(
            "trace has no ground-truth segment metadata (not a synth trace?)"
        )
    frame_truth: Dict[int, str] = {}
    for row in segments:
        for position in range(row["start"], row["end"]):
            frame_truth[position] = row["phase"]

    frame_detected: Dict[int, int] = {}
    for interval, phase in zip(detection.intervals, detection.phase_ids):
        for position in range(interval.start, interval.end):
            frame_detected[position] = phase

    by_phase: Dict[int, Dict[str, int]] = {}
    for position, phase in frame_detected.items():
        truth = frame_truth[position]
        by_phase.setdefault(phase, {})
        by_phase[phase][truth] = by_phase[phase].get(truth, 0) + 1

    agree = sum(max(counts.values()) for counts in by_phase.values())
    total = len(frame_detected)
    return agree / total
