"""Leader (radius) clustering — the pipeline's default grouping algorithm.

A single deterministic pass: each point joins the nearest existing leader
within ``radius``, or founds a new cluster.  No k to choose up front, and
the radius directly expresses the paper's notion of "performance
similarity": draws whose normalized characteristics differ by less than
the radius are presumed to perform alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.distance import euclidean_to_point
from repro.errors import ClusteringError


@dataclass(frozen=True)
class LeaderResult:
    """Labels plus the leader (founder) index of each cluster."""

    labels: np.ndarray  # (n,) cluster id per point
    leader_indices: np.ndarray  # (k,) row index of each cluster's founder

    @property
    def num_clusters(self) -> int:
        return len(self.leader_indices)


def leader_cluster(matrix: np.ndarray, radius: float) -> LeaderResult:
    """Cluster rows of ``matrix`` with the leader algorithm.

    Points are processed in row order (submission order for draws), which
    makes the result deterministic and order-sensitive in the same way a
    streaming implementation in a real tool would be.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise ClusteringError(
            f"matrix must be a non-empty 2-D array, got shape {matrix.shape}"
        )
    if not radius > 0:
        raise ClusteringError(f"radius must be > 0, got {radius}")

    n = matrix.shape[0]
    labels = np.empty(n, dtype=np.int64)
    leader_rows: List[np.ndarray] = []
    leader_indices: List[int] = []
    leader_matrix = np.empty((0, matrix.shape[1]))
    # Rebuilding the leader matrix every append is O(k^2); grow in blocks.
    capacity = 0
    count = 0

    for i in range(n):
        if count:
            dists = euclidean_to_point(leader_matrix[:count], matrix[i])
            nearest = int(np.argmin(dists))
            if dists[nearest] <= radius:
                labels[i] = nearest
                continue
        if count == capacity:
            capacity = max(16, capacity * 2)
            grown = np.empty((capacity, matrix.shape[1]))
            grown[:count] = leader_matrix[:count]
            leader_matrix = grown
        leader_matrix[count] = matrix[i]
        leader_rows.append(matrix[i])
        leader_indices.append(i)
        labels[i] = count
        count += 1

    return LeaderResult(
        labels=labels, leader_indices=np.array(leader_indices, dtype=np.int64)
    )
