"""Shader vectors: the paper's frame-interval characterization.

A frame interval's *shader vector* counts, for every shader program, how
many draw-calls used it inside the interval.  Shader population is a
stable fingerprint of what the engine is rendering — a menu, a firefight
in zone 2 — so intervals with (near-)equal shader vectors belong to the
same program phase.

Two comparison modes are provided:

- ``equality`` — counts are quantized onto a geometric grid and compared
  exactly (the abstract's "shader vector equality"); tolerance 0 means
  raw-count equality.
- ``similarity`` — vectors match when their relative L1 distance is
  below the tolerance (robust to frame-to-frame count jitter).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import PhaseDetectionError
from repro.gfx.frame import Frame


def shader_vector(frames: Sequence[Frame]) -> Dict[int, int]:
    """Draw-call counts per shader id across ``frames``."""
    if not frames:
        raise PhaseDetectionError("shader_vector requires at least one frame")
    counts: Dict[int, int] = {}
    for frame in frames:
        for draw in frame.draws():
            counts[draw.shader_id] = counts.get(draw.shader_id, 0) + 1
    return counts


def quantize_count(count: int, tolerance: float) -> int:
    """Quantize a count onto a geometric grid of spacing (1 + tolerance).

    Counts whose ratio is within ~(1 + tolerance) land on the same level,
    so signature equality tolerates that much relative jitter.  Tolerance
    0 keeps raw counts.
    """
    if count < 0:
        raise PhaseDetectionError(f"count must be >= 0, got {count}")
    if tolerance < 0:
        raise PhaseDetectionError(f"tolerance must be >= 0, got {tolerance}")
    if tolerance == 0.0 or count == 0:
        return count
    return round(math.log1p(count) / math.log1p(tolerance) * tolerance)


def interval_signature(
    frames: Sequence[Frame], tolerance: float = 0.0
) -> Tuple[Tuple[int, int], ...]:
    """Hashable quantized shader-vector signature of an interval."""
    vector = shader_vector(frames)
    return tuple(
        sorted((sid, quantize_count(count, tolerance)) for sid, count in vector.items())
    )


def relative_l1_distance(a: Dict[int, int], b: Dict[int, int]) -> float:
    """Symmetric relative L1 distance between two shader vectors.

    ``sum|a_s - b_s| / max(sum a, sum b)``: 0 for identical vectors, up
    to 2 for disjoint shader populations.
    """
    keys = set(a) | set(b)
    if not keys:
        raise PhaseDetectionError("cannot compare two empty shader vectors")
    diff = sum(abs(a.get(k, 0) - b.get(k, 0)) for k in keys)
    scale = max(sum(a.values()), sum(b.values()))
    if scale == 0:
        raise PhaseDetectionError("cannot compare all-zero shader vectors")
    return diff / scale


@dataclass(frozen=True)
class Interval:
    """A contiguous run of frame positions [start, end)."""

    index: int
    start: int
    end: int

    @property
    def num_frames(self) -> int:
        return self.end - self.start

    def frames_of(self, frames: Sequence[Frame]) -> Sequence[Frame]:
        return frames[self.start : self.end]


def partition_intervals(num_frames: int, interval_length: int) -> List[Interval]:
    """Split ``num_frames`` into consecutive intervals.

    The final interval absorbs the remainder (it may be shorter), so
    every frame belongs to exactly one interval.
    """
    if num_frames <= 0:
        raise PhaseDetectionError(f"num_frames must be > 0, got {num_frames}")
    if interval_length <= 0:
        raise PhaseDetectionError(
            f"interval_length must be > 0, got {interval_length}"
        )
    intervals = []
    start = 0
    index = 0
    while start < num_frames:
        end = min(start + interval_length, num_frames)
        intervals.append(Interval(index=index, start=start, end=end))
        start = end
        index += 1
    return intervals
