"""Clustering-quality metrics: the quantities the paper's tables report.

- per-frame performance prediction error (paper: 1.0% average)
- clustering efficiency (paper: 65.8% average)
- cluster outliers: clusters whose intra-cluster prediction error
  exceeds 20% (paper: 3.0% of clusters on average)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.cluster_frame import FrameClustering
from repro.errors import ValidationError

OUTLIER_ERROR_THRESHOLD = 0.20


def clustering_efficiency(num_draws: int, num_clusters: int) -> float:
    """Fraction of per-draw simulations avoided by clustering."""
    if num_draws <= 0:
        raise ValidationError(f"num_draws must be > 0, got {num_draws}")
    if not 0 < num_clusters <= num_draws:
        raise ValidationError(
            f"num_clusters must be in [1, {num_draws}], got {num_clusters}"
        )
    return 1.0 - num_clusters / num_draws


def frame_prediction_error(actual_ns: float, predicted_ns: float) -> float:
    """Relative frame-time prediction error (fraction)."""
    if actual_ns <= 0:
        raise ValidationError(f"actual_ns must be > 0, got {actual_ns}")
    return abs(predicted_ns - actual_ns) / actual_ns


@dataclass(frozen=True)
class ClusterQuality:
    """Intra-cluster coherence of one frame's clustering."""

    intra_cluster_errors: Tuple[float, ...]
    outlier_threshold: float

    @property
    def num_clusters(self) -> int:
        return len(self.intra_cluster_errors)

    @property
    def num_outliers(self) -> int:
        return sum(
            1 for e in self.intra_cluster_errors if e > self.outlier_threshold
        )

    @property
    def outlier_rate(self) -> float:
        return self.num_outliers / self.num_clusters


def cluster_quality(
    clustering: FrameClustering,
    draw_times_ns: Sequence[float],
    outlier_threshold: float = OUTLIER_ERROR_THRESHOLD,
) -> ClusterQuality:
    """Per-cluster prediction error against ground-truth draw times.

    A cluster's intra-cluster prediction error is
    ``|population x t_rep - sum(t_members)| / sum(t_members)`` — how far
    scaling the representative misses the cluster's true total.
    """
    times = np.asarray(draw_times_ns, dtype=float)
    if times.shape[0] != clustering.num_draws:
        raise ValidationError(
            f"draw_times covers {times.shape[0]} draws but clustering has "
            f"{clustering.num_draws}"
        )
    if np.any(times <= 0):
        raise ValidationError("draw times must be strictly positive")
    errors = []
    for cluster in range(clustering.num_clusters):
        member_times = times[clustering.labels == cluster]
        true_total = float(member_times.sum())
        rep_time = float(times[int(clustering.representatives[cluster])])
        estimated = rep_time * member_times.shape[0]
        errors.append(abs(estimated - true_total) / true_total)
    return ClusterQuality(
        intra_cluster_errors=tuple(errors), outlier_threshold=outlier_threshold
    )


def cluster_outlier_rate(
    clustering: FrameClustering,
    draw_times_ns: Sequence[float],
    outlier_threshold: float = OUTLIER_ERROR_THRESHOLD,
) -> float:
    """Fraction of clusters whose intra-cluster error exceeds the threshold."""
    return cluster_quality(clustering, draw_times_ns, outlier_threshold).outlier_rate
