"""Distance computations used by the clustering algorithms."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


def euclidean_to_point(matrix: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Euclidean distance from every row of ``matrix`` to ``point``."""
    diff = matrix - point
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def pairwise_euclidean(matrix: np.ndarray) -> np.ndarray:
    """Full (n, n) Euclidean distance matrix.

    Uses the expanded-square identity with a clamp against negative
    round-off before the square root.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValidationError(f"matrix must be 2-D, got shape {matrix.shape}")
    sq = np.einsum("ij,ij->i", matrix, matrix)
    gram = matrix @ matrix.T
    d2 = sq[:, None] + sq[None, :] - 2.0 * gram
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)


def cdist_euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """(len(a), len(b)) Euclidean distances between two row sets."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValidationError(
            f"incompatible shapes for cdist: {a.shape} vs {b.shape}"
        )
    sa = np.einsum("ij,ij->i", a, a)
    sb = np.einsum("ij,ij->i", b, b)
    d2 = sa[:, None] + sb[None, :] - 2.0 * (a @ b.T)
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)
