"""Operating-point calibration: choose the similarity radius automatically.

The radius trades prediction accuracy against clustering efficiency
(experiment E3).  Rather than hand-tuning, :func:`calibrate_radius`
binary-searches the radius that hits a target efficiency — or the
largest radius whose prediction error stays under a budget — on a
sample of frames.  This is how the repository's default radius was set
(see EXPERIMENTS.md) and how a user should retune for their own traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.cluster_frame import cluster_frame
from repro.core.features import FeatureExtractor
from repro.core.predict import predict_time_ns, rep_times_from_draw_times
from repro.errors import ClusteringError
from repro.gfx.trace import Trace
from repro.simgpu.batch import precompute_trace, simulate_frames_batch
from repro.simgpu.config import GpuConfig


@dataclass(frozen=True)
class CalibrationPoint:
    """Measured metrics at one radius."""

    radius: float
    mean_error: float
    mean_efficiency: float


@dataclass(frozen=True)
class CalibrationResult:
    """The chosen radius and the search trajectory."""

    radius: float
    achieved: CalibrationPoint
    history: Tuple[CalibrationPoint, ...]


def _sample_frames(trace: Trace, max_frames: int, seed: int) -> List[int]:
    if trace.num_frames <= max_frames:
        return list(range(trace.num_frames))
    positions = np.linspace(0, trace.num_frames - 1, max_frames)
    return sorted({int(round(p)) for p in positions})


def _measure(
    trace: Trace,
    config: GpuConfig,
    frame_positions: List[int],
    ground,
    extractor: FeatureExtractor,
    radius: float,
) -> CalibrationPoint:
    errors = []
    efficiencies = []
    for position in frame_positions:
        truth = ground[position]
        clustering = cluster_frame(
            extractor.frame_matrix(trace.frames[position]), radius=radius
        )
        rep_times = rep_times_from_draw_times(clustering, truth.draw_times_ns)
        predicted = predict_time_ns(rep_times, clustering.weights)
        errors.append(abs(predicted - truth.time_ns) / truth.time_ns)
        efficiencies.append(clustering.efficiency)
    return CalibrationPoint(
        radius=radius,
        mean_error=float(np.mean(errors)),
        mean_efficiency=float(np.mean(efficiencies)),
    )


def calibrate_radius(
    trace: Trace,
    config: GpuConfig,
    target_efficiency: Optional[float] = None,
    max_error: Optional[float] = None,
    radius_bounds: Tuple[float, float] = (0.01, 3.0),
    iterations: int = 10,
    sample_frames: int = 12,
    seed: int = 0,
) -> CalibrationResult:
    """Binary-search the similarity radius for an operating point.

    Exactly one of ``target_efficiency`` (hit this clustering efficiency)
    or ``max_error`` (largest radius keeping mean prediction error at or
    below this fraction) must be given.  Both objectives are monotone in
    the radius, which is what makes bisection sound (efficiency rises,
    error broadly rises).
    """
    if (target_efficiency is None) == (max_error is None):
        raise ClusteringError(
            "pass exactly one of target_efficiency or max_error"
        )
    if target_efficiency is not None and not 0.0 < target_efficiency < 1.0:
        raise ClusteringError(
            f"target_efficiency must be in (0, 1), got {target_efficiency}"
        )
    if max_error is not None and not max_error > 0:
        raise ClusteringError(f"max_error must be > 0, got {max_error}")
    lo, hi = radius_bounds
    if not 0 < lo < hi:
        raise ClusteringError(f"bad radius_bounds {radius_bounds}")

    frame_positions = _sample_frames(trace, sample_frames, seed)
    ground = simulate_frames_batch(trace, config, precompute_trace(trace))
    extractor = FeatureExtractor(trace)

    history: List[CalibrationPoint] = []
    best: Optional[CalibrationPoint] = None
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        point = _measure(trace, config, frame_positions, ground, extractor, mid)
        history.append(point)
        if target_efficiency is not None:
            if best is None or abs(point.mean_efficiency - target_efficiency) < abs(
                best.mean_efficiency - target_efficiency
            ):
                best = point
            if point.mean_efficiency < target_efficiency:
                lo = mid
            else:
                hi = mid
        else:
            if point.mean_error <= max_error:
                # Feasible: remember it and try a larger radius.
                if best is None or point.radius > best.radius:
                    best = point
                lo = mid
            else:
                hi = mid
    if best is None:
        # No feasible radius under the error budget: take the tightest.
        best = _measure(
            trace, config, frame_positions, ground, extractor, radius_bounds[0]
        )
        history.append(best)
    return CalibrationResult(
        radius=best.radius, achieved=best, history=tuple(history)
    )
