"""The paper's contribution: 3D workload subsetting.

Two composable reductions:

1. **Intra-frame** — :mod:`repro.core.features` extracts micro-architecture-
   independent characteristics per draw-call; :mod:`repro.core.cluster_frame`
   groups draws by similarity; :mod:`repro.core.predict` estimates frame
   performance from one simulated representative per cluster; and
   :mod:`repro.core.metrics` scores prediction error, clustering efficiency,
   and cluster-outlier rate (experiments E1-E3).

2. **Inter-frame** — :mod:`repro.core.shadervector` characterizes frame
   intervals by shader usage; :mod:`repro.core.phasedetect` finds repeating
   phases by signature equality; and :mod:`repro.core.subsetting` keeps one
   representative interval per phase (experiments E4-E6).

:class:`repro.core.pipeline.SubsettingPipeline` runs the whole methodology
end to end and validates the result against the performance model.
"""

from repro.core.calibrate import CalibrationResult, calibrate_radius
from repro.core.cluster_frame import FrameClustering, cluster_frame
from repro.core.features import FEATURE_NAMES, FeatureExtractor
from repro.core.metrics import (
    cluster_outlier_rate,
    clustering_efficiency,
    frame_prediction_error,
)
from repro.core.phasedetect import PhaseDetection, detect_phases
from repro.core.pipeline import PipelineResult, SubsettingPipeline
from repro.core.shadervector import interval_signature, shader_vector
from repro.core.subsetio import load_subset, save_subset
from repro.core.subsetting import (
    CombinedSubset,
    WorkloadSubset,
    build_combined_subset,
    build_subset,
)

__all__ = [
    "FEATURE_NAMES",
    "FeatureExtractor",
    "FrameClustering",
    "cluster_frame",
    "clustering_efficiency",
    "frame_prediction_error",
    "cluster_outlier_rate",
    "shader_vector",
    "interval_signature",
    "PhaseDetection",
    "detect_phases",
    "WorkloadSubset",
    "build_subset",
    "CombinedSubset",
    "build_combined_subset",
    "save_subset",
    "load_subset",
    "calibrate_radius",
    "CalibrationResult",
    "SubsettingPipeline",
    "PipelineResult",
]
