"""repro — reproduction of "3D Workload Subsetting for GPU Architecture
Pathfinding" (V. George, IISWC 2015).

The package is organized as:

- :mod:`repro.gfx` — the 3D workload (API-stream) model.
- :mod:`repro.synth` — synthetic game-trace generation (data substitute).
- :mod:`repro.simgpu` — the GPU performance model (hardware substitute).
- :mod:`repro.core` — the paper's contribution: draw-call clustering,
  shader-vector phase detection, and workload-subset extraction.
- :mod:`repro.baselines` — sampling baselines for comparison.
- :mod:`repro.analysis` — experiment harness reproducing the paper's
  evaluation (E1..E8, DESIGN.md section 4).

Quickstart::

    from repro import datasets
    from repro.core.pipeline import SubsettingPipeline
    from repro.simgpu import GpuConfig

    trace = datasets.load("bioshock1_like", frames=60, seed=7)
    result = SubsettingPipeline().run(trace, GpuConfig.preset("mainstream"))
    print(result.report())
"""

__version__ = "1.0.0"

from repro.errors import (
    ClusteringError,
    ConfigError,
    PhaseDetectionError,
    ReproError,
    SimulationError,
    SubsetError,
    TraceError,
    TraceFormatError,
    ValidationError,
)

__all__ = [
    "__version__",
    "ReproError",
    "ValidationError",
    "TraceError",
    "TraceFormatError",
    "ConfigError",
    "ClusteringError",
    "PhaseDetectionError",
    "SubsetError",
    "SimulationError",
]
