"""Experiment harness reproducing the paper's evaluation.

:mod:`repro.analysis.experiments` has one runner per experiment (E1-E8,
see DESIGN.md section 4); each returns an
:class:`~repro.analysis.report.ExperimentResult` whose rows are the
table/figure series the paper reports.  :mod:`repro.analysis.correlation`
implements the frequency-scaling validation and
:mod:`repro.analysis.sweep` the architecture-pathfinding use case.
"""

from repro.analysis.characterize import WorkloadProfile, characterize_trace
from repro.analysis.correlation import CorrelationResult, subset_parent_correlation
from repro.analysis.report import ExperimentResult
from repro.analysis.sweep import PathfindingResult, pathfinding_sweep
from repro.analysis.validation import SubsetValidation, validate_subset

__all__ = [
    "ExperimentResult",
    "CorrelationResult",
    "subset_parent_correlation",
    "PathfindingResult",
    "pathfinding_sweep",
    "WorkloadProfile",
    "characterize_trace",
    "SubsetValidation",
    "validate_subset",
]
