"""Experiment result records and rendering."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.util.tables import format_table


@dataclass(frozen=True)
class ExperimentResult:
    """One reproduced table or figure.

    ``paper_values`` states the abstract's corresponding claims so every
    printout shows paper-vs-measured side by side.
    """

    experiment_id: str
    title: str
    headers: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]
    paper_values: Tuple[Tuple[str, str], ...] = ()
    notes: str = ""
    precision: int = 3
    figure: str = ""  # pre-rendered ascii figure (for figure-style results)

    def render(self) -> str:
        parts = [
            format_table(
                list(self.headers),
                [list(r) for r in self.rows],
                title=f"[{self.experiment_id}] {self.title}",
                precision=self.precision,
            )
        ]
        if self.figure:
            parts.append(self.figure)
        if self.paper_values:
            parts.append("paper reference:")
            for key, value in self.paper_values:
                parts.append(f"  {key}: {value}")
        if self.notes:
            parts.append(f"note: {self.notes}")
        return "\n".join(parts)

    def as_dict(self) -> dict:
        return {
            "experiment": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(r) for r in self.rows],
            "paper_values": dict(self.paper_values),
            "notes": self.notes,
        }

    def column(self, header: str) -> List[object]:
        """One column's values, by header name (for tests and plots)."""
        index = list(self.headers).index(header)
        return [row[index] for row in self.rows]
