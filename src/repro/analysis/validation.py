"""Holistic subset validation: should this subset be trusted?

Before a pathfinding team adopts a subset for months of studies, it must
clear three bars, all from the paper's validation logic:

1. **Frequency scaling** — the subset's improvement curve correlates
   with the parent's (the paper's r >= 0.997 criterion).
2. **Cross-architecture transfer** — total-time estimates stay accurate
   on every candidate class, not just the one used for extraction.
3. **Ranking fidelity** — evaluating a candidate set on the subset picks
   the same winner and ordering as the full workload.

:func:`validate_subset` runs all three and returns a verdict object with
per-check numbers, thresholds, and an overall pass/fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.analysis.correlation import subset_parent_correlation
from repro.analysis.sweep import default_candidates, pathfinding_sweep
from repro.core.subsetting import WorkloadSubset
from repro.gfx.trace import Trace
from repro.runtime.engine import Runtime
from repro.simgpu.config import GpuConfig
from repro.simgpu.dvfs import DEFAULT_CLOCKS_MHZ
from repro.util.tables import format_table


@dataclass(frozen=True)
class CheckResult:
    """One validation check: measured value vs its acceptance threshold."""

    name: str
    measured: float
    threshold: float
    passed: bool
    detail: str = ""


@dataclass(frozen=True)
class SubsetValidation:
    """The full validation verdict for one subset."""

    trace_name: str
    subset_method: str
    subset_frame_fraction: float
    checks: Tuple[CheckResult, ...]

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def report(self) -> str:
        rows = [
            [c.name, c.measured, c.threshold, c.passed, c.detail]
            for c in self.checks
        ]
        table = format_table(
            ["check", "measured", "threshold", "pass", "detail"],
            rows,
            title=(
                f"Subset validation: {self.trace_name} "
                f"({self.subset_method}, "
                f"{100 * self.subset_frame_fraction:.1f}% of frames)"
            ),
            precision=4,
        )
        verdict = "VERDICT: PASS" if self.passed else "VERDICT: FAIL"
        return f"{table}\n{verdict}"


# Acceptance thresholds; the correlation bar is the paper's.
CORRELATION_THRESHOLD = 0.997
TRANSFER_ERROR_THRESHOLD = 0.08
RANKING_THRESHOLD = 0.9


def validate_subset(
    trace: Trace,
    subset: WorkloadSubset,
    base_config: GpuConfig,
    clocks_mhz: Sequence[float] = DEFAULT_CLOCKS_MHZ,
    candidates: Optional[Sequence[GpuConfig]] = None,
    transfer_presets: Sequence[str] = ("lowpower", "mainstream", "highend"),
    runtime: Optional[Runtime] = None,
) -> SubsetValidation:
    """Run all three validation checks on ``subset`` against ``trace``.

    ``runtime`` is threaded through every check, so the clock sweep, the
    transfer presets, and the candidate sweep all share its workers and
    artifact cache (a preset simulated by one check is free in the next).
    """
    if runtime is None:
        runtime = Runtime.serial()
    checks = []

    with runtime.tracer.span("validate", category="validate", trace=trace.name):
        correlation = subset_parent_correlation(
            trace, subset, base_config, clocks_mhz, runtime=runtime
        )
        checks.append(
            CheckResult(
                name="frequency-scaling correlation",
                measured=correlation.correlation,
                threshold=CORRELATION_THRESHOLD,
                passed=correlation.correlation >= CORRELATION_THRESHOLD,
                detail=f"max gap {correlation.max_improvement_gap_points:.2f} pts",
            )
        )

        subset_trace = subset.materialize(trace)
        transfer_configs = [
            GpuConfig.preset(preset) for preset in transfer_presets
        ]
        parent_runs = runtime.simulate_frames_many(
            trace, transfer_configs, label="validate.parent"
        )
        subset_runs = runtime.simulate_frames_many(
            subset_trace, transfer_configs, label="validate.subset"
        )
        worst_error = 0.0
        worst_preset = ""
        for preset, parent_outputs, subset_outputs in zip(
            transfer_presets, parent_runs, subset_runs
        ):
            actual = float(sum(out.time_ns for out in parent_outputs))
            estimate = subset.estimate_total_time_ns(
                [out.time_ns for out in subset_outputs]
            )
            error = abs(estimate - actual) / actual
            if error > worst_error:
                worst_error = error
                worst_preset = preset
        checks.append(
            CheckResult(
                name="cross-architecture transfer error",
                measured=worst_error,
                threshold=TRANSFER_ERROR_THRESHOLD,
                passed=worst_error <= TRANSFER_ERROR_THRESHOLD,
                detail=f"worst on {worst_preset}",
            )
        )

        sweep = pathfinding_sweep(
            trace,
            subset,
            candidates if candidates is not None else default_candidates(),
            runtime=runtime,
        )
        checks.append(
            CheckResult(
                name="candidate-ranking agreement",
                measured=sweep.ranking_agreement,
                threshold=RANKING_THRESHOLD,
                passed=(
                    sweep.ranking_agreement >= RANKING_THRESHOLD
                    and sweep.winner_agrees()
                ),
                detail=(
                    "winner agrees" if sweep.winner_agrees() else "winner differs"
                ),
            )
        )

    return SubsetValidation(
        trace_name=trace.name,
        subset_method=subset.method,
        subset_frame_fraction=subset.frame_fraction,
        checks=tuple(checks),
    )
