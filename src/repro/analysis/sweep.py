"""Architecture-pathfinding sweeps: the methodology's end use.

Pathfinding asks "which of these candidate architectures is best for
this workload?".  A subset earns its keep when evaluating candidates on
the subset produces the same ranking (and near-identical relative
performance) as evaluating them on the full workload — at a fraction of
the simulation cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.subsetting import WorkloadSubset
from repro.errors import ValidationError
from repro.gfx.trace import Trace
from repro.runtime.engine import Runtime
from repro.simgpu.config import GpuConfig
from repro.util.stats import pearson_correlation, spearman_correlation


@dataclass(frozen=True)
class PathfindingResult:
    """Candidate evaluation on parent vs subset."""

    trace_name: str
    config_names: Tuple[str, ...]
    parent_times_ns: Tuple[float, ...]
    subset_estimated_times_ns: Tuple[float, ...]

    def parent_ranking(self) -> Tuple[str, ...]:
        """Config names from fastest to slowest on the full workload."""
        order = sorted(
            range(len(self.config_names)), key=lambda i: self.parent_times_ns[i]
        )
        return tuple(self.config_names[i] for i in order)

    def subset_ranking(self) -> Tuple[str, ...]:
        order = sorted(
            range(len(self.config_names)),
            key=lambda i: self.subset_estimated_times_ns[i],
        )
        return tuple(self.config_names[i] for i in order)

    @property
    def ranking_agreement(self) -> float:
        """Spearman rank correlation of candidate orderings (1.0 = same)."""
        return spearman_correlation(
            self.parent_times_ns, self.subset_estimated_times_ns
        )

    @property
    def time_correlation(self) -> float:
        """Pearson r of absolute candidate times."""
        return pearson_correlation(
            self.parent_times_ns, self.subset_estimated_times_ns
        )

    def winner_agrees(self) -> bool:
        return self.parent_ranking()[0] == self.subset_ranking()[0]


def default_candidates() -> Tuple[GpuConfig, ...]:
    """A small pathfinding design space around the presets."""
    mainstream = GpuConfig.preset("mainstream")
    return (
        GpuConfig.preset("lowpower"),
        mainstream,
        mainstream.scaled(name="mainstream+cores", num_shader_cores=12),
        mainstream.scaled(
            name="mainstream+bw", dram_bytes_per_mem_cycle=96.0
        ),
        mainstream.scaled(
            name="mainstream+cache", tex_cache_kb=256, l2_cache_kb=4096
        ),
        GpuConfig.preset("highend"),
    )


def pathfinding_sweep(
    trace: Trace,
    subset: WorkloadSubset,
    candidates: Sequence[GpuConfig] = (),
    runtime: Optional[Runtime] = None,
) -> PathfindingResult:
    """Evaluate candidate architectures on parent and subset.

    Every (trace, candidate) point is one cacheable artifact, so an
    interrupted or repeated sweep only simulates the missing candidates.
    """
    candidates = tuple(candidates) or default_candidates()
    names = [c.name for c in candidates]
    if len(set(names)) != len(names):
        raise ValidationError(f"candidate names must be unique, got {names}")
    if runtime is None:
        runtime = Runtime.serial()
    with runtime.tracer.span(
        "sweep", category="sweep", trace=trace.name, candidates=len(candidates)
    ):
        subset_trace = subset.materialize(trace)
        parent_runs = runtime.simulate_frames_many(
            trace, candidates, label="sweep.parent"
        )
        subset_runs = runtime.simulate_frames_many(
            subset_trace, candidates, label="sweep.subset"
        )
    parent_times = [
        float(sum(out.time_ns for out in outputs)) for outputs in parent_runs
    ]
    subset_times = [
        subset.estimate_total_time_ns([out.time_ns for out in outputs])
        for outputs in subset_runs
    ]
    return PathfindingResult(
        trace_name=trace.name,
        config_names=tuple(names),
        parent_times_ns=tuple(parent_times),
        subset_estimated_times_ns=tuple(subset_times),
    )
