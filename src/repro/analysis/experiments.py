"""Canned experiment runners E1-E8 (see DESIGN.md section 4).

Each runner consumes traces the caller generated (so CI and paper-scale
runs share code) and returns an
:class:`~repro.analysis.report.ExperimentResult` with the same rows the
paper's corresponding table or figure reports, plus the abstract's
reference values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.correlation import subset_parent_correlation
from repro.analysis.report import ExperimentResult
from repro.baselines.draw_sampling import (
    first_n_draw_sample,
    random_draw_sample,
    systematic_draw_sample,
)
from repro.baselines.framesample import every_nth_frame_subset
from repro.baselines.simpoint_like import simpoint_frames_subset
from repro.core.cluster_frame import DEFAULT_RADIUS, cluster_frame
from repro.core.features import FEATURE_NAMES, FeatureExtractor
from repro.core.metrics import cluster_quality
from repro.core.phasedetect import detect_phases, phase_purity
from repro.core.predict import predict_time_ns, rep_times_from_draw_times
from repro.core.subsetting import build_subset
from repro.gfx.trace import Trace
from repro.runtime.engine import Runtime
from repro.simgpu.batch import precompute_trace, simulate_frames_batch
from repro.simgpu.config import GpuConfig
from repro.simgpu.dvfs import DEFAULT_CLOCKS_MHZ
from repro.synth.generator import generate_trace


@dataclass(frozen=True)
class FrameMetrics:
    """Per-frame clustering metrics shared by several experiments."""

    error: float
    efficiency: float
    outlier_rate: float
    num_clusters: int


def clustering_metrics(
    trace: Trace,
    config: GpuConfig,
    method: str = "leader",
    radius: float = DEFAULT_RADIUS,
    k: Optional[int] = None,
    feature_columns: Optional[Sequence[int]] = None,
    seed: int = 0,
    runtime: Optional[Runtime] = None,
) -> List[FrameMetrics]:
    """Cluster every frame and score it against the detailed simulation.

    With a ``runtime``, the ground-truth simulation runs on its workers
    and is served from its artifact cache on repeat calls — radius and
    feature ablations re-cluster against the same cached ground truth.
    """
    if runtime is not None:
        ground = runtime.simulate_frames(trace, config, label="ground_truth")
    else:
        ground = simulate_frames_batch(trace, config, precompute_trace(trace))
    extractor = FeatureExtractor(trace)
    out = []
    for frame, truth in zip(trace.frames, ground):
        matrix = extractor.frame_matrix(frame)
        if feature_columns is not None:
            matrix = matrix[:, list(feature_columns)]
        clustering = cluster_frame(
            matrix, method=method, radius=radius, k=k, seed=seed
        )
        rep_times = rep_times_from_draw_times(clustering, truth.draw_times_ns)
        predicted = predict_time_ns(rep_times, clustering.weights)
        out.append(
            FrameMetrics(
                error=abs(predicted - truth.time_ns) / truth.time_ns,
                efficiency=clustering.efficiency,
                outlier_rate=cluster_quality(
                    clustering, truth.draw_times_ns
                ).outlier_rate,
                num_clusters=clustering.num_clusters,
            )
        )
    return out


def _mean(values: Sequence[float]) -> float:
    return float(np.mean(values))


def incremental_clustering_metrics(
    trace: Trace,
    config: GpuConfig,
    radius: float = DEFAULT_RADIUS,
) -> List[FrameMetrics]:
    """Like :func:`clustering_metrics`, with cross-frame leader reuse.

    Uses a trace-wide normalizer (required for leader coordinates to keep
    their meaning across frames), so its radius is not directly
    comparable to the per-frame-normalized default — the ablation compares
    outcome quality, not parameter values.
    """
    from repro.core.incremental import IncrementalClusterer, fit_shared_normalizer

    ground = simulate_frames_batch(trace, config, precompute_trace(trace))
    extractor = FeatureExtractor(trace)
    matrices = [extractor.frame_matrix(frame) for frame in trace.frames]
    clusterer = IncrementalClusterer(
        radius=radius, normalizer=fit_shared_normalizer(matrices)
    )
    out = []
    for matrix, truth in zip(matrices, ground):
        clustering = clusterer.cluster_frame(matrix)
        rep_times = rep_times_from_draw_times(clustering, truth.draw_times_ns)
        predicted = predict_time_ns(rep_times, clustering.weights)
        out.append(
            FrameMetrics(
                error=abs(predicted - truth.time_ns) / truth.time_ns,
                efficiency=clustering.efficiency,
                outlier_rate=cluster_quality(
                    clustering, truth.draw_times_ns
                ).outlier_rate,
                num_clusters=clustering.num_clusters,
            )
        )
    return out


# ---------------------------------------------------------------------------
# E1 — clustering accuracy & efficiency per game
# ---------------------------------------------------------------------------

def e1_clustering_accuracy(
    traces: Dict[str, Trace],
    config: GpuConfig,
    radius: float = DEFAULT_RADIUS,
    runtime: Optional[Runtime] = None,
) -> ExperimentResult:
    """Paper table: per-game frame prediction error and clustering efficiency."""
    rows = []
    all_err: List[float] = []
    all_eff: List[float] = []
    total_frames = 0
    total_draws = 0
    for name, trace in traces.items():
        metrics = clustering_metrics(trace, config, radius=radius, runtime=runtime)
        errs = [m.error for m in metrics]
        effs = [m.efficiency for m in metrics]
        all_err.extend(errs)
        all_eff.extend(effs)
        total_frames += trace.num_frames
        total_draws += trace.num_draws
        rows.append(
            (
                name,
                trace.num_frames,
                trace.num_draws,
                100.0 * _mean(errs),
                100.0 * _mean(effs),
            )
        )
    rows.append(
        ("AVERAGE", total_frames, total_draws, 100.0 * _mean(all_err),
         100.0 * _mean(all_eff))
    )
    return ExperimentResult(
        experiment_id="E1",
        title="Per-frame performance prediction error and clustering efficiency",
        headers=("game", "frames", "draws", "pred error %", "efficiency %"),
        rows=tuple(rows),
        paper_values=(
            ("corpus", "717 frames / 828K draw-calls"),
            ("avg prediction error per frame", "1.0%"),
            ("avg clustering efficiency", "65.8%"),
        ),
        notes=(
            "synthetic content is more regular than shipping games, so the "
            "measured error at matched efficiency is lower than the paper's"
        ),
    )


# ---------------------------------------------------------------------------
# E2 — cluster outliers per game
# ---------------------------------------------------------------------------

def e2_cluster_outliers(
    traces: Dict[str, Trace],
    config: GpuConfig,
    radius: float = DEFAULT_RADIUS,
    runtime: Optional[Runtime] = None,
) -> ExperimentResult:
    """Paper figure: fraction of clusters with intra-cluster error > 20%."""
    rows = []
    all_rates: List[float] = []
    for name, trace in traces.items():
        metrics = clustering_metrics(trace, config, radius=radius, runtime=runtime)
        rates = [m.outlier_rate for m in metrics]
        clusters = sum(m.num_clusters for m in metrics)
        all_rates.extend(rates)
        rows.append((name, clusters, 100.0 * _mean(rates)))
    rows.append(("AVERAGE", "", 100.0 * _mean(all_rates)))
    return ExperimentResult(
        experiment_id="E2",
        title="Cluster outliers (intra-cluster prediction error > 20%)",
        headers=("game", "clusters", "outlier rate %"),
        rows=tuple(rows),
        paper_values=(("avg cluster outlier rate", "3.0%"),),
    )


# ---------------------------------------------------------------------------
# E3 — error/efficiency trade-off vs clustering radius
# ---------------------------------------------------------------------------

def e3_error_efficiency_tradeoff(
    trace: Trace,
    config: GpuConfig,
    radii: Sequence[float] = (0.05, 0.1, 0.21, 0.3, 0.45, 0.7, 1.0),
) -> ExperimentResult:
    """Methodology figure: how the similarity radius trades error for efficiency."""
    from repro.util.charts import line_chart

    rows = []
    for radius in radii:
        metrics = clustering_metrics(trace, config, radius=radius)
        rows.append(
            (
                radius,
                100.0 * _mean([m.error for m in metrics]),
                100.0 * _mean([m.efficiency for m in metrics]),
                100.0 * _mean([m.outlier_rate for m in metrics]),
            )
        )
    figure = line_chart(
        [row[2] for row in rows],  # efficiency on x
        {
            "pred error %": [row[1] for row in rows],
            "outlier rate %": [row[3] for row in rows],
        },
        title="accuracy vs clustering efficiency",
    )
    return ExperimentResult(
        experiment_id="E3",
        title=f"Similarity-radius trade-off on {trace.name}",
        headers=("radius", "pred error %", "efficiency %", "outlier rate %"),
        rows=tuple(rows),
        paper_values=(
            ("operating point", "error 1.0% at efficiency 65.8%, outliers 3.0%"),
        ),
        notes="growing the radius trades prediction accuracy for efficiency",
        figure=figure,
    )


# ---------------------------------------------------------------------------
# E4 — phase detection across the series
# ---------------------------------------------------------------------------

def e4_phase_detection(
    traces: Dict[str, Trace],
    interval_length: int = 4,
    mode: str = "similarity",
    tolerance: float = 0.10,
) -> ExperimentResult:
    """Paper claim: every game in the series exhibits repeating phases."""
    rows = []
    for name, trace in traces.items():
        detection = detect_phases(
            trace, interval_length=interval_length, mode=mode, tolerance=tolerance
        )
        try:
            purity = 100.0 * phase_purity(detection, trace)
        except Exception:
            purity = float("nan")
        rows.append(
            (
                name,
                detection.num_intervals,
                detection.num_phases,
                detection.num_intervals / detection.num_phases,
                100.0 * detection.retained_frame_fraction,
                purity,
                detection.has_repetition,
            )
        )
    return ExperimentResult(
        experiment_id="E4",
        title="Shader-vector phase detection",
        headers=(
            "game",
            "intervals",
            "phases",
            "repeat factor",
            "kept frames %",
            "purity %",
            "has phases",
        ),
        rows=tuple(rows),
        paper_values=(
            ("claim", "phases exist in each game of the BioShock series"),
        ),
        notes="repeat factor = intervals per phase; purity vs generator script",
    )


# ---------------------------------------------------------------------------
# E5 — subset size vs capture length
# ---------------------------------------------------------------------------

def e5_subset_size(
    game: str,
    config: GpuConfig,
    lengths: Sequence[int] = (120, 240, 480, 960),
    scale: float = 0.15,
    seed: int = 7,
    radius: float = DEFAULT_RADIUS,
) -> ExperimentResult:
    """Paper claim: subsets shrink below 1% of the parent as captures lengthen."""
    rows = []
    for length in lengths:
        trace = generate_trace(game, num_frames=length, seed=seed, scale=scale)
        subset = build_subset(trace)
        metrics = clustering_metrics(trace, config, radius=radius)
        kept_clusters = sum(
            metrics[p].num_clusters for p in subset.frame_positions
        )
        combined = kept_clusters / trace.num_draws
        rows.append(
            (
                length,
                trace.num_draws,
                100.0 * subset.frame_fraction,
                100.0 * subset.draw_fraction,
                100.0 * combined,
            )
        )
    return ExperimentResult(
        experiment_id="E5",
        title=f"Subset size vs capture length ({game})",
        headers=(
            "frames",
            "draws",
            "phase subset frames %",
            "phase subset draws %",
            "combined subset draws %",
        ),
        rows=tuple(rows),
        paper_values=(
            ("claim", "subsets are less than 1% of the parent workload"),
        ),
        notes=(
            "kept frames are constant once all phases appear, so the subset "
            "fraction falls as 1/length; the paper's parents are full "
            "gameplay captures (hours), far longer than its 717 analyzed frames"
        ),
    )


# ---------------------------------------------------------------------------
# E6 — frequency-scaling correlation
# ---------------------------------------------------------------------------

def e6_frequency_correlation(
    traces: Dict[str, Trace],
    config: GpuConfig,
    clocks_mhz: Sequence[float] = DEFAULT_CLOCKS_MHZ,
    runtime: Optional[Runtime] = None,
) -> ExperimentResult:
    """Paper validation: subset/parent improvement correlation under DVFS."""
    from repro.util.charts import line_chart

    rows = []
    figure = ""
    for name, trace in traces.items():
        subset = build_subset(trace)
        result = subset_parent_correlation(
            trace, subset, config, clocks_mhz, runtime=runtime
        )
        rows.append(
            (
                name,
                100.0 * subset.frame_fraction,
                result.correlation,
                result.max_improvement_gap_points,
            )
        )
        if not figure:
            figure = line_chart(
                list(clocks_mhz[1:]),
                {
                    f"{name} parent": list(result.parent_improvements_percent),
                    f"{name} subset": list(result.subset_improvements_percent),
                },
                title="performance improvement % vs core clock (MHz)",
            )
    return ExperimentResult(
        experiment_id="E6",
        title="Frequency-scaling correlation: subset vs parent",
        headers=(
            "game",
            "subset frames %",
            "correlation r",
            "max gap (pct points)",
        ),
        rows=tuple(rows),
        paper_values=(
            ("claim", "correlation coefficient >= 99.7% for <1% subsets"),
        ),
        precision=5,
        figure=figure,
    )


# ---------------------------------------------------------------------------
# E7 — ablations: clustering algorithm and feature groups
# ---------------------------------------------------------------------------

FEATURE_GROUPS: Dict[str, Tuple[str, ...]] = {
    "geometry": (
        "log_vertices",
        "log_primitives",
        "log_pixels_rasterized",
        "log_pixels_shaded",
        "log_vertex_stride",
        "log_instances",
    ),
    "shader": ("vs_alu_ops", "vs_tex_ops", "ps_alu_ops", "ps_tex_ops",
               "interpolants"),
    "texture": ("log_texture_footprint", "num_textures"),
    "output": (
        "rt_bytes_per_pixel",
        "num_render_targets",
        "depth_reads",
        "depth_writes",
        "blend_reads_dest",
        "cull_disabled",
    ),
}


def _columns_without(group: str) -> List[int]:
    dropped = set(FEATURE_GROUPS[group])
    return [i for i, name in enumerate(FEATURE_NAMES) if name not in dropped]


def e7_ablations(
    trace: Trace,
    config: GpuConfig,
    radius: float = DEFAULT_RADIUS,
) -> ExperimentResult:
    """Implied ablation: clustering algorithm and feature-group sensitivity."""
    rows = []

    def add_row(label: str, metrics: List[FrameMetrics]) -> None:
        rows.append(
            (
                label,
                100.0 * _mean([m.error for m in metrics]),
                100.0 * _mean([m.efficiency for m in metrics]),
                100.0 * _mean([m.outlier_rate for m in metrics]),
            )
        )

    baseline = clustering_metrics(trace, config, radius=radius)
    add_row("leader (default)", baseline)
    # Match k-means' budget to leader's mean cluster count for fairness.
    mean_k = max(1, round(_mean([m.num_clusters for m in baseline])))
    add_row(
        f"kmeans (k={mean_k})",
        clustering_metrics(trace, config, method="kmeans", k=mean_k),
    )
    add_row(
        "kmeans_bic",
        clustering_metrics(trace, config, method="kmeans_bic"),
    )
    add_row(
        "agglomerative",
        clustering_metrics(trace, config, method="agglomerative", radius=radius),
    )
    add_row(
        "incremental leader",
        incremental_clustering_metrics(trace, config, radius=radius),
    )
    for group in FEATURE_GROUPS:
        add_row(
            f"leader - {group} features",
            clustering_metrics(
                trace, config, radius=radius, feature_columns=_columns_without(group)
            ),
        )
    return ExperimentResult(
        experiment_id="E7",
        title=f"Ablations on {trace.name}",
        headers=("variant", "pred error %", "efficiency %", "outlier rate %"),
        rows=tuple(rows),
        notes=(
            "feature-group rows drop one group; damage to error/outliers "
            "shows which characteristics carry performance similarity"
        ),
    )


# ---------------------------------------------------------------------------
# E8 — baselines at matched budget
# ---------------------------------------------------------------------------

def e8_baselines(
    trace: Trace,
    config: GpuConfig,
    radius: float = DEFAULT_RADIUS,
    seed: int = 0,
) -> ExperimentResult:
    """Implied comparison: similarity clustering vs naive sampling at equal budget."""
    ground = simulate_frames_batch(trace, config, precompute_trace(trace))
    extractor = FeatureExtractor(trace)

    cluster_errors: List[float] = []
    sample_errors: Dict[str, List[float]] = {
        "random": [],
        "systematic": [],
        "first_n": [],
    }
    budgets: List[int] = []
    for frame, truth in zip(trace.frames, ground):
        clustering = cluster_frame(extractor.frame_matrix(frame), radius=radius)
        rep_times = rep_times_from_draw_times(clustering, truth.draw_times_ns)
        predicted = predict_time_ns(rep_times, clustering.weights)
        cluster_errors.append(abs(predicted - truth.time_ns) / truth.time_ns)
        budget = clustering.num_clusters
        budgets.append(budget)
        n = clustering.num_draws
        samples = {
            "random": random_draw_sample(n, budget, seed=seed),
            "systematic": systematic_draw_sample(n, budget),
            "first_n": first_n_draw_sample(n, budget),
        }
        for method, sample in samples.items():
            estimate = sample.predict_time_ns(truth.draw_times_ns)
            sample_errors[method].append(
                abs(estimate - truth.time_ns) / truth.time_ns
            )

    mean_budget = _mean(budgets)
    rows = [("clustering (paper)", mean_budget, 100.0 * _mean(cluster_errors))]
    for method in ("systematic", "random", "first_n"):
        rows.append((method, mean_budget, 100.0 * _mean(sample_errors[method])))

    # Frame-level comparison: phase subsetting vs periodic vs SimPoint-like.
    phase_subset = build_subset(trace)
    stride = max(1, round(1.0 / max(phase_subset.frame_fraction, 1e-9)))
    nth = every_nth_frame_subset(trace, stride)
    simpoint = simpoint_frames_subset(trace, seed=seed)
    actual_total = sum(out.time_ns for out in ground)
    for label, subset in (
        ("phase subset (paper)", phase_subset),
        (f"every {stride}th frame", nth),
        ("simpoint frames", simpoint),
    ):
        estimate = subset.estimate_total_time_ns(
            [ground[p].time_ns for p in subset.frame_positions]
        )
        rows.append(
            (
                label,
                subset.num_frames,
                100.0 * abs(estimate - actual_total) / actual_total,
            )
        )
    return ExperimentResult(
        experiment_id="E8",
        title=f"Baselines at matched budget ({trace.name})",
        headers=("method", "budget", "error %"),
        rows=tuple(rows),
        notes=(
            "top block: per-frame draw budget matched to clustering's "
            "cluster count; bottom block: frame-subset methods vs total time"
        ),
    )


# ---------------------------------------------------------------------------
# E9 — cross-architecture transfer (the micro-architecture-independence claim)
# ---------------------------------------------------------------------------

def e9_cross_architecture_transfer(
    traces: Dict[str, Trace],
    presets: Sequence[str] = ("lowpower", "mainstream", "highend"),
) -> ExperimentResult:
    """Subsets extracted once must hold on every candidate architecture.

    Because both reductions use only micro-architecture-independent
    information, the subset is a property of the *workload*, not of any
    GPU.  This experiment extracts each game's subset once and scores its
    total-time estimate on each preset.
    """
    from repro.simgpu.batch import precompute_trace as _precompute
    from repro.simgpu.batch import simulate_trace_batch as _simulate

    rows = []
    for name, trace in traces.items():
        subset = build_subset(trace)
        subset_trace = subset.materialize(trace)
        parent_precomp = _precompute(trace)
        subset_precomp = _precompute(subset_trace)
        for preset in presets:
            config = GpuConfig.preset(preset)
            actual = _simulate(trace, config, parent_precomp).total_time_ns
            result = _simulate(subset_trace, config, subset_precomp)
            estimate = subset.estimate_total_time_ns(result.frame_times_ns)
            rows.append(
                (
                    name,
                    preset,
                    actual / 1e6,
                    estimate / 1e6,
                    100.0 * abs(estimate - actual) / actual,
                )
            )
    return ExperimentResult(
        experiment_id="E9",
        title="Cross-architecture transfer of subsets extracted once",
        headers=("game", "architecture", "full ms", "subset-est ms", "error %"),
        rows=tuple(rows),
        notes=(
            "the subset is computed from API-stream characteristics only, "
            "so one extraction serves the whole pathfinding design space"
        ),
        precision=2,
    )


# ---------------------------------------------------------------------------
# E10 — phase-signal ablation: shader vectors vs performance signals
# ---------------------------------------------------------------------------

def e10_phase_signal_stability(
    traces: Dict[str, Trace],
    config_a: Optional[GpuConfig] = None,
    config_b: Optional[GpuConfig] = None,
    interval_length: int = 4,
    tolerance: float = 0.10,
) -> ExperimentResult:
    """Why shader vectors and not measured performance?

    Phases detected from per-pass *time* vectors depend on the
    architecture they were measured on; re-detecting on a different
    config can regroup intervals.  Shader-vector phases are identical on
    every architecture by construction.  Rows report the Rand-index
    agreement between phase structures detected on two architectures.
    """
    from repro.core.perfphase import (
        cross_architecture_agreement,
        detect_phases_from_performance,
        pass_time_matrix,
    )

    if config_a is None:
        config_a = GpuConfig.preset("lowpower")
    if config_b is None:
        config_b = GpuConfig.preset("highend")
    rows = []
    for name, trace in traces.items():
        shader_detection = detect_phases(
            trace, interval_length=interval_length, mode="similarity",
            tolerance=tolerance,
        )
        perf_a = detect_phases_from_performance(
            pass_time_matrix(trace, config_a), interval_length, tolerance
        )
        perf_b = detect_phases_from_performance(
            pass_time_matrix(trace, config_b), interval_length, tolerance
        )
        perf_agreement = cross_architecture_agreement(perf_a, perf_b)
        rows.append(
            (
                name,
                shader_detection.num_phases,
                1.0,  # shader vectors: same input on any architecture
                max(perf_a) + 1,
                max(perf_b) + 1,
                perf_agreement,
            )
        )
    return ExperimentResult(
        experiment_id="E10",
        title="Phase-signal ablation: cross-architecture stability",
        headers=(
            "game",
            "shader phases",
            "shader agreement",
            f"perf phases ({config_a.name})",
            f"perf phases ({config_b.name})",
            "perf agreement",
        ),
        rows=tuple(rows),
        notes=(
            "agreement = Rand index of phase labelings detected on the two "
            "architectures; shader vectors are architecture-independent "
            "inputs, so their agreement is 1 by construction"
        ),
    )
