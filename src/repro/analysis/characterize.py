"""Workload characterization: where a trace spends its time.

IISWC-style reporting on top of the performance model: per-pass time
shares, per-stage bottleneck distribution, and memory-traffic breakdown.
Useful both to sanity-check the synthetic workloads against engine
intuition (G-buffer heavy, post constant, shadows geometry-bound) and as
a user-facing profiling tool for imported traces.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from repro.gfx.trace import Trace
from repro.simgpu.config import GpuConfig
from repro.simgpu.simulator import GpuSimulator
from repro.util.tables import format_table


@dataclass(frozen=True)
class WorkloadProfile:
    """Aggregate characterization of a trace on one architecture."""

    trace_name: str
    config_name: str
    total_time_ms: float
    mean_fps: float
    pass_time_share: Dict[str, float]  # pass type -> fraction of time
    bottleneck_share: Dict[str, float]  # bottleneck name -> fraction of draws
    bottleneck_time_share: Dict[str, float]  # -> fraction of time
    traffic_share: Dict[str, float]  # vertex/texture/rt -> fraction of bytes

    def report(self) -> str:
        sections = [
            f"Workload profile: {self.trace_name} on {self.config_name}",
            f"total {self.total_time_ms:.2f} ms, mean {self.mean_fps:.1f} fps",
            format_table(
                ["pass", "time %"],
                sorted(
                    ([k, 100 * v] for k, v in self.pass_time_share.items()),
                    key=lambda r: -r[1],
                ),
                precision=1,
            ),
            format_table(
                ["bottleneck", "draws %", "time %"],
                sorted(
                    (
                        [
                            k,
                            100 * self.bottleneck_share.get(k, 0.0),
                            100 * self.bottleneck_time_share.get(k, 0.0),
                        ]
                        for k in set(self.bottleneck_share)
                        | set(self.bottleneck_time_share)
                    ),
                    key=lambda r: -r[2],
                ),
                precision=1,
            ),
            format_table(
                ["traffic class", "bytes %"],
                sorted(
                    ([k, 100 * v] for k, v in self.traffic_share.items()),
                    key=lambda r: -r[1],
                ),
                precision=1,
            ),
        ]
        return "\n\n".join(sections)


def characterize_trace(trace: Trace, config: GpuConfig) -> WorkloadProfile:
    """Profile a trace: pass shares, bottlenecks, traffic mix.

    Uses the sequential simulator with per-draw detail (characterization
    is a one-off analysis; accuracy of attribution matters more than
    throughput here).
    """
    simulator = GpuSimulator(config)
    pass_times: Counter = Counter()
    bottleneck_draws: Counter = Counter()
    bottleneck_time: Counter = Counter()
    traffic: Counter = Counter()
    total_time_ns = 0.0
    total_draws = 0
    for frame in trace.frames:
        result = simulator.simulate_frame(frame, trace, keep_draw_costs=True)
        total_time_ns += result.time_ns
        for key, value in result.pass_times_ns.items():
            pass_times[key] += value
        for cost in result.draw_costs:
            bottleneck_draws[cost.bottleneck] += 1
            bottleneck_time[cost.bottleneck] += cost.time_ns
            traffic["vertex"] += cost.traffic.vertex_bytes
            traffic["texture"] += cost.traffic.texture_bytes
            traffic["render_target"] += cost.traffic.rt_bytes
            total_draws += 1

    total_bytes = sum(traffic.values())
    mean_frame_s = total_time_ns / trace.num_frames / 1e9
    return WorkloadProfile(
        trace_name=trace.name,
        config_name=config.name,
        total_time_ms=total_time_ns / 1e6,
        mean_fps=1.0 / mean_frame_s,
        pass_time_share={k: v / total_time_ns for k, v in pass_times.items()},
        bottleneck_share={k: v / total_draws for k, v in bottleneck_draws.items()},
        bottleneck_time_share={
            k: v / total_time_ns for k, v in bottleneck_time.items()
        },
        traffic_share=(
            {k: v / total_bytes for k, v in traffic.items()}
            if total_bytes > 0
            else {k: 0.0 for k in traffic}
        ),
    )
