"""Suite-level subsetting: the whole corpus, one report.

Pathfinding evaluates a *suite* of games, not one.  This module runs the
full methodology per game, validates every subset, and accounts for the
aggregate simulation-cost reduction: how many draw-calls must actually
be simulated per architecture candidate, before vs after subsetting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.validation import SubsetValidation, validate_subset
from repro.core.pipeline import PipelineResult, SubsettingPipeline
from repro.errors import ValidationError
from repro.gfx.trace import Trace
from repro.simgpu.config import GpuConfig
from repro.util.tables import format_table


@dataclass(frozen=True)
class SuiteResult:
    """Per-game pipeline results plus corpus-level accounting."""

    config_name: str
    game_results: Dict[str, PipelineResult]
    validations: Dict[str, SubsetValidation]

    @property
    def total_parent_draws(self) -> int:
        return sum(
            r.subset.parent_num_draws for r in self.game_results.values()
        )

    @property
    def total_subset_draws(self) -> int:
        """Draws to simulate per candidate: clustered reps of kept frames."""
        return sum(
            round(r.combined_draw_fraction * r.subset.parent_num_draws)
            for r in self.game_results.values()
        )

    @property
    def suite_cost_reduction(self) -> float:
        """Fraction of per-candidate simulation work eliminated."""
        return 1.0 - self.total_subset_draws / self.total_parent_draws

    @property
    def all_validations_passed(self) -> bool:
        return all(v.passed for v in self.validations.values())

    def report(self) -> str:
        rows = []
        for name, result in self.game_results.items():
            validation = self.validations[name]
            rows.append(
                [
                    name,
                    result.subset.parent_num_draws,
                    100.0 * result.mean_prediction_error,
                    100.0 * result.mean_efficiency,
                    100.0 * result.combined_draw_fraction,
                    validation.passed,
                ]
            )
        table = format_table(
            [
                "game",
                "draws",
                "pred err %",
                "efficiency %",
                "subset %",
                "validated",
            ],
            rows,
            title=f"Suite subsetting on {self.config_name}",
            precision=2,
        )
        summary = (
            f"suite: {self.total_parent_draws} draws -> "
            f"{self.total_subset_draws} to simulate per candidate "
            f"({100 * self.suite_cost_reduction:.1f}% reduction); "
            f"all subsets validated: "
            f"{'yes' if self.all_validations_passed else 'NO'}"
        )
        return f"{table}\n{summary}"


def subset_suite(
    traces: Dict[str, Trace],
    config: GpuConfig,
    pipeline: Optional[SubsettingPipeline] = None,
    validation_clocks: Sequence[float] = (600.0, 1000.0, 1400.0),
) -> SuiteResult:
    """Run the methodology and validation across a corpus."""
    if not traces:
        raise ValidationError("traces must be non-empty")
    if pipeline is None:
        pipeline = SubsettingPipeline()
    game_results: Dict[str, PipelineResult] = {}
    validations: Dict[str, SubsetValidation] = {}
    for name, trace in traces.items():
        result = pipeline.run(trace, config)
        game_results[name] = result
        validations[name] = validate_subset(
            trace, result.subset, config, validation_clocks
        )
    return SuiteResult(
        config_name=config.name,
        game_results=game_results,
        validations=validations,
    )
