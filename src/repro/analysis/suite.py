"""Suite-level subsetting: the whole corpus, one report.

Pathfinding evaluates a *suite* of games, not one.  This module runs the
full methodology per game, validates every subset, and accounts for the
aggregate simulation-cost reduction: how many draw-calls must actually
be simulated per architecture candidate, before vs after subsetting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.analysis.validation import SubsetValidation, validate_subset
from repro.core.pipeline import PipelineResult, SubsettingPipeline
from repro.errors import ValidationError
from repro.gfx.trace import Trace
from repro.runtime.engine import Runtime
from repro.runtime.telemetry import TelemetrySnapshot
from repro.simgpu.config import GpuConfig
from repro.util.tables import format_table


@dataclass(frozen=True)
class SuiteResult:
    """Per-game pipeline results plus corpus-level accounting."""

    config_name: str
    game_results: Dict[str, PipelineResult]
    validations: Dict[str, SubsetValidation]
    telemetry: Optional[TelemetrySnapshot] = field(default=None, compare=False)

    @property
    def total_parent_draws(self) -> int:
        return sum(
            r.subset.parent_num_draws for r in self.game_results.values()
        )

    @property
    def total_subset_draws(self) -> int:
        """Draws to simulate per candidate: clustered reps of kept frames."""
        return sum(
            round(r.combined_draw_fraction * r.subset.parent_num_draws)
            for r in self.game_results.values()
        )

    @property
    def suite_cost_reduction(self) -> float:
        """Fraction of per-candidate simulation work eliminated."""
        return 1.0 - self.total_subset_draws / self.total_parent_draws

    @property
    def all_validations_passed(self) -> bool:
        return all(v.passed for v in self.validations.values())

    def report(self) -> str:
        rows = []
        for name, result in self.game_results.items():
            validation = self.validations[name]
            rows.append(
                [
                    name,
                    result.subset.parent_num_draws,
                    100.0 * result.mean_prediction_error,
                    100.0 * result.mean_efficiency,
                    100.0 * result.combined_draw_fraction,
                    validation.passed,
                ]
            )
        table = format_table(
            [
                "game",
                "draws",
                "pred err %",
                "efficiency %",
                "subset %",
                "validated",
            ],
            rows,
            title=f"Suite subsetting on {self.config_name}",
            precision=2,
        )
        summary = (
            f"suite: {self.total_parent_draws} draws -> "
            f"{self.total_subset_draws} to simulate per candidate "
            f"({100 * self.suite_cost_reduction:.1f}% reduction); "
            f"all subsets validated: "
            f"{'yes' if self.all_validations_passed else 'NO'}"
        )
        if self.telemetry is not None:
            summary = f"{summary}\n{self.telemetry.summary_line()}"
        return f"{table}\n{summary}"


def subset_suite(
    traces: Dict[str, Trace],
    config: GpuConfig,
    pipeline: Optional[SubsettingPipeline] = None,
    validation_clocks: Sequence[float] = (600.0, 1000.0, 1400.0),
    runtime: Optional[Runtime] = None,
) -> SuiteResult:
    """Run the methodology and validation across a corpus.

    One ``runtime`` spans every game: its telemetry aggregates the whole
    suite, and with a cache attached a re-run (or a second suite sharing
    games) skips every already-simulated (trace, config) artifact.
    """
    if not traces:
        raise ValidationError("traces must be non-empty")
    if pipeline is None:
        pipeline = SubsettingPipeline()
    if runtime is None:
        runtime = Runtime.serial()
    game_results: Dict[str, PipelineResult] = {}
    validations: Dict[str, SubsetValidation] = {}
    with runtime.tracer.span("suite", category="suite", config=config.name):
        for name, trace in traces.items():
            with runtime.tracer.span("suite.game", category="suite", game=name):
                result = pipeline.run(trace, config, runtime=runtime)
                game_results[name] = result
                validations[name] = validate_subset(
                    trace,
                    result.subset,
                    config,
                    validation_clocks,
                    runtime=runtime,
                )
    return SuiteResult(
        config_name=config.name,
        game_results=game_results,
        validations=validations,
        telemetry=runtime.snapshot(),
    )
