"""Frequency-scaling correlation: the paper's subset-validation method.

A subset is trustworthy for pathfinding when its response to an
architecture change tracks the parent's.  The paper scales GPU core
frequency and correlates the subset's performance-improvement curve with
the parent's, reporting r >= 0.997 for subsets under 1% of the parent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.subsetting import WorkloadSubset
from repro.gfx.trace import Trace
from repro.runtime.engine import Runtime
from repro.simgpu.config import GpuConfig
from repro.simgpu.dvfs import DEFAULT_CLOCKS_MHZ
from repro.util.stats import pearson_correlation


@dataclass(frozen=True)
class CorrelationResult:
    """Parent-vs-subset frequency-scaling curves and their correlation."""

    trace_name: str
    subset_method: str
    clocks_mhz: Tuple[float, ...]
    parent_times_ns: Tuple[float, ...]
    subset_estimated_times_ns: Tuple[float, ...]

    @staticmethod
    def _improvements(times: Sequence[float]) -> Tuple[float, ...]:
        base = times[0]
        return tuple(100.0 * (base / t - 1.0) for t in times[1:])

    @property
    def parent_improvements_percent(self) -> Tuple[float, ...]:
        return self._improvements(self.parent_times_ns)

    @property
    def subset_improvements_percent(self) -> Tuple[float, ...]:
        return self._improvements(self.subset_estimated_times_ns)

    @property
    def correlation(self) -> float:
        """Pearson r between the two improvement curves (paper: >= 0.997)."""
        return pearson_correlation(
            self.parent_improvements_percent, self.subset_improvements_percent
        )

    @property
    def max_improvement_gap_points(self) -> float:
        """Largest absolute gap between the curves, in percentage points."""
        return max(
            abs(a - b)
            for a, b in zip(
                self.parent_improvements_percent, self.subset_improvements_percent
            )
        )


def subset_parent_correlation(
    trace: Trace,
    subset: WorkloadSubset,
    base_config: GpuConfig,
    clocks_mhz: Sequence[float] = DEFAULT_CLOCKS_MHZ,
    runtime: Optional[Runtime] = None,
) -> CorrelationResult:
    """Sweep core clocks on parent and subset; package both curves.

    The subset side simulates *only* the subset trace at each clock and
    scales by the subset weights — the exact reduced workflow a
    pathfinding team would run.  All clock points go through ``runtime``
    as one batch, so workers share each frame's precompute and the
    artifact cache skips clocks simulated by an earlier run.
    """
    if runtime is None:
        runtime = Runtime.serial()
    subset_trace = subset.materialize(trace)
    configs = [base_config.with_core_clock(clock) for clock in clocks_mhz]
    parent_runs = runtime.simulate_frames_many(
        trace, configs, label="correlation.parent"
    )
    subset_runs = runtime.simulate_frames_many(
        subset_trace, configs, label="correlation.subset"
    )
    parent_times = [
        float(sum(out.time_ns for out in outputs)) for outputs in parent_runs
    ]
    subset_times = [
        subset.estimate_total_time_ns([out.time_ns for out in outputs])
        for outputs in subset_runs
    ]
    return CorrelationResult(
        trace_name=trace.name,
        subset_method=subset.method,
        clocks_mhz=tuple(clocks_mhz),
        parent_times_ns=tuple(parent_times),
        subset_estimated_times_ns=tuple(subset_times),
    )
