"""Canonical synthetic corpora, reproducible by (name, seed).

The paper's corpus is the BioShock series: 717 frames, ~828K draw-calls
across three games.  :func:`paper_corpus` regenerates a corpus of exactly
that shape; :func:`load` fetches one game at any scale for quicker runs.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.errors import ValidationError
from repro.gfx.trace import Trace
from repro.synth.generator import generate_trace
from repro.synth.profiles import BIOSHOCK_SERIES

# Frames per game such that the three-game corpus totals the paper's 717.
PAPER_FRAMES_PER_GAME = 239
DEFAULT_SEED = 7

# CI-friendly defaults used by the benchmark harness unless
# REPRO_FULL_SCALE=1 is set.
CI_FRAMES_PER_GAME = 48
CI_SCALE = 0.25

FULL_SCALE_ENV = "REPRO_FULL_SCALE"


def available() -> tuple:
    """Names accepted by :func:`load`."""
    return BIOSHOCK_SERIES


def load(
    name: str,
    frames: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> Trace:
    """Generate one canonical game trace.

    Args:
        name: a profile name from :func:`available`.
        frames: frame count (defaults to the profile's standard script).
        seed: corpus seed; the same (name, frames, seed, scale) is always
            byte-identical.
        scale: content-volume multiplier (draws per frame).
    """
    if name not in BIOSHOCK_SERIES:
        choices = ", ".join(BIOSHOCK_SERIES)
        raise ValidationError(f"unknown dataset {name!r}; choose from: {choices}")
    return generate_trace(name, num_frames=frames, seed=seed, scale=scale)


def full_scale_requested() -> bool:
    """True when the environment asks benchmarks for the paper-scale corpus."""
    return os.environ.get(FULL_SCALE_ENV, "") == "1"


def corpus(
    frames: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> Dict[str, Trace]:
    """The three-game corpus at a chosen scale."""
    return {
        name: load(name, frames=frames, seed=seed, scale=scale)
        for name in BIOSHOCK_SERIES
    }


def paper_corpus(seed: int = DEFAULT_SEED) -> Dict[str, Trace]:
    """The paper-shaped corpus: 3 games x 239 frames = 717 frames, ~828K draws."""
    return corpus(frames=PAPER_FRAMES_PER_GAME, seed=seed, scale=1.0)


def bench_corpus(seed: int = DEFAULT_SEED) -> Dict[str, Trace]:
    """What the benchmark harness runs on.

    Paper scale when ``REPRO_FULL_SCALE=1``; otherwise a reduced corpus
    with the same structure (all three games, all pass types, phase
    scripts intact).
    """
    if full_scale_requested():
        return paper_corpus(seed=seed)
    return corpus(frames=CI_FRAMES_PER_GAME, seed=seed, scale=CI_SCALE)


def corpus_stats(traces: Dict[str, Trace]) -> List[dict]:
    """Per-game stats rows plus a totals row (for reports)."""
    rows = []
    total_frames = 0
    total_draws = 0
    for name, trace in traces.items():
        stats = trace.stats()
        total_frames += stats.num_frames
        total_draws += stats.num_draws
        rows.append(
            {
                "game": name,
                "frames": stats.num_frames,
                "draws": stats.num_draws,
                "draws_per_frame": round(stats.draws_per_frame_mean),
                "shaders": stats.num_shaders,
            }
        )
    rows.append(
        {
            "game": "TOTAL",
            "frames": total_frames,
            "draws": total_draws,
            "draws_per_frame": round(total_draws / total_frames),
            "shaders": "",
        }
    )
    return rows
