"""Phase scripts: the segment structure of a gameplay capture.

A captured game run is a sequence of *segments* — stretches of frames with
homogeneous rendering behaviour (a menu, exploring one level zone, a
firefight, a scripted cutscene).  Segments of the same kind in the same
zone render with the same shader population, which is precisely the
repetitive structure the paper's shader-vector phase detection exploits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.errors import ValidationError
from repro.util.validation import check_nonnegative, check_positive, check_type


class SegmentKind(enum.Enum):
    """Gameplay situation a segment represents."""

    MENU = "menu"
    EXPLORE = "explore"
    COMBAT = "combat"
    CUTSCENE = "cutscene"
    VISTA = "vista"


@dataclass(frozen=True)
class Segment:
    """A stretch of frames with homogeneous rendering behaviour."""

    kind: SegmentKind
    zone: int
    frames: int

    def __post_init__(self) -> None:
        check_type("Segment.kind", self.kind, SegmentKind)
        check_type("Segment.zone", self.zone, int)
        check_nonnegative("Segment.zone", self.zone)
        check_type("Segment.frames", self.frames, int)
        check_positive("Segment.frames", self.frames)

    @property
    def phase_label(self) -> str:
        """Ground-truth phase identity: same kind + zone = same phase."""
        return f"{self.kind.value}/z{self.zone}"


@dataclass(frozen=True)
class PhaseScript:
    """An ordered list of segments covering a capture."""

    segments: Tuple[Segment, ...]

    def __post_init__(self) -> None:
        check_type("PhaseScript.segments", self.segments, tuple)
        if not self.segments:
            raise ValidationError("PhaseScript.segments must be non-empty")
        for i, segment in enumerate(self.segments):
            if not isinstance(segment, Segment):
                raise ValidationError(
                    f"PhaseScript.segments[{i}] must be Segment, "
                    f"got {type(segment).__name__}"
                )

    @property
    def total_frames(self) -> int:
        return sum(s.frames for s in self.segments)

    def frame_segments(self) -> Iterator[Tuple[int, Segment, int]]:
        """Yield (absolute_frame_index, segment, frame_within_segment)."""
        index = 0
        for segment in self.segments:
            for local in range(segment.frames):
                yield index, segment, local
                index += 1

    def truncated(self, num_frames: int) -> "PhaseScript":
        """A script covering exactly ``num_frames``, cycling if needed.

        Shorter targets cut the script mid-segment; longer targets repeat
        it from the beginning (gameplay loops revisit earlier phases,
        which only strengthens the phase structure).
        """
        check_positive("num_frames", num_frames)
        out: List[Segment] = []
        remaining = num_frames
        while remaining > 0:
            for segment in self.segments:
                if remaining <= 0:
                    break
                take = min(segment.frames, remaining)
                out.append(
                    Segment(kind=segment.kind, zone=segment.zone, frames=take)
                )
                remaining -= take
        return PhaseScript(segments=tuple(out))

    def boundaries(self) -> List[dict]:
        """Segment table for trace metadata (JSON-serializable)."""
        table = []
        start = 0
        for segment in self.segments:
            table.append(
                {
                    "kind": segment.kind.value,
                    "zone": segment.zone,
                    "start": start,
                    "end": start + segment.frames,
                    "phase": segment.phase_label,
                }
            )
            start += segment.frames
        return table


def default_script(zones: Sequence[int]) -> PhaseScript:
    """A gameplay arc over the given zones.

    Menu, then per zone: explore -> combat -> explore (backtrack), with a
    cutscene between zones and a vista on entering each new zone.  The
    re-visits create the repeating shader-vector patterns the paper finds
    in the BioShock games.
    """
    if not zones:
        raise ValidationError("zones must be non-empty")
    segments: List[Segment] = [Segment(SegmentKind.MENU, zones[0], 8)]
    for i, zone in enumerate(zones):
        segments.append(Segment(SegmentKind.VISTA, zone, 6))
        segments.append(Segment(SegmentKind.EXPLORE, zone, 20))
        segments.append(Segment(SegmentKind.COMBAT, zone, 14))
        segments.append(Segment(SegmentKind.EXPLORE, zone, 16))
        if i + 1 < len(zones):
            segments.append(Segment(SegmentKind.CUTSCENE, zone, 8))
    return PhaseScript(segments=tuple(segments))
