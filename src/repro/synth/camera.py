"""Camera behaviour per segment kind.

The camera determines what fraction of a zone's objects are on screen and
how large they appear.  Each segment kind has a characteristic regime:
vistas see many small objects, combat swings the view quickly, cutscenes
frame few large subjects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.synth.phasescript import SegmentKind


@dataclass(frozen=True)
class CameraState:
    """Per-frame view parameters."""

    visibility_fraction: float  # fraction of zone objects on screen
    zoom: float  # multiplies per-object screen area
    overdraw: float  # opaque depth complexity this frame


_BASE = {
    SegmentKind.MENU: (0.0, 1.0, 1.0),
    SegmentKind.EXPLORE: (0.62, 1.0, 1.9),
    SegmentKind.COMBAT: (0.68, 1.1, 2.2),
    SegmentKind.CUTSCENE: (0.30, 1.8, 1.6),
    SegmentKind.VISTA: (0.88, 0.55, 1.5),
}

_SWING = {
    SegmentKind.MENU: 0.0,
    SegmentKind.EXPLORE: 0.05,
    SegmentKind.COMBAT: 0.10,
    SegmentKind.CUTSCENE: 0.03,
    SegmentKind.VISTA: 0.04,
}


def camera_state(kind: SegmentKind, local_frame: int) -> CameraState:
    """Camera parameters for frame ``local_frame`` of a segment.

    Deterministic and smooth in ``local_frame``: the visibility fraction
    and zoom follow slow sinusoids whose amplitude depends on how fast
    the segment kind moves the camera.
    """
    base_vis, base_zoom, overdraw = _BASE[kind]
    swing = _SWING[kind]
    angle = 2.0 * math.pi * local_frame / 32.0
    vis = base_vis + swing * math.sin(angle)
    zoom = base_zoom * (1.0 + 0.5 * swing * math.cos(angle * 0.7))
    return CameraState(
        visibility_fraction=min(1.0, max(0.0, vis)),
        zoom=max(0.05, zoom),
        overdraw=overdraw,
    )
