"""Trace generation: profile + seed -> complete, validated Trace."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ValidationError
from repro.gfx.trace import Trace
from repro.gfx.validate import validate_trace
from repro.synth.materials import MaterialTables, build_tables
from repro.synth.passes import build_frame
from repro.synth.phasescript import PhaseScript, default_script
from repro.synth.profiles import GameProfile
from repro.synth.scene import SceneObject, build_zone
from repro.util.validation import check_positive, check_type


class TraceGenerator:
    """Deterministically expands a :class:`GameProfile` into traces.

    One generator instance owns the game's static world (shader, texture,
    and render-target tables; zone populations); :meth:`generate` renders
    any number of frames from it.  The same (profile, seed) pair always
    produces byte-identical traces.
    """

    def __init__(self, profile: GameProfile, seed: int = 0) -> None:
        check_type("profile", profile, GameProfile)
        check_type("seed", seed, int)
        self.profile = profile
        self.seed = seed
        self.tables: MaterialTables = build_tables(profile, seed)
        self._zones: Dict[int, List[SceneObject]] = {}

    def zone_objects(self, zone: int) -> List[SceneObject]:
        """The (lazily built, cached) object population of a zone."""
        if zone not in self._zones:
            self._zones[zone] = build_zone(self.profile, self.tables, zone, self.seed)
        return self._zones[zone]

    def generate(
        self,
        num_frames: Optional[int] = None,
        script: Optional[PhaseScript] = None,
        validate: bool = True,
    ) -> Trace:
        """Render a trace.

        Args:
            num_frames: total frames; defaults to one full pass of the
                script.  Longer requests loop the script (gameplay
                revisits phases).
            script: segment structure; defaults to the profile-standard
                gameplay arc over all zones.
            validate: run referential-integrity validation on the result.
        """
        if script is None:
            script = default_script(list(range(self.profile.num_zones)))
        if num_frames is not None:
            check_positive("num_frames", num_frames)
            script = script.truncated(num_frames)
        for segment in script.segments:
            if segment.zone >= self.profile.num_zones:
                raise ValidationError(
                    f"script references zone {segment.zone} but profile "
                    f"{self.profile.name!r} has {self.profile.num_zones} zones"
                )

        frames = []
        for frame_index, segment, local in script.frame_segments():
            frames.append(
                build_frame(
                    profile=self.profile,
                    tables=self.tables,
                    zone_objects=self.zone_objects(segment.zone),
                    segment=segment,
                    local_frame=local,
                    frame_index=frame_index,
                    seed=self.seed,
                )
            )
        trace = Trace(
            name=self.profile.name,
            frames=tuple(frames),
            shaders=dict(self.tables.shaders),
            textures=dict(self.tables.textures),
            render_targets=dict(self.tables.render_targets),
            metadata={
                "generator": "repro.synth",
                "profile": self.profile.name,
                "renderer": self.profile.renderer,
                "seed": self.seed,
                "segments": script.boundaries(),
            },
        )
        if validate:
            validate_trace(trace)
        return trace


def generate_trace(
    profile_name: str,
    num_frames: Optional[int] = None,
    seed: int = 0,
    scale: float = 1.0,
) -> Trace:
    """One-call generation from a preset profile name.

    ``scale`` multiplies content volume (draws per frame) without changing
    the rendering architecture — used to shrink corpora to CI scale.
    """
    profile = GameProfile.preset(profile_name)
    if scale != 1.0:
        profile = profile.scaled(scale)
    return TraceGenerator(profile, seed=seed).generate(num_frames=num_frames)
