"""Game profiles: the content and renderer statistics of a synthetic game.

The three BioShock-like presets track the series' real rendering
evolution: a 2007 forward renderer with modest draw counts, a 2010
refresh with heavier scenes, and a 2013 deferred renderer with multiple
render targets, more dynamic lights, and much higher draw counts.  None
of this reproduces the games' *content* — only the workload statistics
the subsetting methodology consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigError
from repro.util.validation import (
    check_fraction,
    check_in,
    check_positive,
    check_type,
)

RENDERERS = ("forward", "deferred")


@dataclass(frozen=True)
class GameProfile:
    """Statistics describing one game's rendering workload."""

    name: str
    renderer: str = "forward"
    width: int = 1280
    height: int = 720

    # Content
    num_zones: int = 3
    objects_per_zone: int = 420
    mesh_classes: int = 12
    material_classes: int = 16
    texture_size_min: int = 256
    texture_size_max: int = 1024

    # Lighting / shadows
    num_lights: int = 2
    shadow_caster_fraction: float = 0.35
    shadow_map_size: int = 1024

    # Effects
    particle_systems: int = 6
    post_chain_length: int = 4
    ui_draws: int = 14

    # Shader complexity (pixel-shader ALU midpoint per material family)
    ps_alu_base: int = 40
    vs_alu_base: int = 24

    # Per-frame jitter: fraction of visible objects that churn frame to frame
    visibility_churn: float = 0.06

    def __post_init__(self) -> None:
        check_type("GameProfile.name", self.name, str)
        if not self.name:
            raise ConfigError("GameProfile.name must be non-empty")
        check_in("GameProfile.renderer", self.renderer, RENDERERS)
        for field_name in (
            "width",
            "height",
            "num_zones",
            "objects_per_zone",
            "mesh_classes",
            "material_classes",
            "texture_size_min",
            "texture_size_max",
            "num_lights",
            "shadow_map_size",
            "particle_systems",
            "post_chain_length",
            "ui_draws",
            "ps_alu_base",
            "vs_alu_base",
        ):
            value = getattr(self, field_name)
            check_type(f"GameProfile.{field_name}", value, int)
            check_positive(f"GameProfile.{field_name}", value)
        check_fraction("GameProfile.shadow_caster_fraction", self.shadow_caster_fraction)
        check_fraction("GameProfile.visibility_churn", self.visibility_churn)
        if self.texture_size_min > self.texture_size_max:
            raise ConfigError(
                f"texture_size_min={self.texture_size_min} exceeds "
                f"texture_size_max={self.texture_size_max}"
            )

    @property
    def pixel_budget(self) -> int:
        return self.width * self.height

    def scaled(self, factor: float) -> "GameProfile":
        """Scale content volume (draw counts) by ``factor``.

        Used to shrink profiles to CI scale or grow them to paper scale
        without touching their rendering architecture.
        """
        check_positive("factor", factor)
        import dataclasses

        return dataclasses.replace(
            self,
            name=f"{self.name}x{factor:g}",
            objects_per_zone=max(8, round(self.objects_per_zone * factor)),
            particle_systems=max(1, round(self.particle_systems * factor)),
            ui_draws=max(2, round(self.ui_draws * factor)),
        )

    @classmethod
    def preset(cls, name: str) -> "GameProfile":
        try:
            return _PRESETS[name]
        except KeyError:
            choices = ", ".join(sorted(_PRESETS))
            raise ConfigError(
                f"unknown game profile {name!r}; choose from: {choices}"
            ) from None

    @classmethod
    def preset_names(cls) -> Tuple[str, ...]:
        return tuple(sorted(_PRESETS))


_PRESETS = {
    # 2007-era forward renderer: modest scenes, few lights, smaller textures.
    "bioshock1_like": GameProfile(
        name="bioshock1_like",
        renderer="forward",
        width=1280,
        height=720,
        num_zones=3,
        objects_per_zone=790,
        mesh_classes=10,
        material_classes=12,
        texture_size_min=128,
        texture_size_max=512,
        num_lights=2,
        shadow_caster_fraction=0.30,
        particle_systems=5,
        post_chain_length=3,
        ui_draws=10,
        ps_alu_base=32,
        vs_alu_base=20,
    ),
    # 2010 sequel: same architecture, heavier content.
    "bioshock2_like": GameProfile(
        name="bioshock2_like",
        renderer="forward",
        width=1280,
        height=720,
        num_zones=3,
        objects_per_zone=890,
        mesh_classes=12,
        material_classes=16,
        texture_size_min=256,
        texture_size_max=1024,
        num_lights=3,
        shadow_caster_fraction=0.35,
        particle_systems=8,
        post_chain_length=4,
        ui_draws=12,
        ps_alu_base=44,
        vs_alu_base=24,
    ),
    # 2013 deferred renderer: G-buffer MRT, more lights, big draw counts.
    "bioshock_infinite_like": GameProfile(
        name="bioshock_infinite_like",
        renderer="deferred",
        width=1920,
        height=1080,
        num_zones=4,
        objects_per_zone=1060,
        mesh_classes=14,
        material_classes=20,
        texture_size_min=256,
        texture_size_max=2048,
        num_lights=6,
        shadow_caster_fraction=0.40,
        shadow_map_size=2048,
        particle_systems=10,
        post_chain_length=6,
        ui_draws=16,
        ps_alu_base=56,
        vs_alu_base=30,
    ),
}

BIOSHOCK_SERIES = ("bioshock1_like", "bioshock2_like", "bioshock_infinite_like")
