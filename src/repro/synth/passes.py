"""Render-pass generation: expands a frame's scene state into draw-calls.

Each function emits one engine pass; :func:`build_frame` assembles a full
frame in the order a real engine submits them (shadows, opaque/G-buffer,
deferred lighting, transparents, post chain, HUD).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.gfx.drawcall import DrawCall
from repro.gfx.enums import PassType, PrimitiveTopology
from repro.gfx.frame import Frame, RenderPass
from repro.gfx.state import (
    ADDITIVE_STATE,
    FULLSCREEN_STATE,
    OPAQUE_STATE,
    TRANSPARENT_STATE,
    UI_STATE,
)
from repro.synth.camera import CameraState, camera_state
from repro.synth.materials import (
    MaterialTables,
    RT_BACKBUFFER,
    RT_DEPTH,
    RT_GBUFFER_BASE,
    RT_HDR0,
    RT_HDR1,
    RT_SHADOW_BASE,
    TEX_PARTICLE_BASE,
    GBUFFER_TARGET_COUNT,
)
from repro.synth.phasescript import Segment, SegmentKind
from repro.synth.profiles import GameProfile
from repro.synth.scene import SceneObject, coverage_factor, visible_objects
from repro.util.rng import make_rng, stable_unit

UI_ATLAS_TEX = TEX_PARTICLE_BASE + 3

# Early-Z efficiency ramp across an opaque pass sorted roughly
# front-to-back: the first draws shade almost everything they rasterize,
# the last draws are mostly occluded.
_EARLY_Z_FIRST = 0.95
_EARLY_Z_LAST = 0.55

_FULLSCREEN_TRI = dict(
    topology=PrimitiveTopology.TRIANGLE_LIST,
    vertex_count=3,
    vertex_stride_bytes=16,
)


def _pixel_shares(weights: Sequence[float], budget: int) -> List[int]:
    """Split a pixel budget across draws proportionally to weights."""
    total = float(sum(weights))
    if total <= 0.0 or budget <= 0:
        return [0 for _ in weights]
    return [int(budget * w / total) for w in weights]


def _early_z_fraction(position: int, count: int) -> float:
    if count <= 1:
        return _EARLY_Z_FIRST
    t = position / (count - 1)
    return _EARLY_Z_FIRST + (_EARLY_Z_LAST - _EARLY_Z_FIRST) * t


def _scene_weights(
    objects: Sequence[SceneObject], camera: CameraState, local_frame: int
) -> List[float]:
    return [
        obj.size_weight * coverage_factor(obj, local_frame) * camera.zoom
        for obj in objects
    ]


def shadow_passes(
    profile: GameProfile,
    tables: MaterialTables,
    visible: Sequence[SceneObject],
    weights: Sequence[float],
) -> List[RenderPass]:
    """One depth-only pass per shadowed light over the visible casters."""
    caster_pairs = [
        (obj, w) for obj, w in zip(visible, weights) if obj.caster
    ]
    if not caster_pairs:
        return []
    passes = []
    budget = int(profile.shadow_map_size**2 * 1.2)
    shares = _pixel_shares([w for _, w in caster_pairs], budget)
    for light in range(tables.shadowed_lights):
        draws = []
        for (obj, _), rast in zip(caster_pairs, shares):
            shaded = int(rast * 0.85)
            draws.append(
                DrawCall(
                    shader_id=tables.special.depth_only,
                    state=OPAQUE_STATE,
                    topology=PrimitiveTopology.TRIANGLE_LIST,
                    vertex_count=obj.mesh_vertices,
                    pixels_rasterized=rast,
                    pixels_shaded=shaded,
                    texture_ids=(),
                    render_target_ids=(),
                    depth_target_id=RT_SHADOW_BASE + light,
                    vertex_stride_bytes=16,
                    pass_type=PassType.SHADOW,
                )
            )
        passes.append(
            RenderPass(pass_type=PassType.SHADOW, draws=tuple(draws), name=f"shadow{light}")
        )
    return passes


def opaque_pass(
    profile: GameProfile,
    tables: MaterialTables,
    visible: Sequence[SceneObject],
    weights: Sequence[float],
    camera: CameraState,
) -> RenderPass:
    """The main geometry pass: forward-lit or G-buffer fill."""
    deferred = profile.renderer == "deferred"
    # Engines sort opaque geometry by material to amortize pipeline
    # switches, then big-to-small within a material for early-Z.
    order = sorted(
        range(len(visible)), key=lambda i: (visible[i].material, -weights[i])
    )
    # Depth-kill efficiency follows screen-size rank (a proxy for the
    # front-to-back order the depth buffer effectively enforces), not
    # submission position.
    size_rank = {
        i: rank
        for rank, i in enumerate(sorted(range(len(visible)), key=lambda i: -weights[i]))
    }
    budget = int(profile.pixel_budget * camera.overdraw)
    shares = _pixel_shares([weights[i] for i in order], budget)
    if deferred:
        pass_type = PassType.GBUFFER
        target_ids = tuple(RT_GBUFFER_BASE + i for i in range(GBUFFER_TARGET_COUNT))
    else:
        pass_type = PassType.FORWARD
        target_ids = (RT_HDR0,)
    draws = []
    count = len(order)
    for index, rast in zip(order, shares):
        obj = visible[index]
        shaded = int(rast * _early_z_fraction(size_rank[index], count))
        draws.append(
            DrawCall(
                shader_id=tables.material_shader[obj.material],
                state=OPAQUE_STATE,
                topology=PrimitiveTopology.TRIANGLE_LIST,
                vertex_count=obj.mesh_vertices,
                pixels_rasterized=rast,
                pixels_shaded=shaded,
                texture_ids=tables.material_textures_for(
                    obj.material, obj.texture_variant
                ),
                render_target_ids=target_ids,
                depth_target_id=RT_DEPTH,
                vertex_stride_bytes=32,
                pass_type=pass_type,
            )
        )
    return RenderPass(pass_type=pass_type, draws=tuple(draws), name="opaque")


def lighting_pass(
    profile: GameProfile, tables: MaterialTables, zone: int
) -> RenderPass:
    """Deferred shading: one directional resolve plus point-light volumes."""
    pixels = profile.pixel_budget
    draws = [
        DrawCall(
            shader_id=tables.special.lighting_directional,
            state=FULLSCREEN_STATE,
            pixels_rasterized=pixels,
            pixels_shaded=pixels,
            texture_ids=tables.gbuffer_texture_ids,
            render_target_ids=(RT_HDR0,),
            depth_target_id=None,
            pass_type=PassType.LIGHTING,
            **_FULLSCREEN_TRI,
        )
    ]
    for light in range(profile.num_lights):
        # Each light's screen share is a stable property of the zone layout.
        share = 0.02 + 0.18 * stable_unit("light-share", zone, light)
        rast = int(pixels * share)
        draws.append(
            DrawCall(
                shader_id=tables.special.lighting_point,
                state=ADDITIVE_STATE,
                topology=PrimitiveTopology.TRIANGLE_LIST,
                vertex_count=720,
                pixels_rasterized=rast,
                pixels_shaded=int(rast * 0.9),
                texture_ids=tables.gbuffer_texture_ids,
                render_target_ids=(RT_HDR0,),
                depth_target_id=RT_DEPTH,
                vertex_stride_bytes=16,
                pass_type=PassType.LIGHTING,
            )
        )
    return RenderPass(pass_type=PassType.LIGHTING, draws=tuple(draws), name="lighting")


def transparent_pass(
    profile: GameProfile,
    tables: MaterialTables,
    kind: SegmentKind,
    zone: int,
    local_frame: int,
    rng: np.random.Generator,
) -> RenderPass:
    """Particles and other blended effects."""
    intensity = {"combat": 2.0, "explore": 1.0, "vista": 0.6, "cutscene": 0.8}.get(
        kind.value, 0.0
    )
    systems = int(round(profile.particle_systems * intensity))
    draws = []
    for system in range(systems):
        additive = stable_unit("particle-mode", zone, system) < 0.6
        instances = 16 + int(
            48 * stable_unit("particle-count", zone, system) * (1 + 0.2 * rng.random())
        )
        share = 0.01 + 0.05 * stable_unit("particle-share", zone, system)
        rast = int(profile.pixel_budget * share)
        draws.append(
            DrawCall(
                shader_id=(
                    tables.special.particle_additive
                    if additive
                    else tables.special.particle_alpha
                ),
                state=ADDITIVE_STATE if additive else TRANSPARENT_STATE,
                topology=PrimitiveTopology.TRIANGLE_STRIP,
                vertex_count=4,
                instance_count=instances,
                pixels_rasterized=rast,
                pixels_shaded=int(rast * 0.95),
                texture_ids=(TEX_PARTICLE_BASE + system % 3,),
                render_target_ids=(RT_HDR0,),
                depth_target_id=RT_DEPTH,
                vertex_stride_bytes=20,
                pass_type=PassType.TRANSPARENT,
            )
        )
    return RenderPass(
        pass_type=PassType.TRANSPARENT, draws=tuple(draws), name="transparent"
    )


def post_pass(
    profile: GameProfile, tables: MaterialTables, extra_stages: int = 0
) -> RenderPass:
    """The post-processing chain: fullscreen stages ping-ponging HDR targets."""
    draws = []
    stages = list(tables.special.post)
    stages += stages[-1:] * extra_stages  # e.g. cutscene depth-of-field reuse
    for i, shader_id in enumerate(stages):
        last = i == len(stages) - 1
        half_res = not last and i % 2 == 1
        pixels = profile.pixel_budget // (4 if half_res else 1)
        draws.append(
            DrawCall(
                shader_id=shader_id,
                state=FULLSCREEN_STATE,
                pixels_rasterized=pixels,
                pixels_shaded=pixels,
                texture_ids=(tables.scene_color_texture_id,),
                render_target_ids=(
                    RT_BACKBUFFER if last else (RT_HDR1 if half_res else RT_HDR0),
                ),
                depth_target_id=None,
                pass_type=PassType.POST,
                **_FULLSCREEN_TRI,
            )
        )
    return RenderPass(pass_type=PassType.POST, draws=tuple(draws), name="post")


def ui_pass(
    profile: GameProfile,
    tables: MaterialTables,
    kind: SegmentKind,
    rng: np.random.Generator,
) -> RenderPass:
    """HUD / menu quads."""
    count = profile.ui_draws * (2 if kind is SegmentKind.MENU else 1)
    if kind is SegmentKind.CUTSCENE:
        count = max(1, count // 4)  # letterboxed: most HUD hidden
    draws = []
    for i in range(count):
        share = 0.001 + 0.008 * stable_unit("ui-share", i)
        rast = max(64, int(profile.pixel_budget * share * (1 + 0.1 * rng.random())))
        draws.append(
            DrawCall(
                shader_id=tables.special.ui,
                state=UI_STATE,
                topology=PrimitiveTopology.TRIANGLE_STRIP,
                vertex_count=4,
                pixels_rasterized=rast,
                pixels_shaded=rast,
                texture_ids=(UI_ATLAS_TEX,),
                render_target_ids=(RT_BACKBUFFER,),
                depth_target_id=None,
                vertex_stride_bytes=16,
                pass_type=PassType.UI,
            )
        )
    return RenderPass(pass_type=PassType.UI, draws=tuple(draws), name="ui")


def menu_background_pass(profile: GameProfile, tables: MaterialTables) -> RenderPass:
    """A menu's animated fullscreen backdrop."""
    draw = DrawCall(
        shader_id=tables.special.post[0],
        state=FULLSCREEN_STATE,
        pixels_rasterized=profile.pixel_budget,
        pixels_shaded=profile.pixel_budget,
        texture_ids=(tables.scene_color_texture_id,),
        render_target_ids=(RT_BACKBUFFER,),
        depth_target_id=None,
        pass_type=PassType.POST,
        **_FULLSCREEN_TRI,
    )
    return RenderPass(pass_type=PassType.POST, draws=(draw,), name="menu_bg")


def build_frame(
    profile: GameProfile,
    tables: MaterialTables,
    zone_objects: Sequence[SceneObject],
    segment: Segment,
    local_frame: int,
    frame_index: int,
    seed: int,
) -> Frame:
    """Assemble one complete frame for a segment."""
    rng = make_rng(seed, "frame", profile.name, frame_index)
    kind = segment.kind
    camera = camera_state(kind, local_frame)
    passes: List[RenderPass] = []

    if kind is SegmentKind.MENU:
        passes.append(menu_background_pass(profile, tables))
        passes.append(ui_pass(profile, tables, kind, rng))
    else:
        visible = visible_objects(list(zone_objects), camera.visibility_fraction)
        weights = _scene_weights(visible, camera, local_frame)
        passes.extend(shadow_passes(profile, tables, visible, weights))
        if visible:
            passes.append(opaque_pass(profile, tables, visible, weights, camera))
        if profile.renderer == "deferred":
            passes.append(lighting_pass(profile, tables, segment.zone))
        transparent = transparent_pass(
            profile, tables, kind, segment.zone, local_frame, rng
        )
        if transparent.num_draws:
            passes.append(transparent)
        extra_post = 2 if kind is SegmentKind.CUTSCENE else 0
        passes.append(post_pass(profile, tables, extra_stages=extra_post))
        passes.append(ui_pass(profile, tables, kind, rng))

    metadata = {
        "segment": segment.phase_label,
        "kind": kind.value,
        "zone": segment.zone,
        "local_frame": local_frame,
    }
    return Frame(index=frame_index, passes=tuple(passes), metadata=metadata)
