"""Material, shader, and resource library synthesis for one game.

Builds the id-indexed tables a trace needs: one opaque shader per
material class, the fixed special shaders (depth-only, deferred lighting,
particles, post stages, UI), per-material texture sets, and the render
targets the frame graph binds.  Everything is derived deterministically
from the profile and seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.gfx.enums import TextureFormat
from repro.gfx.resources import RenderTargetDesc, TextureDesc
from repro.gfx.shader import ShaderProgram, ShaderStats
from repro.synth.profiles import GameProfile
from repro.util.rng import make_rng

# Render-target id layout (fixed, per game)
RT_BACKBUFFER = 0
RT_DEPTH = 1
RT_HDR0 = 2
RT_HDR1 = 3
RT_SHADOW_BASE = 10  # RT_SHADOW_BASE + light index
RT_GBUFFER_BASE = 20  # deferred only: 3 MRTs

# Texture id layout
TEX_MATERIAL_BASE = 100  # MATERIAL_ID_STRIDE slots per material class
MATERIAL_ID_STRIDE = 12  # up to MAX_ALBEDO_VARIANTS albedos + normal + spec
MAX_ALBEDO_VARIANTS = 8
TEX_PARTICLE_BASE = 50  # a few shared particle sheets
TEX_RT_ALIAS_BASE = 60  # RT contents sampled by later passes

MAX_SHADOWED_LIGHTS = 3
GBUFFER_TARGET_COUNT = 3


@dataclass(frozen=True)
class SpecialShaders:
    """Fixed-function-role shader ids shared by all materials."""

    depth_only: int
    lighting_directional: int
    lighting_point: int
    particle_additive: int
    particle_alpha: int
    ui: int
    post: Tuple[int, ...]  # one per post-chain stage


@dataclass(frozen=True)
class MaterialTables:
    """All id-indexed tables and the material->resource mappings."""

    shaders: Dict[int, ShaderProgram]
    textures: Dict[int, TextureDesc]
    render_targets: Dict[int, RenderTargetDesc]
    material_shader: Dict[int, int]  # material class -> opaque shader id
    # material class -> per-variant texture bind tuples.  Variants share
    # formats and sizes (so the micro-architecture-independent features
    # cannot tell them apart) but are distinct textures (so the cache can).
    material_texture_sets: Dict[int, Tuple[Tuple[int, ...], ...]]
    zone_materials: Dict[int, Tuple[int, ...]]  # zone -> usable material classes
    special: SpecialShaders
    shadowed_lights: int
    gbuffer_texture_ids: Tuple[int, ...]
    scene_color_texture_id: int

    def material_textures_for(self, material: int, variant: int) -> Tuple[int, ...]:
        """Texture binding of one material variant (wraps the variant index)."""
        variants = self.material_texture_sets[material]
        return variants[variant % len(variants)]


def _pick_texture_size(rng, profile: GameProfile) -> int:
    """A power-of-two size within the profile's range."""
    sizes = []
    size = profile.texture_size_min
    while size <= profile.texture_size_max:
        sizes.append(size)
        size *= 2
    return int(sizes[rng.integers(0, len(sizes))])


def build_tables(profile: GameProfile, seed: int) -> MaterialTables:
    """Synthesize the full shader/texture/render-target world of a game."""
    rng = make_rng(seed, "materials", profile.name)
    shaders: Dict[int, ShaderProgram] = {}
    textures: Dict[int, TextureDesc] = {}
    next_shader = 1

    def add_shader(name: str, vertex: ShaderStats, pixel: ShaderStats) -> int:
        nonlocal next_shader
        sid = next_shader
        next_shader += 1
        shaders[sid] = ShaderProgram(
            shader_id=sid, name=name, vertex=vertex, pixel=pixel
        )
        return sid

    # -- material shaders and textures ------------------------------------
    material_shader: Dict[int, int] = {}
    material_texture_sets: Dict[int, Tuple[Tuple[int, ...], ...]] = {}
    deferred = profile.renderer == "deferred"
    for material in range(profile.material_classes):
        complexity = float(rng.lognormal(mean=0.0, sigma=0.30))
        ps_alu = max(8, round(profile.ps_alu_base * complexity))
        vs_alu = max(6, round(profile.vs_alu_base * (0.8 + 0.4 * rng.random())))
        has_spec = rng.random() < 0.5
        ps_tex = 3 if has_spec else 2
        # Register pressure loosely follows ALU count (compiler behaviour);
        # it is micro-architecture-relevant but NOT a clustering feature.
        ps_regs = min(64, 12 + ps_alu // 4 + int(rng.integers(0, 8)))
        stage_prefix = "gbuffer" if deferred else "forward"
        material_shader[material] = add_shader(
            f"{stage_prefix}/mat{material:02d}",
            vertex=ShaderStats(alu_ops=vs_alu, interpolants=10, registers=20),
            pixel=ShaderStats(
                alu_ops=ps_alu, tex_ops=ps_tex, interpolants=10, registers=ps_regs
            ),
        )
        size = _pick_texture_size(rng, profile)
        base_id = TEX_MATERIAL_BASE + MATERIAL_ID_STRIDE * material
        mip = max(1, size.bit_length() - 2)
        # Albedo variants: same size/format (feature-identical), distinct
        # textures (cache-distinct).  Normal/spec maps are shared.
        num_variants = 2 + int(rng.integers(0, MAX_ALBEDO_VARIANTS - 1))
        for variant in range(num_variants):
            vid = base_id + variant
            textures[vid] = TextureDesc(vid, size, size, TextureFormat.BC1, mip)
        normal_id = base_id + MAX_ALBEDO_VARIANTS
        textures[normal_id] = TextureDesc(
            normal_id, size, size, TextureFormat.BC5, mip
        )
        shared = [normal_id]
        if has_spec:
            spec_id = base_id + MAX_ALBEDO_VARIANTS + 1
            spec = max(profile.texture_size_min, size // 2)
            textures[spec_id] = TextureDesc(
                spec_id, spec, spec, TextureFormat.BC1, max(1, spec.bit_length() - 2)
            )
            shared.append(spec_id)
        material_texture_sets[material] = tuple(
            (base_id + variant, *shared) for variant in range(num_variants)
        )

    # -- zone material subsets ------------------------------------------------
    zone_materials: Dict[int, Tuple[int, ...]] = {}
    all_materials = list(range(profile.material_classes))
    subset_size = max(3, round(0.6 * profile.material_classes))
    for zone in range(profile.num_zones):
        zone_rng = make_rng(seed, "zone-materials", profile.name, zone)
        picked = sorted(
            zone_rng.choice(all_materials, size=subset_size, replace=False).tolist()
        )
        zone_materials[zone] = tuple(int(m) for m in picked)

    # -- special shaders ------------------------------------------------
    special = SpecialShaders(
        depth_only=add_shader(
            "shadow/depth_only",
            vertex=ShaderStats(alu_ops=10, interpolants=1, registers=8),
            pixel=ShaderStats(alu_ops=1, interpolants=1, registers=4),
        ),
        lighting_directional=add_shader(
            "lighting/directional",
            vertex=ShaderStats(alu_ops=4, interpolants=2, registers=6),
            pixel=ShaderStats(alu_ops=90, tex_ops=5, interpolants=2, registers=40),
        ),
        lighting_point=add_shader(
            "lighting/point_volume",
            vertex=ShaderStats(alu_ops=12, interpolants=4, registers=10),
            pixel=ShaderStats(alu_ops=70, tex_ops=4, interpolants=4, registers=36),
        ),
        particle_additive=add_shader(
            "fx/particle_additive",
            vertex=ShaderStats(alu_ops=14, interpolants=6, registers=12),
            pixel=ShaderStats(alu_ops=12, tex_ops=1, interpolants=6, registers=10),
        ),
        particle_alpha=add_shader(
            "fx/particle_alpha",
            vertex=ShaderStats(alu_ops=14, interpolants=6, registers=12),
            pixel=ShaderStats(alu_ops=18, tex_ops=2, interpolants=6, registers=12),
        ),
        ui=add_shader(
            "ui/quad",
            vertex=ShaderStats(alu_ops=4, interpolants=4, registers=6),
            pixel=ShaderStats(alu_ops=6, tex_ops=1, interpolants=4, registers=6),
        ),
        post=tuple(
            add_shader(
                f"post/stage{i}",
                vertex=ShaderStats(alu_ops=3, interpolants=2, registers=4),
                pixel=ShaderStats(
                    alu_ops=16 + 14 * (i % 3),
                    tex_ops=2 + (i % 3),
                    interpolants=2,
                    registers=16,
                ),
            )
            for i in range(profile.post_chain_length)
        ),
    )

    # -- particle sheets (0..2) and the HUD atlas (3) ---------------------------
    for i in range(4):
        tid = TEX_PARTICLE_BASE + i
        textures[tid] = TextureDesc(tid, 256, 256, TextureFormat.BC3, 7)

    # -- render targets and their sampled aliases ------------------------------
    render_targets: Dict[int, RenderTargetDesc] = {
        RT_BACKBUFFER: RenderTargetDesc(
            RT_BACKBUFFER, profile.width, profile.height, TextureFormat.RGBA8
        ),
        RT_DEPTH: RenderTargetDesc(
            RT_DEPTH, profile.width, profile.height, TextureFormat.DEPTH24S8
        ),
        RT_HDR0: RenderTargetDesc(
            RT_HDR0, profile.width, profile.height, TextureFormat.RGBA16F
        ),
        RT_HDR1: RenderTargetDesc(
            RT_HDR1, profile.width // 2, profile.height // 2, TextureFormat.RGBA16F
        ),
    }
    shadowed = min(profile.num_lights, MAX_SHADOWED_LIGHTS)
    for light in range(shadowed):
        rid = RT_SHADOW_BASE + light
        render_targets[rid] = RenderTargetDesc(
            rid,
            profile.shadow_map_size,
            profile.shadow_map_size,
            TextureFormat.DEPTH32F,
        )
    gbuffer_texture_ids: List[int] = []
    if deferred:
        gbuffer_formats = (
            TextureFormat.RGBA8,
            TextureFormat.RGBA8,
            TextureFormat.RGB10A2,
        )
        for i, fmt in enumerate(gbuffer_formats):
            rid = RT_GBUFFER_BASE + i
            render_targets[rid] = RenderTargetDesc(
                rid, profile.width, profile.height, fmt
            )
            tid = TEX_RT_ALIAS_BASE + i
            textures[tid] = TextureDesc(tid, profile.width, profile.height, fmt)
            gbuffer_texture_ids.append(tid)
    scene_color_tid = TEX_RT_ALIAS_BASE + 5
    textures[scene_color_tid] = TextureDesc(
        scene_color_tid, profile.width, profile.height, TextureFormat.RGBA16F
    )

    return MaterialTables(
        shaders=shaders,
        textures=textures,
        render_targets=render_targets,
        material_shader=material_shader,
        material_texture_sets=material_texture_sets,
        zone_materials=zone_materials,
        special=special,
        shadowed_lights=shadowed,
        gbuffer_texture_ids=tuple(gbuffer_texture_ids),
        scene_color_texture_id=scene_color_tid,
    )
