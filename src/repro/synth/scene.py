"""Scene population: the objects living in each level zone.

Objects are drawn from a small set of mesh classes (game assets are
heavily reused), each bound to one material class from the zone's
palette.  This reuse is the source of the intra-frame draw-call
redundancy the paper's clustering exploits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.synth.materials import MaterialTables
from repro.synth.profiles import GameProfile
from repro.util.rng import make_rng, stable_unit


@dataclass(frozen=True)
class SceneObject:
    """One renderable object instance in a zone."""

    object_id: int
    zone: int
    mesh_vertices: int
    material: int
    texture_variant: int  # which albedo variant of the material it binds
    size_weight: float  # relative on-screen area when visible
    caster: bool  # casts into shadow maps
    anim_phase: float  # phase offset for per-frame coverage wobble

    @property
    def visibility_key(self) -> float:
        """Stable per-object threshold deciding visibility vs camera."""
        return stable_unit("visibility", self.zone, self.object_id)


def mesh_class_vertices(profile: GameProfile) -> Tuple[int, ...]:
    """Vertex counts of the game's mesh classes (geometric ladder).

    Spans props (~60 verts) to hero meshes (~9000), matching the
    long-tailed geometry distributions of real titles.
    """
    lo, hi = 60.0, 9000.0
    n = profile.mesh_classes
    if n == 1:
        return (int(lo),)
    ratio = (hi / lo) ** (1.0 / (n - 1))
    return tuple(int(round(lo * ratio**i)) for i in range(n))


def build_zone(
    profile: GameProfile, tables: MaterialTables, zone: int, seed: int
) -> List[SceneObject]:
    """Populate one zone with objects, deterministically from the seed."""
    if not 0 <= zone < profile.num_zones:
        raise ValueError(
            f"zone {zone} out of range [0, {profile.num_zones}) for "
            f"profile {profile.name!r}"
        )
    rng = make_rng(seed, "scene", profile.name, zone)
    mesh_verts = mesh_class_vertices(profile)
    palette = tables.zone_materials[zone]
    objects: List[SceneObject] = []
    for object_id in range(profile.objects_per_zone):
        # Small props dominate; hero meshes are rare (zipf-ish class pick).
        rank = rng.zipf(1.4)
        mesh_class = min(len(mesh_verts) - 1, int(rank) - 1)
        # Every asset is an individual: jitter around its class's budget.
        verts = max(3, round(mesh_verts[mesh_class] * rng.lognormal(0.0, 0.35)))
        material = int(palette[rng.integers(0, len(palette))])
        # On-screen area grows sub-linearly with geometric detail.
        size = (verts**0.6) * float(rng.lognormal(mean=0.0, sigma=0.45))
        objects.append(
            SceneObject(
                object_id=object_id,
                zone=zone,
                mesh_vertices=verts,
                material=material,
                texture_variant=int(rng.integers(0, 64)),
                size_weight=size,
                caster=bool(rng.random() < profile.shadow_caster_fraction),
                anim_phase=float(rng.random()),
            )
        )
    return objects


def visible_objects(
    objects: List[SceneObject], visibility_fraction: float
) -> List[SceneObject]:
    """Objects on screen at a given camera visibility fraction.

    Each object has a stable threshold, so small changes in the fraction
    churn only the boundary objects — consecutive frames see almost the
    same set, the way a slowly moving camera does.
    """
    if not 0.0 <= visibility_fraction <= 1.0:
        raise ValueError(
            f"visibility_fraction must be in [0, 1], got {visibility_fraction}"
        )
    return [o for o in objects if o.visibility_key < visibility_fraction]


def coverage_factor(obj: SceneObject, local_frame: int, wobble: float = 0.18) -> float:
    """Per-frame multiplier on an object's screen area.

    A smooth pseudo-orbit: each object's area breathes sinusoidally with
    its own phase as the camera tracks through the zone.
    """
    angle = 2.0 * math.pi * (local_frame / 48.0 + obj.anim_phase)
    return 1.0 + wobble * math.sin(angle)
