"""Synthetic game-workload generation.

Substitutes for the paper's proprietary game traces (DESIGN.md section 2).
A :class:`~repro.synth.profiles.GameProfile` describes a game's rendering
architecture and content statistics; :class:`~repro.synth.generator.TraceGenerator`
expands it — deterministically from a seed — into a full
:class:`~repro.gfx.trace.Trace` with:

- engine-realistic frame structure (shadow maps, G-buffer or forward
  opaque, lighting, transparents, post-processing chain, HUD);
- heavy intra-frame draw redundancy (many instances of few material and
  mesh classes), which is what makes per-frame clustering effective;
- segment-scripted inter-frame phase structure (menu, explore, combat,
  cutscene, vista over a handful of level zones), which is what
  shader-vector phase detection extracts.

Ground-truth segment boundaries are recorded in ``trace.metadata`` so
phase-detection quality can be evaluated against them.
"""

from repro.synth.generator import TraceGenerator, generate_trace
from repro.synth.phasescript import PhaseScript, Segment, SegmentKind
from repro.synth.profiles import GameProfile

__all__ = [
    "GameProfile",
    "PhaseScript",
    "Segment",
    "SegmentKind",
    "TraceGenerator",
    "generate_trace",
]
