"""Shared utilities: seeded RNG, statistics, tables, validation helpers."""

from repro.util.rng import derive_seed, make_rng
from repro.util.stats import (
    geometric_mean,
    mean_absolute_percentage_error,
    pearson_correlation,
    spearman_correlation,
    summarize,
)
from repro.util.tables import format_table
from repro.util.validation import (
    check_fraction,
    check_in,
    check_nonnegative,
    check_positive,
    check_type,
)

__all__ = [
    "derive_seed",
    "make_rng",
    "geometric_mean",
    "mean_absolute_percentage_error",
    "pearson_correlation",
    "spearman_correlation",
    "summarize",
    "format_table",
    "check_fraction",
    "check_in",
    "check_nonnegative",
    "check_positive",
    "check_type",
]
