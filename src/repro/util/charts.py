"""Plain-text charts for figure-style experiment output.

The paper's evaluation has figures as well as tables; these renderers
draw them in a terminal: horizontal bar charts for per-category values
and multi-series line charts for trends (e.g. the E3 error/efficiency
trade-off or the E6 improvement curves).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import ValidationError

_SERIES_GLYPHS = "*o+x#@%&"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValidationError(
            f"{len(labels)} labels but {len(values)} values"
        )
    if not labels:
        raise ValidationError("bar_chart needs at least one row")
    if width < 5:
        raise ValidationError(f"width must be >= 5, got {width}")
    peak = max(values)
    if peak < 0:
        raise ValidationError("bar_chart requires non-negative values")
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        if value < 0:
            raise ValidationError(f"negative value for {label!r}")
        bar = "#" * (round(width * value / peak) if peak > 0 else 0)
        lines.append(f"{label.ljust(label_width)} |{bar} {value:g}{unit}")
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    title: str = "",
) -> str:
    """Multi-series line (scatter) chart on a character grid.

    Each series gets a glyph; a legend follows the plot.  Intended for
    monotone curves with a handful of points (sweep outputs), not dense
    signals.
    """
    if not series:
        raise ValidationError("line_chart needs at least one series")
    if width < 10 or height < 4:
        raise ValidationError("line_chart needs width >= 10 and height >= 4")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValidationError(
                f"series {name!r} has {len(ys)} points for {len(xs)} xs"
            )
    if len(xs) < 2:
        raise ValidationError("line_chart needs at least two x points")

    all_y = [y for ys in series.values() for y in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        raise ValidationError("x values must not all be equal")

    grid = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(series.items()):
        glyph = _SERIES_GLYPHS[index % len(_SERIES_GLYPHS)]
        for x, y in zip(xs, ys):
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = [title] if title else []
    lines.append(f"{y_hi:>10.3g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_lo:>10.3g} +" + "-" * width)
    lines.append(
        " " * 12 + f"{x_lo:<10.4g}" + " " * max(0, width - 20) + f"{x_hi:>10.4g}"
    )
    legend = "   ".join(
        f"{_SERIES_GLYPHS[i % len(_SERIES_GLYPHS)]} = {name}"
        for i, name in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)
