"""Argument-validation helpers.

Public constructors across the library validate eagerly and raise
:class:`~repro.errors.ValidationError` with messages that name the offending
argument, so user mistakes fail at the boundary instead of deep inside a
simulation.
"""

from __future__ import annotations

from typing import Collection

from repro.errors import ValidationError


def check_type(name: str, value: object, expected: type) -> None:
    """Raise unless ``value`` is an instance of ``expected``.

    ``bool`` is rejected where an int is expected, since ``True`` silently
    behaving as ``1`` hides bugs in counts and seeds.
    """
    if expected is int and isinstance(value, bool):
        raise ValidationError(f"{name} must be int, got bool")
    if not isinstance(value, expected):
        raise ValidationError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )


def check_positive(name: str, value: float) -> None:
    """Raise unless ``value`` is a finite number > 0."""
    _check_real(name, value)
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Raise unless ``value`` is a finite number >= 0."""
    _check_real(name, value)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")


def check_fraction(name: str, value: float, inclusive: bool = True) -> None:
    """Raise unless ``value`` lies in [0, 1] (or (0, 1) when not inclusive)."""
    _check_real(name, value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValidationError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not 0.0 < value < 1.0:
            raise ValidationError(f"{name} must be in (0, 1), got {value!r}")


def check_in(name: str, value: object, allowed: Collection[object]) -> None:
    """Raise unless ``value`` is one of ``allowed``."""
    if value not in allowed:
        choices = ", ".join(sorted(repr(a) for a in allowed))
        raise ValidationError(f"{name} must be one of {choices}, got {value!r}")


def _check_real(name: str, value: float) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(
            f"{name} must be a number, got {type(value).__name__}"
        )
    if value != value or value in (float("inf"), float("-inf")):
        raise ValidationError(f"{name} must be finite, got {value!r}")
