"""Argument-validation helpers.

Public constructors across the library validate eagerly and raise
:class:`~repro.errors.ValidationError` with messages that name the offending
argument, so user mistakes fail at the boundary instead of deep inside a
simulation.

For request-shaped inputs (CLI parameter bundles, service API payloads)
the structured layer below — :class:`FieldError`,
:class:`FieldValidationError`, and :class:`FieldErrors` — collects *every*
bad field with its dotted path instead of stopping at the first one-line
``ValueError``.  The CLI renders the list as one line per field; the
service API returns it verbatim as a 422 body.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Collection,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ReproError, ValidationError


@dataclass(frozen=True)
class FieldError:
    """One rejected field: its dotted path and what was wrong with it."""

    field_path: str
    message: str

    def as_dict(self) -> Dict[str, str]:
        return {"field_path": self.field_path, "message": self.message}


class FieldValidationError(ValidationError):
    """A request failed validation on one or more named fields.

    ``errors`` carries the structured list; ``str()`` renders a compact
    multi-field summary so callers that only print the exception still
    name every offending field.
    """

    def __init__(self, errors: Sequence[FieldError]) -> None:
        self.errors: Tuple[FieldError, ...] = tuple(errors)
        if not self.errors:
            raise ValueError("FieldValidationError needs at least one error")
        summary = "; ".join(
            f"{e.field_path}: {e.message}" for e in self.errors
        )
        super().__init__(f"invalid field(s): {summary}")

    def as_payload(self) -> List[Dict[str, str]]:
        """The JSON-safe ``[{field_path, message}, ...]`` list."""
        return [e.as_dict() for e in self.errors]


class FieldErrors:
    """Accumulator for :class:`FieldError` entries.

    ``collect(path, fn, *args)`` runs one of the ``check_*`` helpers (or
    any validator raising :class:`ValidationError`) and records the
    failure under ``path`` instead of propagating, so a caller can
    validate every field before reporting.  ``raise_if_any()`` turns the
    collected list into one :class:`FieldValidationError`.
    """

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._errors: List[FieldError] = []

    def _path(self, field_path: str) -> str:
        if self.prefix and field_path:
            return f"{self.prefix}.{field_path}"
        return self.prefix or field_path

    def add(self, field_path: str, message: str) -> None:
        self._errors.append(FieldError(self._path(field_path), message))

    def extend(self, error: FieldValidationError) -> None:
        """Fold a nested :class:`FieldValidationError` in, re-prefixed."""
        for entry in error.errors:
            self.add(entry.field_path, entry.message)

    def collect(
        self,
        field_path: str,
        check: Callable[..., Any],
        *args: Any,
        **kwargs: Any,
    ) -> bool:
        """Run ``check`` and record a failure under ``field_path``.

        Returns ``True`` when the check passed.  The check's own
        message usually repeats the field name; the leading
        ``"<name> "``/``"<name>."`` prefix is stripped so the rendered
        ``field_path: message`` pair doesn't say the name twice.
        """
        try:
            check(*args, **kwargs)
        except ReproError as exc:
            self.add(field_path, _strip_name_prefix(str(exc), field_path))
            return False
        return True

    @property
    def errors(self) -> Tuple[FieldError, ...]:
        return tuple(self._errors)

    def __bool__(self) -> bool:
        return bool(self._errors)

    def raise_if_any(self) -> None:
        if self._errors:
            raise FieldValidationError(self._errors)


def _strip_name_prefix(message: str, field_path: str) -> str:
    """Drop a leading ``<name> `` the ``check_*`` helpers bake in."""
    leaf = field_path.rsplit(".", 1)[-1]
    for candidate in (field_path, leaf):
        if candidate and message.startswith(candidate + " "):
            return message[len(candidate) + 1:]
    return message


def build_dataclass(
    cls: type,
    overrides: Mapping[str, Any],
    *,
    base: Optional[Any] = None,
    path: str = "",
) -> Any:
    """Construct dataclass ``cls`` from a mapping, with field-path errors.

    Unknown keys and per-field constructor rejections (``__post_init__``
    validation) are reported together as one
    :class:`FieldValidationError`, each entry pathed ``<path>.<field>``.
    ``base`` supplies defaults via :func:`dataclasses.replace`; without
    it the class defaults apply.

    Attribution works by applying overrides one at a time: the field
    whose lone application raises is the field that is wrong, which
    turns e.g. ``GpuConfig.tex_cache_kb must be int, got str`` into a
    structured ``config.tex_cache_kb`` entry instead of a one-line
    ``ValueError`` that names nothing a client can act on.
    """
    if not dataclasses.is_dataclass(cls):
        raise ValueError(f"{cls!r} is not a dataclass")
    errors = FieldErrors(prefix=path)
    known = {f.name: f for f in dataclasses.fields(cls) if f.init}
    clean: Dict[str, Any] = {}
    template = base if base is not None else _dataclass_defaults(cls)
    for name in sorted(overrides):
        if name not in known:
            choices = ", ".join(sorted(known))
            errors.add(name, f"unknown field (known fields: {choices})")
            continue
        value = overrides[name]
        if template is None:
            # No default instance to probe against; defer to the final
            # construction below (errors attribute to the bundle).
            clean[name] = value
            continue
        try:
            dataclasses.replace(template, **{name: value})
            clean[name] = value
        except ReproError as exc:
            errors.add(
                name, _strip_name_prefix(str(exc), f"{cls.__name__}.{name}")
            )
        except (TypeError, ValueError) as exc:
            errors.add(name, str(exc))
    errors.raise_if_any()
    try:
        if template is not None:
            return dataclasses.replace(template, **clean)
        return cls(**clean)
    except (ReproError, TypeError, ValueError) as exc:
        # A cross-field rejection none of the lone applications caught.
        errors.add("", str(exc))
        errors.raise_if_any()
        raise AssertionError("unreachable")  # pragma: no cover


def _dataclass_defaults(cls: type) -> Optional[Any]:
    """A default-constructed instance, or ``None`` if fields are required."""
    try:
        return cls()
    except TypeError:
        return None


def check_type(name: str, value: object, expected: type) -> None:
    """Raise unless ``value`` is an instance of ``expected``.

    ``bool`` is rejected where an int is expected, since ``True`` silently
    behaving as ``1`` hides bugs in counts and seeds.
    """
    if expected is int and isinstance(value, bool):
        raise ValidationError(f"{name} must be int, got bool")
    if not isinstance(value, expected):
        raise ValidationError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )


def check_positive(name: str, value: float) -> None:
    """Raise unless ``value`` is a finite number > 0."""
    _check_real(name, value)
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Raise unless ``value`` is a finite number >= 0."""
    _check_real(name, value)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")


def check_fraction(name: str, value: float, inclusive: bool = True) -> None:
    """Raise unless ``value`` lies in [0, 1] (or (0, 1) when not inclusive)."""
    _check_real(name, value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValidationError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not 0.0 < value < 1.0:
            raise ValidationError(f"{name} must be in (0, 1), got {value!r}")


def check_in(name: str, value: object, allowed: Collection[object]) -> None:
    """Raise unless ``value`` is one of ``allowed``."""
    if value not in allowed:
        choices = ", ".join(sorted(repr(a) for a in allowed))
        raise ValidationError(f"{name} must be one of {choices}, got {value!r}")


def _check_real(name: str, value: float) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(
            f"{name} must be a number, got {type(value).__name__}"
        )
    if value != value or value in (float("inf"), float("-inf")):
        raise ValidationError(f"{name} must be finite, got {value!r}")
