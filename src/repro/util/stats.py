"""Small statistics toolkit used by the metrics and analysis layers.

Implemented directly on numpy (no scipy dependency in the library proper)
so the core package runs anywhere numpy does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ValidationError


def _as_1d(values: Sequence[float], name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite values")
    return arr


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson product-moment correlation coefficient of two sequences.

    Raises :class:`ValidationError` on mismatched lengths, fewer than two
    points, or a zero-variance input (where the coefficient is undefined).
    """
    x = _as_1d(xs, "xs")
    y = _as_1d(ys, "ys")
    if x.size != y.size:
        raise ValidationError(f"length mismatch: {x.size} vs {y.size}")
    if x.size < 2:
        raise ValidationError("correlation needs at least two points")
    xd = x - x.mean()
    yd = y - y.mean()
    denom = math.sqrt(float(xd @ xd) * float(yd @ yd))
    if denom == 0.0:
        raise ValidationError("correlation undefined for zero-variance input")
    return float(xd @ yd) / denom


def _rank(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with ties sharing their mean rank."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=float)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        mean_rank = (i + j) / 2.0 + 1.0
        ranks[order[i : j + 1]] = mean_rank
        i = j + 1
    return ranks


def spearman_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson correlation of ranks)."""
    x = _as_1d(xs, "xs")
    y = _as_1d(ys, "ys")
    if x.size != y.size:
        raise ValidationError(f"length mismatch: {x.size} vs {y.size}")
    return pearson_correlation(_rank(x), _rank(y))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    arr = _as_1d(values, "values")
    if np.any(arr <= 0):
        raise ValidationError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def mean_absolute_percentage_error(
    actual: Sequence[float], predicted: Sequence[float]
) -> float:
    """Mean |predicted - actual| / actual, as a fraction (0.01 == 1%)."""
    a = _as_1d(actual, "actual")
    p = _as_1d(predicted, "predicted")
    if a.size != p.size:
        raise ValidationError(f"length mismatch: {a.size} vs {p.size}")
    if np.any(a == 0):
        raise ValidationError("actual values must be non-zero")
    return float(np.mean(np.abs(p - a) / np.abs(a)))


@dataclass(frozen=True)
class MannWhitneyResult:
    """Mann–Whitney U test result for two independent samples."""

    u_statistic: float
    p_value: float
    n_x: int
    n_y: int

    def as_dict(self) -> dict:
        return {
            "u_statistic": self.u_statistic,
            "p_value": self.p_value,
            "n_x": self.n_x,
            "n_y": self.n_y,
        }


def mann_whitney_u(
    xs: Sequence[float],
    ys: Sequence[float],
    alternative: str = "two-sided",
) -> MannWhitneyResult:
    """Mann–Whitney U rank-sum test (normal approximation, tie-corrected).

    ``u_statistic`` is the U of the first sample (``xs``): the number of
    ``(x, y)`` pairs with ``x > y``, ties counting half.  The p-value
    uses the normal approximation with a continuity correction and the
    standard tie correction to the variance; for the window sizes the
    regression gates use (a handful of runs per side) the approximation
    is deliberately conservative rather than exact.

    ``alternative`` is ``"two-sided"``, ``"greater"`` (xs stochastically
    larger than ys), or ``"less"``.
    """
    if alternative not in ("two-sided", "greater", "less"):
        raise ValidationError(
            f"alternative must be 'two-sided', 'greater', or 'less', "
            f"got {alternative!r}"
        )
    x = _as_1d(xs, "xs")
    y = _as_1d(ys, "ys")
    n_x, n_y = int(x.size), int(y.size)
    combined = np.concatenate([x, y])
    ranks = _rank(combined)
    rank_sum_x = float(ranks[:n_x].sum())
    u_x = rank_sum_x - n_x * (n_x + 1) / 2.0

    mean_u = n_x * n_y / 2.0
    n = n_x + n_y
    # Tie correction: sum over tie groups of (t^3 - t).
    _, tie_counts = np.unique(combined, return_counts=True)
    tie_term = float(np.sum(tie_counts.astype(float) ** 3 - tie_counts))
    variance = (n_x * n_y / 12.0) * ((n + 1) - tie_term / (n * (n - 1)))
    if variance <= 0.0:
        # Every value identical: no evidence of a shift either way.
        p = 1.0
    else:
        sd = math.sqrt(variance)
        # Continuity correction of 0.5 toward the mean.
        if alternative == "greater":
            z = (u_x - mean_u - 0.5) / sd
            p = 1.0 - _normal_cdf(z)
        elif alternative == "less":
            z = (u_x - mean_u + 0.5) / sd
            p = _normal_cdf(z)
        else:
            z = (abs(u_x - mean_u) - 0.5) / sd
            p = 2.0 * (1.0 - _normal_cdf(max(z, 0.0)))
    return MannWhitneyResult(
        u_statistic=float(u_x),
        p_value=float(min(max(p, 0.0), 1.0)),
        n_x=n_x,
        n_y=n_y,
    )


def _normal_cdf(z: float) -> float:
    """Standard normal CDF via the error function."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "median": self.median,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a non-empty sequence of finite floats."""
    arr = _as_1d(values, "values")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )
