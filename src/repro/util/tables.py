"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report; this
module renders them as aligned ascii tables so the output is readable in a
terminal and diffable in CI logs.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ascii table.

    Floats are rendered with ``precision`` decimal places; booleans as
    yes/no.  Returns the table as a single string (no trailing newline).
    """
    str_rows = [[_format_cell(v, precision) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[j]) for j, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
