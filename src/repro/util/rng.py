"""Deterministic random-number helpers.

All randomness in the library flows through explicit integer seeds.  A
top-level seed is *derived* into per-component seeds with a stable hash so
that, for example, regenerating only frame 17 of a synthetic trace yields
exactly the bytes it had inside a full-trace generation.
"""

from __future__ import annotations

import hashlib

import numpy as np

_SEED_MODULUS = 2**63 - 1


def derive_seed(base_seed: int, *components: object) -> int:
    """Derive a child seed from ``base_seed`` and a path of components.

    The derivation is a SHA-256 over the textual path, so it is stable
    across processes, platforms, and Python versions (unlike ``hash()``).

    >>> derive_seed(1, "frame", 3) == derive_seed(1, "frame", 3)
    True
    >>> derive_seed(1, "frame", 3) != derive_seed(1, "frame", 4)
    True
    """
    if not isinstance(base_seed, int):
        raise TypeError(f"base_seed must be int, got {type(base_seed).__name__}")
    text = repr((base_seed,) + tuple(str(c) for c in components))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_MODULUS


def make_rng(base_seed: int, *components: object) -> np.random.Generator:
    """Return a numpy ``Generator`` seeded from a derived seed."""
    return np.random.default_rng(derive_seed(base_seed, *components))


def spawn_worker_seed(base_seed: int, *components: object) -> int:
    """Child seed for one unit of parallel work.

    Parallel execution (``repro.runtime``) must produce the same numbers
    as a serial run regardless of worker count or completion order, so a
    task's seed is derived from its *identity* (kind, indices) — never
    from the worker id or the order tasks happen to finish in.

    >>> spawn_worker_seed(0, "simulate", 3) == spawn_worker_seed(0, "simulate", 3)
    True
    >>> spawn_worker_seed(0, "simulate", 3) != spawn_worker_seed(0, "simulate", 4)
    True
    """
    return derive_seed(base_seed, "worker", *components)


def stable_hash(*components: object) -> int:
    """A process-stable 63-bit hash of the given components.

    Used for deterministic pseudo-random perturbations keyed by identity
    (e.g. a per-draw-call 'unmodeled micro-architecture effect') without
    consuming any RNG stream state.
    """
    text = repr(tuple(str(c) for c in components))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_MODULUS


def stable_unit(*components: object) -> float:
    """A deterministic float in [0, 1) keyed by the given components."""
    return stable_hash(*components) / float(_SEED_MODULUS)
