"""Job executor: drains the persistent queue through the runtime engine.

Worker threads pull job ids off an in-process queue, load the persisted
record, and run the named work through :class:`~repro.runtime.engine.Runtime`
— the same engine the CLI uses, so service jobs get the artifact cache,
process-pool parallelism, and observability for free.

Deduplication is two-level, both content-addressed on
:meth:`~repro.service.specs.JobSpec.job_key`:

* **In-flight coalescing** — a submission whose key matches a queued or
  running job becomes a *follower*: it gets its own persisted record
  (``coalesced_with`` naming the primary) but is never enqueued; when
  the primary finishes, its outcome is copied onto every follower.  Two
  concurrent identical submissions therefore cost one computation.
* **Warm artifacts** — a submission whose twin already *completed* runs
  again, but every simulation artifact is already in the
  content-addressed cache, so the rerun is pure cache hits (visible as
  ``counter:cache_hits`` in the job's metrics with no new
  ``frames_simulated``).

Each finished job appends a run record through the shared
:func:`~repro.obs.history.record_run` hook (command ``service:<kind>``),
so ``repro runs regress`` and ``repro trace report`` gate service
traffic exactly like CLI traffic.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ReproError, ValidationError
from repro.obs.history import flatten_metrics, record_run
from repro.obs.metrics import Metrics
from repro.obs.spans import NULL_TRACER
from repro.runtime.cache import ArtifactCache, NullCache
from repro.runtime.engine import Runtime
from repro.runtime.telemetry import Telemetry
from repro.service.events import EventBus
from repro.service.jobs import JobRecord, JobStore, new_job
from repro.service.specs import JobSpec

#: Default bound on jobs waiting to run (primaries only; followers and
#: running jobs don't occupy queue slots).
DEFAULT_QUEUE_LIMIT = 64


class QueueFullError(ReproError):
    """The job queue is at capacity; the API maps this to 429."""


class JobConflictError(ReproError):
    """The requested transition is illegal for the job's current state."""


class _JobProgress:
    """Progress sink mirroring engine callbacks into the job record.

    Implements the reporter interface the task engine drives (``begin``
    / ``task_done`` / ``heartbeat`` / ``finish``) and forwards the
    counts into the job's persisted ``progress`` dict (throttled — at
    most one store write per second) plus live service gauges, so a
    client polling ``GET /v1/jobs/{id}`` watches the run move.
    """

    #: The engine only heartbeats when a progress sink asks for it.
    heartbeat_interval_s: Optional[float] = None

    _WRITE_INTERVAL_S = 1.0

    def __init__(
        self,
        store: JobStore,
        record: JobRecord,
        metrics: Metrics,
        events: Optional[EventBus] = None,
    ) -> None:
        self._store = store
        self._record = record
        self._metrics = metrics
        self._events = events
        self._last_write = 0.0

    def begin(self, total: int) -> None:
        self._update(0, total, 0, force=True)

    def task_done(self, done: int, total: int, frames: int) -> None:
        self._update(done, total, frames)

    def heartbeat(self, done: int, total: int, frames: int) -> None:
        self._update(done, total, frames)

    def finish(self, done: int, total: int, frames: int) -> None:
        self._update(done, total, frames, force=True)

    def _update(
        self, done: int, total: int, frames: int, force: bool = False
    ) -> None:
        self._record.progress = {
            "tasks_done": float(done),
            "tasks_total": float(total),
            "frames_simulated": float(frames),
        }
        self._metrics.gauge(
            "service_job_tasks_done", done, job=self._record.job_id
        )
        now = time.monotonic()
        if force or now - self._last_write >= self._WRITE_INTERVAL_S:
            self._last_write = now
            self._store.update(self._record)
            # Progress events ride the store-write throttle, so the SSE
            # stream sees at most one gauge per second per job too.
            if self._events is not None:
                self._events.publish(
                    "progress",
                    job_id=self._record.job_id,
                    kind=self._record.kind,
                    tasks_done=float(done),
                    tasks_total=float(total),
                    frames_simulated=float(frames),
                )


class JobExecutor:
    """Owns the worker pool, the in-flight index, and job execution.

    ``workers`` sets service-level concurrency (jobs running at once);
    ``sim_jobs`` is forwarded to each job's :class:`Runtime` and sets
    simulation-level parallelism within a job.  ``cache_dir=None``
    disables the artifact cache (tests that must simulate every time);
    the common configuration points every job at one shared directory so
    identical work re-submitted later is all cache hits.
    """

    def __init__(
        self,
        store: JobStore,
        *,
        workers: int = 1,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        sim_jobs: Union[int, str] = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        run_store: Optional[Union[str, Path]] = None,
        metrics: Optional[Metrics] = None,
        tracer: Optional[Any] = None,
        events: Optional[EventBus] = None,
    ) -> None:
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ValidationError(f"workers must be an int >= 1, got {workers!r}")
        if (
            not isinstance(queue_limit, int)
            or isinstance(queue_limit, bool)
            or queue_limit < 1
        ):
            raise ValidationError(
                f"queue_limit must be an int >= 1, got {queue_limit!r}"
            )
        self.store = store
        self.workers = workers
        self.queue_limit = queue_limit
        self.sim_jobs = sim_jobs
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.run_store = run_store
        self.metrics = metrics if metrics is not None else Metrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Typed push channel for /v1/events; every lifecycle transition
        #: below also lands here.  Always present so callers can
        #: subscribe without None-guards; fan-out to zero subscribers
        #: is a no-op.
        self.events = events if events is not None else EventBus()
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._lock = threading.Lock()
        #: job_key -> primary job id, for queued/running jobs only.
        self._inflight: Dict[str, str] = {}
        #: primary job id -> follower job ids awaiting its outcome.
        self._followers: Dict[str, List[str]] = {}
        self._queued_count = 0
        #: job_id -> sidecar sections produced by the job body, held
        #: until _finish hands them to record_run (worker-local handoff;
        #: written and popped on the same worker thread).
        self._pending_artifacts: Dict[str, Dict[str, Any]] = {}
        self._threads: List[threading.Thread] = []
        self._started = False
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> Dict[str, List[str]]:
        """Recover the store, re-enqueue survivors, start the workers.

        Returns ``{"requeued": [...], "interrupted": [...]}`` — what the
        crash-recovery pass did, for the server's startup log line.
        """
        if self._started:
            raise ValidationError("executor already started")
        self._started = True
        requeued, interrupted = self.store.recover()
        # Scan the backlog before taking the lock and persist any
        # coalescing rewrites after releasing it: the store scan and
        # updates are file I/O, and the critical section must stay
        # in-memory (CONC003).  Deferring the writes is safe because the
        # workers that would read these records start further down.
        backlog = self.store.records(state="queued")
        rewrites: List[JobRecord] = []
        with self._lock:
            for record in backlog:
                if self._inflight.get(record.job_key) == record.job_id:
                    # Already indexed (submitted to this executor before
                    # start); don't enqueue it twice.
                    continue
                if record.coalesced_with is not None:
                    primary = self._inflight.get(record.job_key)
                    if primary is not None:
                        siblings = self._followers.setdefault(primary, [])
                        if record.job_id not in siblings:
                            record.coalesced_with = primary
                            rewrites.append(record)
                            siblings.append(record.job_id)
                        continue
                    # The primary finished (or vanished) while we were
                    # down: run the follower itself.
                    record.coalesced_with = None
                    rewrites.append(record)
                self._inflight[record.job_key] = record.job_id
                self._queued_count += 1
                self._queue.put(record.job_id)
        for record in rewrites:
            self.store.update(record)
        self._set_depth_gauges()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-job-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return {
            "requeued": [r.job_id for r in requeued],
            "interrupted": [r.job_id for r in interrupted],
        }

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting work and join the workers.

        Jobs already running finish; jobs still queued stay ``queued``
        in the store and are picked up by the next boot's recovery scan.
        """
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout)

    def join_idle(self, timeout: float = 60.0, poll_s: float = 0.02) -> bool:
        """Block until no job is queued or running (tests; best-effort)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._inflight:
                    return True
            time.sleep(poll_s)
        return False

    # -- submission --------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Persist and enqueue ``spec``; returns the new record.

        A spec matching an in-flight job comes back as a follower record
        (``coalesced_with`` set) that will receive the primary's outcome
        without computing anything.  Raises :class:`QueueFullError` when
        ``queue_limit`` primaries are already waiting.
        """
        job_key = spec.job_key()
        with self._lock:
            if self._stopping:
                raise ValidationError("service is shutting down")
            self.metrics.inc("service_jobs_submitted", kind=spec.kind)
            primary_id = self._inflight.get(job_key)
            if primary_id is not None:
                record = new_job(job_key, spec.kind, spec.canonical())
                record.coalesced_with = primary_id
                # Persisting under the lock is deliberate: the record
                # create and the follower-index insert must be atomic,
                # or a primary finishing in between would miss this
                # follower.  The write is one small exclusive-create
                # JSON file — bounded, unlike a store scan.
                self.store.create(record)  # repro: noqa[CONC003]
                self._followers.setdefault(primary_id, []).append(
                    record.job_id
                )
                self.metrics.inc("service_jobs_coalesced", kind=spec.kind)
                self._publish_job(record)
                return record
            if self._queued_count >= self.queue_limit:
                self.metrics.inc("service_jobs_rejected", reason="queue_full")
                raise QueueFullError(
                    f"job queue is full ({self.queue_limit} waiting); "
                    "retry after a job completes"
                )
            record = new_job(job_key, spec.kind, spec.canonical())
            # Same atomicity argument: create + in-flight index insert
            # must serialize against an identical racing submission, or
            # two primaries for one job_key would both run.
            self.store.create(record)  # repro: noqa[CONC003]
            self._inflight[job_key] = record.job_id
            self._queued_count += 1
            self._queue.put(record.job_id)
        self._set_depth_gauges()
        self._publish_job(record)
        return record

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job (idempotent for already-cancelled ones).

        Running jobs cannot be cancelled (no preemption across the
        engine boundary) — that raises :class:`JobConflictError`, as
        does cancelling any other terminal state.  Cancelling a primary
        with followers promotes the first follower to primary so the
        shared computation still happens for the submitters that still
        want it.
        """
        with self._lock:
            # The whole read-check-transition must hold the lock so a
            # worker can't move the job to running between our state
            # check and the cancelled write; the store I/O here is one
            # record's file, not a scan.
            record = self.store.resolve(job_id)  # repro: noqa[CONC003]
            if record.state == "cancelled":
                return record
            if record.state != "queued":
                raise JobConflictError(
                    f"job {record.job_id} is {record.state}; only queued "
                    "jobs can be cancelled"
                )
            record.state = "cancelled"
            record.finished_unix = time.time()
            self.store.update(record)  # repro: noqa[CONC003]
            self.metrics.inc("service_jobs_completed", state="cancelled")
            if record.coalesced_with is not None:
                # A follower: just detach it from its primary.
                siblings = self._followers.get(record.coalesced_with, [])
                if record.job_id in siblings:
                    siblings.remove(record.job_id)
            else:
                # A primary: its queue slot frees up when the worker
                # skips the cancelled record; promote a follower now so
                # the remaining submitters still get their result.
                self._inflight.pop(record.job_key, None)
                followers = self._followers.pop(record.job_id, [])
                if followers:
                    heir_id = followers.pop(0)
                    # Promotion must be atomic with the index rewrite:
                    # releasing the lock between them would let a racing
                    # submit() coalesce onto a primary that no longer
                    # exists.  Both operations touch one record file.
                    heir = self.store.get(heir_id)  # repro: noqa[CONC003]
                    heir.coalesced_with = None
                    self.store.update(heir)  # repro: noqa[CONC003]
                    self._inflight[record.job_key] = heir.job_id
                    self._followers[heir.job_id] = followers
                    self._queued_count += 1
                    self._queue.put(heir.job_id)
        self._set_depth_gauges()
        self._publish_job(record)
        return record

    # -- worker loop -------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            try:
                self._run_one(job_id)
            except Exception:  # pragma: no cover - worker must survive
                # A failure escaping _run_one is a bug in the executor
                # itself; the worker thread stays alive regardless.
                traceback.print_exc()

    def _run_one(self, job_id: str) -> None:
        with self._lock:
            self._queued_count -= 1
            try:
                # The queued->running transition reads and rewrites the
                # record under the lock so cancel() can't transition the
                # same job concurrently — both sides do a read-check-
                # write on one record file and must serialize.
                record = self.store.get(job_id)  # repro: noqa[CONC003]
            except ValidationError:
                return
            if record.state != "queued":
                # Cancelled (or otherwise resolved) while waiting.
                return
            record.state = "running"
            record.attempts += 1
            record.started_unix = time.time()
            self.store.update(record)  # repro: noqa[CONC003]
        self._set_depth_gauges()
        self._publish_job(record)
        spec = JobSpec(
            kind=record.kind,
            trace=record.spec["trace"],
            config=record.spec["config"],
            params=record.spec["params"],
        )
        started = time.perf_counter()
        telemetry = Telemetry(tracer=self.tracer)
        try:
            with self.tracer.span(
                "service:job",
                category="service",
                job_id=record.job_id,
                kind=record.kind,
            ):
                result = self._execute(spec, record, telemetry)
        except ReproError as exc:
            self._finish(record, "failed", telemetry, started, error=str(exc))
        except Exception as exc:
            self._finish(
                record,
                "failed",
                telemetry,
                started,
                error=f"{type(exc).__name__}: {exc}",
            )
        else:
            record.result = result
            self._finish(record, "succeeded", telemetry, started)

    def _finish(
        self,
        record: JobRecord,
        state: str,
        telemetry: Telemetry,
        started: float,
        error: Optional[str] = None,
    ) -> None:
        elapsed = time.perf_counter() - started
        record.state = state
        record.error = error
        record.finished_unix = time.time()
        record.metrics = flatten_metrics(telemetry.metrics.snapshot())
        self.store.update(record)
        self.metrics.inc("service_jobs_completed", state=state)
        self.metrics.observe("service_job_wall_s", elapsed, kind=record.kind)
        # Surface the precompute-store economics of job traffic on
        # /v1/metrics: job telemetry is per-run, so the shared-store
        # counters are folded into the service registry here.
        for counter in (
            "precomp_store_hits",
            "precomp_store_misses",
            "precomp_store_publishes",
        ):
            total = telemetry.metrics.counter_total(counter)
            if total:
                self.metrics.inc(counter, int(total))
        record_path = record_run(
            f"service:{record.kind}",
            store=self.run_store,
            argv=[record.job_id],
            telemetry=telemetry,
            jobs=self.sim_jobs if isinstance(self.sim_jobs, int) else None,
            duration_s=elapsed,
            extra={
                "job_id": record.job_id,
                "job_key": record.job_key,
                "state": state,
            },
            artifacts=self._job_artifacts(record),
        )
        self._publish_job(record)
        if record_path is not None:
            # Record filenames are {stamp}-{run_id}.json; the id is
            # what /v1/dash/runs/{ref} wants.
            run_id = record_path.stem.split("-", 1)[-1]
            self.events.publish(
                "run_recorded",
                run_id=run_id,
                command=f"service:{record.kind}",
                job_id=record.job_id,
            )
        followers: List[str] = []
        with self._lock:
            if self._inflight.get(record.job_key) == record.job_id:
                del self._inflight[record.job_key]
            followers = self._followers.pop(record.job_id, [])
        for follower_id in followers:
            try:
                follower = self.store.get(follower_id)
            except ValidationError:
                continue
            if follower.state != "queued":
                continue
            follower.state = state
            follower.error = error
            follower.result = record.result
            follower.metrics = dict(record.metrics)
            follower.finished_unix = time.time()
            self.store.update(follower)
            self.metrics.inc("service_jobs_completed", state=state)
            self._publish_job(follower)
        self._set_depth_gauges()

    def _publish_job(self, record: JobRecord) -> None:
        """One ``job`` event per lifecycle transition, typed by payload."""
        self.events.publish("job", **record.status_payload())

    def _job_artifacts(self, record: JobRecord) -> Optional[Dict[str, Any]]:
        """Sidecar sections held aside by the job body, if any."""
        sections = self._pending_artifacts.pop(record.job_id, None)
        return sections or None

    def _set_depth_gauges(self) -> None:
        with self._lock:
            queued = self._queued_count
            inflight = len(self._inflight)
        self.metrics.gauge("service_queue_depth", queued)
        self.metrics.gauge("service_jobs_inflight", inflight)

    # -- execution bodies --------------------------------------------------

    def _runtime(self, telemetry: Telemetry, progress: Any) -> Runtime:
        # A fresh cache object per job (same directory) keeps the
        # cache's telemetry binding job-local while still sharing every
        # artifact across jobs and with the CLI.
        cache: Union[ArtifactCache, NullCache]
        if self.cache_dir is not None:
            cache = ArtifactCache(self.cache_dir, telemetry=telemetry)
        else:
            cache = NullCache()
        return Runtime(
            jobs=self.sim_jobs,
            cache=cache,
            telemetry=telemetry,
            progress=progress,
        )

    def _execute(
        self, spec: JobSpec, record: JobRecord, telemetry: Telemetry
    ) -> Dict[str, Any]:
        progress = _JobProgress(self.store, record, self.metrics, self.events)
        runtime = self._runtime(telemetry, progress)
        trace = self._load_trace(spec)
        config = spec.gpu_config()
        if spec.kind == "simulate":
            result, sections = _run_simulate(runtime, trace, config)
        elif spec.kind == "subset":
            result, sections = _run_subset(
                runtime, trace, config, dict(spec.params)
            )
        elif spec.kind == "sweep":
            result, sections = _run_sweep(runtime, trace)
        else:
            raise ValidationError(f"unknown job kind {spec.kind!r}")
        if sections:
            self._pending_artifacts[record.job_id] = sections
        return result

    @staticmethod
    def _load_trace(spec: JobSpec) -> Any:
        from repro.gfx.traceio import load_trace_auto
        from repro.synth.generator import generate_trace

        trace_spec = dict(spec.trace)
        if "path" in trace_spec:
            return load_trace_auto(trace_spec["path"])
        gen = dict(trace_spec["generate"])
        return generate_trace(
            str(gen["game"]),
            num_frames=gen.get("frames"),
            seed=int(gen.get("seed", 0)),
            scale=float(gen.get("scale", 1.0)),
        )


#: Job bodies return (result payload, artifact sidecar sections).
_JobOutcome = Tuple[Dict[str, Any], Dict[str, Any]]


def _run_simulate(runtime: Runtime, trace: Any, config: Any) -> _JobOutcome:
    result = runtime.simulate_trace(trace, config)
    return {
        "trace": trace.name,
        "config": config.name,
        "total_time_ms": float(result.total_time_ms),
        "mean_fps": float(result.mean_fps),
        "num_frames": int(trace.num_frames),
        "num_draws": int(trace.num_draws),
    }, {}


def _run_subset(
    runtime: Runtime, trace: Any, config: Any, params: Dict[str, Any]
) -> _JobOutcome:
    from repro.core.pipeline import SubsettingPipeline
    from repro.obs.artifacts import pipeline_artifact_sections

    pipeline = SubsettingPipeline(
        radius=float(params["radius"]),
        interval_length=int(params["interval_length"]),
        phase_tolerance=float(params["tolerance"]),
        seed=int(params["seed"]),
    )
    result = pipeline.run(trace, config, keep_clusterings=True, runtime=runtime)
    subset = result.subset
    return {
        "trace": trace.name,
        "config": config.name,
        "mean_prediction_error": float(result.mean_prediction_error),
        "mean_efficiency": float(result.mean_efficiency),
        "mean_outlier_rate": float(result.mean_outlier_rate),
        "num_phases": int(result.detection.num_phases),
        "subset_frame_fraction": float(subset.frame_fraction),
        "subset_draw_fraction": float(subset.draw_fraction),
        "combined_draw_fraction": float(result.combined_draw_fraction),
        "subset_time_error": float(result.subset_time_error),
        "subset": {
            "frame_positions": [int(p) for p in subset.frame_positions],
            "frame_weights": [float(w) for w in subset.frame_weights],
            "parent_num_frames": int(subset.parent_num_frames),
            "parent_num_draws": int(subset.parent_num_draws),
        },
    }, pipeline_artifact_sections(result, trace)


def _run_sweep(runtime: Runtime, trace: Any) -> _JobOutcome:
    from repro.analysis.sweep import pathfinding_sweep
    from repro.core.subsetting import build_subset
    from repro.obs.artifacts import sweep_artifact_sections

    subset = build_subset(trace)
    result = pathfinding_sweep(trace, subset, runtime=runtime)
    return {
        "trace": trace.name,
        "config_names": list(result.config_names),
        "parent_times_ms": [t / 1e6 for t in result.parent_times_ns],
        "subset_estimated_times_ms": [
            t / 1e6 for t in result.subset_estimated_times_ns
        ],
        "ranking_agreement": float(result.ranking_agreement),
        "winner_agrees": bool(result.winner_agrees()),
    }, sweep_artifact_sections(result)
