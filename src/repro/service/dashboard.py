"""Read-only dashboard data handlers over the run store and job store.

:class:`DashboardData` turns the aggregation functions of
:mod:`repro.obs.dash` into ``(status, body)`` pairs for the
``/v1/dash/*`` routes that :class:`~repro.service.api.ServiceApp`
mounts.  The layer is strictly a *reader*: it opens the run store, the
job store, and committed ``BENCH_*.json`` files, and never submits
work or runs a simulation (the OBS002 check pins that, mirroring
SVC001 for the job handlers).  That is what lets ``repro dash`` serve
the full dashboard against a store without starting a job executor.

Stores are re-opened per request, so records appended by concurrent
runs (or by the co-hosted job executor) appear on the next poll
without a server restart.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.errors import ValidationError
from repro.obs.dash import (
    bench_trajectory,
    clusters_payload,
    fidelity_payload,
    find_span_artifact,
    flamediff_payload,
    run_detail_payload,
    runs_payload,
    series_trends,
    spans_payload,
)
from repro.obs.history import RunStore, default_store_dir
from repro.service.jobs import JOB_STATES, JobStore

#: One handler outcome: HTTP status plus a JSON-safe body.
Payload = Tuple[int, Dict[str, Any]]

#: Default window of newest runs behind ``/v1/dash/series``.
DEFAULT_SERIES_WINDOW = 20


def _bad(message: str) -> Payload:
    return 400, {"error": message}


def _int_param(
    query: Dict[str, str], name: str, default: Optional[int]
) -> Optional[int]:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


def _float_param(
    query: Dict[str, str], name: str, default: float
) -> float:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None


class DashboardData:
    """The ``/v1/dash/*`` handlers, bound to on-disk stores only."""

    def __init__(
        self,
        run_store: Union[str, Path, None] = None,
        job_store: Optional[JobStore] = None,
        bench_root: Union[str, Path] = ".",
    ) -> None:
        self.run_store_root = Path(run_store) if run_store is not None else None
        self.job_store = job_store
        self.bench_root = Path(bench_root)

    # -- store access ------------------------------------------------------

    def _store(self) -> RunStore:
        """A fresh :class:`RunStore` so new records show up per request."""
        root = (
            self.run_store_root
            if self.run_store_root is not None
            else default_store_dir()
        )
        if root is None:
            raise ValidationError(
                "run store is disabled ($REPRO_RUN_STORE is empty)"
            )
        return RunStore(root)

    # -- handlers ----------------------------------------------------------

    def runs(self, query: Dict[str, str]) -> Payload:
        """``GET /v1/dash/runs`` — summaries via the shared contract."""
        try:
            limit = _int_param(query, "limit", None)
        except ValueError as exc:
            return _bad(str(exc))
        return 200, runs_payload(
            self._store(), command=query.get("command"), limit=limit
        )

    def run_detail(self, ref: str) -> Payload:
        """``GET /v1/dash/runs/{ref}`` — the full stored record."""
        return 200, run_detail_payload(self._store(), ref)

    def run_spans(self, ref: str, query: Dict[str, str]) -> Payload:
        """``GET /v1/dash/runs/{ref}/spans`` — rollup + flame + timeline.

        The span JSONL path comes from the run's own recorded
        ``--trace-out`` argv by default; ``?file=`` overrides it for
        exports the record does not know about.  Both resolve relative
        to the server's working directory — this is a local exploration
        tool, not a multi-tenant file service.
        """
        record = self._store().resolve(ref)
        override = query.get("file")
        source = override or find_span_artifact(record)
        if source is None:
            raise ValidationError(
                f"run {record.run_id} has no span artifact on disk "
                "(re-run with --trace-out spans.jsonl, or pass ?file=)"
            )
        if not Path(source).is_file():
            raise ValidationError(f"span file {source!r} does not exist")
        payload = spans_payload(source)
        payload["run_id"] = record.run_id
        return 200, payload

    def run_clusters(self, ref: str, query: Dict[str, str]) -> Payload:
        """``GET /v1/dash/runs/{ref}/clusters`` — PCA scatter per frame.

        A run without an artifact sidecar (older build, telemetry
        disabled, non-pipeline command) is a *typed* 404 — ``reason:
        no_artifacts`` — not a 500, so the frontend can explain instead
        of breaking.
        """
        store = self._store()
        record = store.resolve(ref)
        try:
            return 200, clusters_payload(store, record.run_id)
        except ValidationError as exc:
            return 404, {
                "error": str(exc),
                "reason": "no_artifacts",
                "run_id": record.run_id,
            }

    def run_fidelity(self, ref: str, query: Dict[str, str]) -> Payload:
        """``GET /v1/dash/runs/{ref}/fidelity`` — E1/E2 curves + phases.

        Same typed-404 contract as :meth:`run_clusters` when the run
        carries no sidecar.
        """
        store = self._store()
        record = store.resolve(ref)
        try:
            return 200, fidelity_payload(store, record.run_id)
        except ValidationError as exc:
            return 404, {
                "error": str(exc),
                "reason": "no_artifacts",
                "run_id": record.run_id,
            }

    def flamediff(self, query: Dict[str, str]) -> Payload:
        """``GET /v1/dash/flamediff?a=&b=`` — two span exports, one tree.

        ``a`` and ``b`` are span JSONL paths resolved relative to the
        server's working directory (the same local-exploration contract
        as ``?file=`` on the spans route).
        """
        path_a = query.get("a")
        path_b = query.get("b")
        if not path_a or not path_b:
            return _bad("flamediff needs both ?a= and ?b= span JSONL paths")
        for label, source in (("a", path_a), ("b", path_b)):
            if not Path(source).is_file():
                return 404, {
                    "error": f"span file {source!r} ({label}=) does not exist",
                    "reason": "missing_span_file",
                }
        return 200, flamediff_payload(path_a, path_b)

    def series(self, query: Dict[str, str]) -> Payload:
        """``GET /v1/dash/series`` — metric trends + gate verdicts.

        ``?select=`` takes comma-separated globs (the same selectors
        ``repro runs regress --select`` uses); ``?command=`` defaults to
        the newest record's command so a bare request shows the store's
        live activity.
        """
        from repro.obs.analyze import DEFAULT_ALPHA, DEFAULT_REL_THRESHOLD

        try:
            window = _int_param(query, "window", DEFAULT_SERIES_WINDOW)
            threshold = _float_param(
                query, "threshold", DEFAULT_REL_THRESHOLD
            )
            alpha = _float_param(query, "alpha", DEFAULT_ALPHA)
        except ValueError as exc:
            return _bad(str(exc))
        select = None
        if query.get("select"):
            select = [
                part.strip()
                for part in query["select"].split(",")
                if part.strip()
            ]
        store = self._store()
        command = query.get("command")
        if command is None:
            newest = store.records(limit=1)
            if not newest:
                raise ValidationError(f"run store {store.root} is empty")
            command = newest[-1].command
        records = store.records(command=command, limit=window)
        if not records:
            raise ValidationError(
                f"run store has no records for command {command!r}"
            )
        return 200, series_trends(
            records, select, rel_threshold=threshold, alpha=alpha
        )

    def bench(self) -> Payload:
        """``GET /v1/dash/bench`` — committed ``BENCH_*.json`` files."""
        return 200, bench_trajectory(self.bench_root)

    def jobs(self, query: Dict[str, str]) -> Payload:
        """``GET /v1/dash/jobs`` — queue composition from the job store.

        Works from the persisted job files alone, so the read-only
        ``repro dash`` server reports the same queue an executor on the
        same directory is draining.  ``available`` is false when the
        dashboard was started without any job directory.
        """
        if self.job_store is None:
            return 200, {"available": False, "jobs": [], "states": {}}
        state = query.get("state")
        if state is not None and state not in JOB_STATES:
            return _bad(
                f"unknown state {state!r} "
                f"(expected one of {', '.join(JOB_STATES)})"
            )
        try:
            limit = _int_param(query, "limit", 50)
        except ValueError as exc:
            return _bad(str(exc))
        everything = self.job_store.records()
        states: Dict[str, int] = {}
        for record in everything:
            states[record.state] = states.get(record.state, 0) + 1
        shown = self.job_store.records(
            state=state, kind=query.get("kind"), limit=limit
        )
        return 200, {
            "available": True,
            "total": len(everything),
            "states": states,
            "jobs": [record.status_payload() for record in shown],
        }


def dash_page() -> bytes:
    """The embedded single-file frontend (``/dash``), as bytes."""
    from importlib.resources import files

    return (
        files("repro.obs").joinpath("dash_page.html").read_bytes()
    )
