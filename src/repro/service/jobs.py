"""Persistent job store under ``.repro/jobs/``.

One JSON file per job, named ``{created_micros}-{job_id}.json`` and
opened with ``"x"`` (exclusive create) — the run-store pattern — so two
submissions can never overwrite each other.  Unlike run records, job
records *transition*: ``queued → running → succeeded | failed |
cancelled`` (plus ``interrupted`` for jobs that were mid-flight across
too many crashes), so updates rewrite the job's own file atomically
(temp file + ``os.replace``, the artifact-cache discipline).

The store is the service's restart story: on boot
:meth:`JobStore.recover` requeues every ``running`` job that has only
been started once and marks the rest ``interrupted``, so a crashed
server resumes its backlog without losing or duplicating records.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ValidationError

#: Bump when the record layout changes meaning.
JOB_STORE_VERSION = 1

#: Default store location, relative to the working directory.
DEFAULT_JOB_DIR = ".repro/jobs"

#: Every state a job can be in.  ``interrupted`` is terminal: the job
#: was ``running`` across more than :data:`MAX_ATTEMPTS` boots.
JOB_STATES: Tuple[str, ...] = (
    "queued",
    "running",
    "succeeded",
    "failed",
    "cancelled",
    "interrupted",
)

#: States from which a job will never run again.
TERMINAL_STATES: Tuple[str, ...] = (
    "succeeded",
    "failed",
    "cancelled",
    "interrupted",
)

#: How many times a job may be *started* before a crash-recovery pass
#: gives up on it (a job that takes the server down twice is presumed
#: poisonous).
MAX_ATTEMPTS = 2


@dataclass
class JobRecord:
    """One job's full lifecycle state (mutable; persisted on transition)."""

    job_id: str
    job_key: str
    kind: str
    spec: Dict[str, Any]
    state: str = "queued"
    created_unix: float = 0.0
    updated_unix: float = 0.0
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    attempts: int = 0
    error: Optional[str] = None
    #: Primary job id this submission was deduplicated onto, if any.
    coalesced_with: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    #: Flattened metrics snapshot of the job's run (run-store naming).
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Live progress gauges: tasks_done / tasks_total / frames.
    progress: Dict[str, float] = field(default_factory=dict)

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_store_version": JOB_STORE_VERSION,
            "job_id": self.job_id,
            "job_key": self.job_key,
            "kind": self.kind,
            "spec": self.spec,
            "state": self.state,
            "created_unix": self.created_unix,
            "updated_unix": self.updated_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "attempts": self.attempts,
            "error": self.error,
            "coalesced_with": self.coalesced_with,
            "result": self.result,
            "metrics": self.metrics,
            "progress": self.progress,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobRecord":
        version = data.get("job_store_version")
        if version != JOB_STORE_VERSION:
            raise ValidationError(
                f"unsupported job record version {version!r} "
                f"(this build reads version {JOB_STORE_VERSION})"
            )
        state = str(data["state"])
        if state not in JOB_STATES:
            raise ValidationError(f"unknown job state {state!r}")
        return cls(
            job_id=str(data["job_id"]),
            job_key=str(data["job_key"]),
            kind=str(data["kind"]),
            spec=dict(data.get("spec", {})),
            state=state,
            created_unix=float(data.get("created_unix", 0.0)),
            updated_unix=float(data.get("updated_unix", 0.0)),
            started_unix=data.get("started_unix"),
            finished_unix=data.get("finished_unix"),
            attempts=int(data.get("attempts", 0)),
            error=data.get("error"),
            coalesced_with=data.get("coalesced_with"),
            result=data.get("result"),
            metrics={
                k: float(v) for k, v in data.get("metrics", {}).items()
            },
            progress={
                k: float(v) for k, v in data.get("progress", {}).items()
            },
        )

    def status_payload(self) -> Dict[str, Any]:
        """The JSON body ``GET /v1/jobs/{id}`` returns (no result blob)."""
        return {
            "job_id": self.job_id,
            "job_key": self.job_key,
            "kind": self.kind,
            "state": self.state,
            "created_unix": self.created_unix,
            "updated_unix": self.updated_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "attempts": self.attempts,
            "error": self.error,
            "coalesced_with": self.coalesced_with,
            "progress": dict(self.progress),
            "spec": self.spec,
        }


def new_job(job_key: str, kind: str, spec: Dict[str, Any]) -> JobRecord:
    """A fresh ``queued`` record with identity and timestamps stamped."""
    now = time.time()
    return JobRecord(
        job_id=uuid.uuid4().hex[:12],
        job_key=job_key,
        kind=kind,
        spec=spec,
        state="queued",
        created_unix=now,
        updated_unix=now,
    )


class JobStore:
    """The persistent job directory (one JSON file per job).

    One store instance is shared between the executor's worker threads
    and the HTTP request threads, so the in-memory id->path cache is
    guarded by ``_lock``.  Only the dict operations hold it — directory
    scans and record I/O stay outside (CONC003 discipline): the files
    themselves are safe through exclusive create and atomic replace.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else Path(DEFAULT_JOB_DIR)
        self._lock = threading.Lock()
        self._paths: Dict[str, Path] = {}

    # -- writing -----------------------------------------------------------

    def create(self, record: JobRecord) -> Path:
        """Persist a brand-new job file; never overwrites."""
        self.root.mkdir(parents=True, exist_ok=True)
        stamp = int(record.created_unix * 1e6)
        base = f"{stamp:017d}-{record.job_id}"
        path = self.root / f"{base}.json"
        attempt = 0
        while True:
            try:
                with open(path, "x", encoding="utf-8") as stream:
                    json.dump(
                        record.to_dict(), stream, indent=2, sort_keys=True
                    )
                    stream.write("\n")
                with self._lock:
                    self._paths[record.job_id] = path
                return path
            except FileExistsError:
                attempt += 1
                path = self.root / f"{base}-{attempt}.json"

    def update(self, record: JobRecord) -> Path:
        """Atomically rewrite an existing job's file (state transition)."""
        path = self._path_for(record.job_id)
        record.updated_unix = time.time()
        data = json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n"
        handle, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def _path_for(self, job_id: str) -> Path:
        with self._lock:
            cached = self._paths.get(job_id)
        if cached is not None and cached.exists():
            return cached
        matches = sorted(self.root.glob(f"*-{job_id}.json"))
        if not matches:
            raise ValidationError(f"no job record for id {job_id!r}")
        with self._lock:
            self._paths[job_id] = matches[0]
        return matches[0]

    # -- reading -----------------------------------------------------------

    def paths(self) -> List[Path]:
        """Record files, oldest first (filenames sort by creation time)."""
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.glob("*.json") if p.is_file())

    def records(
        self,
        state: Optional[str] = None,
        kind: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[JobRecord]:
        """Stored jobs, oldest first; filterable by state and kind.

        ``limit`` keeps only the newest N after filtering.  Unreadable
        or foreign JSON files are skipped, not fatal — the directory is
        long-lived and may hold partial writes from a crash.
        """
        loaded: List[JobRecord] = []
        for path in self.paths():
            try:
                with open(path, "r", encoding="utf-8") as stream:
                    record = JobRecord.from_dict(json.load(stream))
            except (OSError, ValueError, KeyError, ValidationError):
                continue
            if state is not None and record.state != state:
                continue
            if kind is not None and record.kind != kind:
                continue
            with self._lock:
                self._paths.setdefault(record.job_id, path)
            loaded.append(record)
        loaded.sort(key=lambda r: (r.created_unix, r.job_id))
        if limit is not None and limit >= 0:
            loaded = loaded[-limit:] if limit else []
        return loaded

    def get(self, job_id: str) -> JobRecord:
        """The record for ``job_id`` (exact id, not a prefix)."""
        path = self._path_for(job_id)
        with open(path, "r", encoding="utf-8") as stream:
            return JobRecord.from_dict(json.load(stream))

    def resolve(self, ref: str) -> JobRecord:
        """A record by job-id prefix (unique) or exact id."""
        try:
            return self.get(ref)
        except ValidationError:
            pass
        matches = [r for r in self.records() if r.job_id.startswith(ref)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ValidationError(f"no job matches id prefix {ref!r}")
        raise ValidationError(
            f"job id prefix {ref!r} is ambiguous ({len(matches)} matches)"
        )

    # -- crash recovery ----------------------------------------------------

    def recover(self) -> Tuple[List[JobRecord], List[JobRecord]]:
        """Reconcile jobs left ``running`` by a dead server.

        Returns ``(requeued, interrupted)``: jobs started fewer than
        :data:`MAX_ATTEMPTS` times go back to ``queued`` (the executor
        re-enqueues them on start); the rest become ``interrupted`` with
        an explanatory error.  Idempotent — a store with no ``running``
        jobs is returned unchanged.
        """
        requeued: List[JobRecord] = []
        interrupted: List[JobRecord] = []
        for record in self.records(state="running"):
            if record.attempts < MAX_ATTEMPTS:
                record.state = "queued"
                record.progress = {}
                self.update(record)
                requeued.append(record)
            else:
                record.state = "interrupted"
                record.finished_unix = time.time()
                record.error = (
                    f"interrupted: job was running across {record.attempts} "
                    f"server starts (limit {MAX_ATTEMPTS})"
                )
                self.update(record)
                interrupted.append(record)
        return requeued, interrupted
