"""Job-request validation and normalization.

A submission is a JSON object::

    {
      "kind": "simulate" | "subset" | "sweep",
      "trace": {"path": "trace.jsonl"}
             | {"generate": {"game": ..., "frames": ..., "seed": ..., "scale": ...}},
      "config": {"preset": "mainstream", "overrides": {"tex_cache_kb": 256, ...}},
      "params": {...}     # kind-specific; only "subset" takes any today
    }

Validation is collective and field-pathed: every rejected field comes
back as ``{field_path, message}`` (the service's 422 body and the CLI's
per-field error lines), derived from the same dataclass validation the
library applies — ``config.overrides`` entries are checked against
:class:`~repro.simgpu.config.GpuConfig` field by field, and ``params``
against :class:`~repro.core.pipeline.SubsettingPipeline`.

The *normalized* spec (defaults filled, keys sorted) is what the job
store persists and what the dedup key hashes, so two submissions that
mean the same work produce byte-identical canonical forms.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.phasedetect import DEFAULT_INTERVAL_LENGTH, DEFAULT_TOLERANCE
from repro.simgpu.config import GpuConfig
from repro.synth.profiles import BIOSHOCK_SERIES
from repro.util.validation import (
    FieldErrors,
    FieldValidationError,
    build_dataclass,
    check_fraction,
    check_in,
    check_positive,
    check_type,
)

#: Work the executor knows how to run.
JOB_KINDS: Tuple[str, ...] = ("simulate", "subset", "sweep")

#: Default radius mirrored from the clustering layer (import kept local
#: to the validator below to avoid a module-load dependency fan-out).
_DEFAULT_SUBSET_PARAMS: Dict[str, Any] = {
    "radius": 0.16,
    "interval_length": DEFAULT_INTERVAL_LENGTH,
    "tolerance": DEFAULT_TOLERANCE,
    "seed": 0,
}


@dataclass(frozen=True)
class JobSpec:
    """A validated, normalized job submission."""

    kind: str
    trace: Mapping[str, Any]
    config: Mapping[str, Any]
    params: Mapping[str, Any]
    #: SHA-256 of the trace file's bytes for path traces (pins content,
    #: not just the path); ``None`` for generate specs, whose canonical
    #: form already pins the content.
    trace_fingerprint: Optional[str] = None

    def canonical(self) -> Dict[str, Any]:
        """The JSON-safe normalized form the store persists."""
        return {
            "kind": self.kind,
            "trace": _deep_dict(self.trace),
            "config": _deep_dict(self.config),
            "params": _deep_dict(self.params),
        }

    def job_key(self) -> str:
        """Content-addressed dedup key for this submission.

        Includes :data:`~repro.runtime.keys.CACHE_FORMAT_VERSION` so a
        simulator-semantics bump separates results, exactly as it does
        for runtime artifacts.
        """
        from repro.runtime.keys import CACHE_FORMAT_VERSION

        record = {
            "version": CACHE_FORMAT_VERSION,
            "spec": self.canonical(),
            "trace_fingerprint": self.trace_fingerprint,
        }
        canonical = json.dumps(record, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def gpu_config(self) -> GpuConfig:
        """The validated :class:`GpuConfig` this spec names."""
        base = GpuConfig.preset(str(self.config["preset"]))
        overrides = dict(self.config.get("overrides", {}))
        if not overrides:
            return base
        return build_dataclass(
            GpuConfig, overrides, base=base, path="config.overrides"
        )


def _deep_dict(value: Any) -> Any:
    if isinstance(value, Mapping):
        return {str(k): _deep_dict(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_deep_dict(v) for v in value]
    return value


def _require_mapping(
    errors: FieldErrors, path: str, value: Any, allow_none: bool = True
) -> Optional[Mapping[str, Any]]:
    if value is None and allow_none:
        return {}
    if not isinstance(value, Mapping):
        errors.add(path, f"must be an object, got {type(value).__name__}")
        return None
    return value


def _validate_trace(
    errors: FieldErrors, trace: Any
) -> Tuple[Dict[str, Any], Optional[str]]:
    """Normalize the trace source; returns (spec, file fingerprint)."""
    section = _require_mapping(errors, "trace", trace, allow_none=False)
    if section is None:
        return {}, None
    has_path = "path" in section
    has_generate = "generate" in section
    unknown = sorted(set(section) - {"path", "generate"})
    for key in unknown:
        errors.add(f"trace.{key}", "unknown field (expected path or generate)")
    if has_path == has_generate:
        errors.add("trace", "provide exactly one of 'path' or 'generate'")
        return {}, None
    if has_path:
        path_value = section["path"]
        if not isinstance(path_value, str) or not path_value:
            errors.add("trace.path", "must be a non-empty string")
            return {}, None
        candidate = Path(path_value)
        if not candidate.is_file():
            errors.add("trace.path", f"no such trace file: {path_value}")
            return {}, None
        digest = hashlib.sha256(candidate.read_bytes()).hexdigest()
        return {"path": path_value}, digest
    gen = _require_mapping(
        errors, "trace.generate", section["generate"], allow_none=False
    )
    if gen is None:
        return {}, None
    spec: Dict[str, Any] = {
        "game": gen.get("game", BIOSHOCK_SERIES[0]),
        "frames": gen.get("frames"),
        "seed": gen.get("seed", 0),
        "scale": gen.get("scale", 1.0),
    }
    for key in sorted(set(gen) - set(spec)):
        errors.add(f"trace.generate.{key}", "unknown field")
    errors.collect(
        "trace.generate.game", check_in,
        "game", spec["game"], BIOSHOCK_SERIES,
    )
    if spec["frames"] is not None:
        if errors.collect(
            "trace.generate.frames", check_type, "frames", spec["frames"], int
        ):
            errors.collect(
                "trace.generate.frames", check_positive,
                "frames", spec["frames"],
            )
    errors.collect(
        "trace.generate.seed", check_type, "seed", spec["seed"], int
    )
    errors.collect(
        "trace.generate.scale", check_positive, "scale", spec["scale"]
    )
    return {"generate": spec}, None


def _validate_config(errors: FieldErrors, config: Any) -> Dict[str, Any]:
    section = _require_mapping(errors, "config", config)
    if section is None:
        return {}
    preset = section.get("preset", "mainstream")
    overrides = section.get("overrides", {})
    for key in sorted(set(section) - {"preset", "overrides"}):
        errors.add(f"config.{key}", "unknown field (expected preset, overrides)")
    preset_ok = errors.collect(
        "config.preset", check_in, "preset", preset, GpuConfig.preset_names()
    )
    overrides_map = _require_mapping(errors, "config.overrides", overrides)
    clean_overrides: Dict[str, Any] = {}
    if overrides_map:
        clean_overrides = dict(overrides_map)
        if preset_ok:
            try:
                build_dataclass(
                    GpuConfig,
                    clean_overrides,
                    base=GpuConfig.preset(str(preset)),
                    path="config.overrides",
                )
            except FieldValidationError as exc:
                errors.extend(exc)
    return {"preset": preset, "overrides": clean_overrides}


def _validate_params(
    errors: FieldErrors, kind: str, params: Any
) -> Dict[str, Any]:
    section = _require_mapping(errors, "params", params)
    if section is None:
        return {}
    if kind != "subset":
        for key in sorted(section):
            errors.add(
                f"params.{key}", f"kind {kind!r} takes no parameters"
            )
        return {}
    spec = dict(_DEFAULT_SUBSET_PARAMS)
    for key in sorted(set(section) - set(spec)):
        choices = ", ".join(sorted(spec))
        errors.add(f"params.{key}", f"unknown field (known fields: {choices})")
    spec.update({k: v for k, v in section.items() if k in spec})
    errors.collect("params.radius", check_positive, "radius", spec["radius"])
    if errors.collect(
        "params.interval_length", check_type,
        "interval_length", spec["interval_length"], int,
    ):
        errors.collect(
            "params.interval_length", check_positive,
            "interval_length", spec["interval_length"],
        )
    errors.collect(
        "params.tolerance", check_fraction, "tolerance", spec["tolerance"]
    )
    errors.collect("params.seed", check_type, "seed", spec["seed"], int)
    return spec


def validate_job_request(payload: Any) -> JobSpec:
    """Validate a raw submission payload into a :class:`JobSpec`.

    Raises :class:`~repro.util.validation.FieldValidationError` carrying
    *every* rejected field; the API layer renders it as the 422 body.
    """
    errors = FieldErrors()
    body = _require_mapping(errors, "", payload, allow_none=False)
    if body is None:
        errors.raise_if_any()
        raise AssertionError("unreachable")  # pragma: no cover
    for key in sorted(set(body) - {"kind", "trace", "config", "params"}):
        errors.add(key, "unknown field (expected kind, trace, config, params)")
    kind = body.get("kind")
    if kind not in JOB_KINDS:
        errors.add(
            "kind",
            f"must be one of {', '.join(JOB_KINDS)}, got {kind!r}",
        )
        errors.raise_if_any()
    trace_spec, fingerprint = _validate_trace(errors, body.get("trace"))
    config_spec = _validate_config(errors, body.get("config"))
    params_spec = _validate_params(errors, str(kind), body.get("params"))
    errors.raise_if_any()
    return JobSpec(
        kind=str(kind),
        trace=trace_spec,
        config=config_spec,
        params=params_spec,
        trace_fingerprint=fingerprint,
    )
