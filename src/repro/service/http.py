"""Stdlib HTTP front-end for :class:`~repro.service.api.ServiceApp`.

A :class:`~http.server.ThreadingHTTPServer` whose request handler does
nothing but translate: read the body, call ``app.handle``, write the
status/headers/bytes back.  All routing, validation, and job logic
lives behind the app, so this module has no opinions to test beyond
"bytes go in, bytes come out" — and the service keeps numpy as its only
hard dependency.

Traffic visibility is the metrics registry's job, not stderr's: every
request lands in ``service_requests{method,route,status}`` and the
``service_request_duration_s{route,status}`` histogram on
``/v1/metrics`` (and therefore on the dashboard), which replaced the
old all-or-nothing ``verbose`` request logging.
"""

from __future__ import annotations

import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.service.api import Response, ServiceApp
from repro.service.dashboard import DashboardData
from repro.service.events import (
    KEEPALIVE_INTERVAL_S,
    Event,
    keepalive_bytes,
)
from repro.service.executor import JobExecutor
from repro.service.jobs import JobStore

#: Cap on accepted request bodies; a job submission is a small JSON
#: document, so anything bigger is a client error (or abuse).
MAX_BODY_BYTES = 1 << 20

#: How often a streaming handler wakes to check for server shutdown.
_STREAM_POLL_S = 0.5


class _Handler(BaseHTTPRequestHandler):
    """Thin translation layer; the bound ``app`` does the work."""

    server: "ServiceServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        # Request logging is the metrics registry's job (the
        # service_requests counter and request-duration histogram).
        pass

    def _read_body(self) -> Optional[bytes]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return None
        if length > MAX_BODY_BYTES:
            return b"__too_large__"
        return self.rfile.read(length)

    def _write(self, response: Response) -> None:
        payload = response.body_bytes()
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _dispatch(self, method: str) -> None:
        body = self._read_body()
        if body == b"__too_large__":
            self._write(
                Response(413, {"error": "request body too large"})
            )
            return
        self._write(self.server.app.handle(method, self.path, body))

    # -- server-sent events ------------------------------------------------

    def _stream_events(self) -> None:
        """Hold the socket open and relay the app's event bus as SSE.

        The one route the Response model cannot express: output is
        incremental and the connection lives until the client leaves,
        the server closes, or an optional ``?limit=`` is reached
        (counting non-hello events — what scripts and ``--wait`` use to
        exit deterministically).  Idle streams get comment keepalives
        every ~15 s.  Request metrics are recorded by hand since
        ``app.handle`` is bypassed.
        """
        app = self.server.app
        bus = app.events
        query = {
            key: values[-1]
            for key, values in parse_qs(urlsplit(self.path).query).items()
        }
        try:
            limit = int(query["limit"]) if "limit" in query else None
        except ValueError:
            self._write(
                Response(400, {"error": "limit must be an integer"})
            )
            return
        kinds = None
        if query.get("kinds"):
            kinds = {
                part.strip()
                for part in query["kinds"].split(",")
                if part.strip()
            }
        app.metrics.inc(
            "service_requests", method="GET", route="/v1/events", status="200"
        )
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        delivered = 0
        try:
            with bus.subscribe() as subscription:
                # The hello is connection-local (not fanned out through
                # the bus) so parallel streams don't see each other's.
                hello = Event(
                    seq=0,
                    kind="hello",
                    data={"server": self.server.url},
                    created_unix=time.time(),
                )
                self.wfile.write(hello.sse_bytes())
                self.wfile.flush()
                last_sent = time.monotonic()
                while not bus.closed:
                    event = subscription.get(timeout=_STREAM_POLL_S)
                    now = time.monotonic()
                    if event is None:
                        if now - last_sent >= KEEPALIVE_INTERVAL_S:
                            self.wfile.write(keepalive_bytes())
                            self.wfile.flush()
                            last_sent = now
                        continue
                    if kinds is not None and event.kind not in kinds | {
                        "shutdown"
                    }:
                        continue
                    self.wfile.write(event.sse_bytes())
                    self.wfile.flush()
                    last_sent = now
                    if event.kind == "shutdown":
                        break
                    if event.kind != "hello":
                        delivered += 1
                        if limit is not None and delivered >= limit:
                            break
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away; nothing to clean up beyond unsubscribe
        self.close_connection = True

    # -- verbs -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        if urlsplit(self.path).path.rstrip("/") == "/v1/events":
            self._stream_events()
            return
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("DELETE")

    def do_PUT(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("PUT")


class ServiceServer(ThreadingHTTPServer):
    """The service's HTTP server, bound to one :class:`ServiceApp`.

    ``daemon_threads`` keeps request threads from blocking shutdown;
    executor workers (when present) are joined by :meth:`close`.
    """

    daemon_threads = True

    def __init__(
        self,
        app: ServiceApp,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.app = app

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop serving and drain the executor's workers, if any.

        The event bus closes *first* so open SSE streams receive their
        ``shutdown`` event and unwind instead of pinning daemon threads
        on idle sockets.
        """
        self.app.events.close()
        self.shutdown()
        self.server_close()
        if self.app.executor is not None:
            self.app.executor.stop()


def build_server(
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 1,
    queue_limit: Optional[int] = None,
    sim_jobs: Union[int, str] = 1,
    job_dir: Optional[Union[str, Path]] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    run_store: Optional[Union[str, Path]] = None,
    dashboard: bool = True,
    bench_root: Union[str, Path] = ".",
) -> Tuple[ServiceServer, Dict[str, Any]]:
    """Assemble store + executor + app + server; start the workers.

    The dashboard is mounted by default on the same app (sharing the
    executor's job store, so ``/v1/dash/jobs`` reflects the live
    queue); pass ``dashboard=False`` for a jobs-only server.  Returns
    the (already listening, not yet serving) server and the recovery
    report from the executor's boot scan.  The caller runs
    ``server.serve_forever()`` (the CLI) or drives requests directly
    against ``server.url`` (tests), and must call ``server.close()``.
    """
    from repro.service.executor import DEFAULT_QUEUE_LIMIT

    store = JobStore(job_dir)
    executor = JobExecutor(
        store,
        workers=workers,
        queue_limit=queue_limit if queue_limit is not None else DEFAULT_QUEUE_LIMIT,
        sim_jobs=sim_jobs,
        cache_dir=cache_dir,
        run_store=run_store,
    )
    recovery = executor.start()
    dash_data = (
        DashboardData(
            run_store=run_store, job_store=store, bench_root=bench_root
        )
        if dashboard
        else None
    )
    app = ServiceApp(executor, dashboard=dash_data)
    server = ServiceServer(app, host=host, port=port)
    return server, recovery


def build_dash_server(
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    run_store: Optional[Union[str, Path]] = None,
    job_dir: Optional[Union[str, Path]] = None,
    bench_root: Union[str, Path] = ".",
    serve_ui: bool = True,
) -> ServiceServer:
    """A read-only dashboard server: no executor, no workers, no writes.

    Job routes answer 503; the dash routes (and, with ``serve_ui``, the
    HTML page) read the run store, job store, and BENCH files as they
    are on disk.  Safe to point at a store another process is appending
    to.  ``serve_ui=False`` leaves the JSON data API only.
    """
    dash_data = DashboardData(
        run_store=run_store,
        job_store=JobStore(job_dir) if job_dir is not None else None,
        bench_root=bench_root,
    )
    app = ServiceApp(executor=None, dashboard=dash_data)
    if not serve_ui:
        app.serve_ui = False
    return ServiceServer(app, host=host, port=port)
