"""HTTP-agnostic request handling for the subsetting service.

:class:`ServiceApp` maps ``(method, path, body)`` to a
:class:`Response` — plain data, no sockets — so the whole API surface is
testable without binding a port, and the actual HTTP layer
(:mod:`repro.service.http`) stays a thin translation shim.

Routes (JSON unless noted)::

    GET  /v1/healthz                  liveness + build info + queue gauges
    GET  /v1/metrics                  service metrics snapshot
    POST /v1/jobs                     submit a job (422 bad fields, 429 full)
    GET  /v1/jobs                     list jobs (?state=, ?kind=, ?limit=)
    GET  /v1/jobs/{id}                one job's status
    GET  /v1/jobs/{id}/result         the result payload (409 until terminal)
    POST /v1/jobs/{id}/cancel         cancel a queued job (409 if running)
    GET  /v1/dash/runs                run-store summaries (?command=, ?limit=)
    GET  /v1/dash/runs/{ref}          one full run record
    GET  /v1/dash/runs/{ref}/spans    span rollup + flame tree (?file=)
    GET  /v1/dash/runs/{ref}/clusters PCA cluster scatter from the sidecar
    GET  /v1/dash/runs/{ref}/fidelity E1/E2 curves + per-phase error bars
    GET  /v1/dash/flamediff           span-export diff tree (?a=, ?b=)
    GET  /v1/dash/series              metric trends + gate verdicts
    GET  /v1/dash/bench               committed BENCH_*.json trajectory
    GET  /v1/dash/jobs                job-store composition
    GET  /v1/events                   server-sent events (HTTP layer streams)
    GET  /dash                        the embedded HTML dashboard

The job routes require an executor and answer 503 without one; the
dash routes require a :class:`~repro.service.dashboard.DashboardData`
and answer 404 without one — ``repro dash`` mounts only the latter, so
a read-only store can be explored with no job queue running at all.

Handlers never run simulations themselves — job handlers go through
the executor's queue (SVC001) and dash handlers only read artifacts
from disk (OBS002).

Every request lands in the ``service_requests{method,route,status}``
counter and the ``service_request_duration_s{route,status}`` histogram
on ``/v1/metrics``; routes are recorded as templates (``/v1/jobs/{id}``,
not the concrete id) so label cardinality stays bounded.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import ValidationError
from repro.obs.history import build_info
from repro.obs.metrics import Metrics
from repro.service.executor import (
    JobConflictError,
    JobExecutor,
    QueueFullError,
)
from repro.service.jobs import JOB_STATES, JobRecord
from repro.service.specs import validate_job_request
from repro.util.validation import FieldValidationError

if TYPE_CHECKING:
    from repro.service.dashboard import DashboardData
    from repro.service.events import EventBus

#: Seconds a 429 response suggests waiting before resubmitting.
RETRY_AFTER_S = 2

#: Routes with no path parameters, for request-metric labels.
_FIXED_ROUTES = frozenset(
    {
        "/v1/healthz",
        "/v1/metrics",
        "/v1/jobs",
        "/v1/dash/runs",
        "/v1/dash/series",
        "/v1/dash/bench",
        "/v1/dash/jobs",
        "/v1/dash/flamediff",
        "/v1/events",
        "/dash",
    }
)


@dataclass(frozen=True)
class Response:
    """One API response: status code, JSON-safe body, extra headers.

    ``raw`` carries a pre-encoded non-JSON payload (the dashboard HTML);
    when set it wins over ``body`` and ``content_type`` says what it is.
    """

    status: int
    body: Dict[str, Any]
    headers: Dict[str, str] = field(default_factory=dict)
    raw: Optional[bytes] = None
    content_type: str = "application/json"

    def body_bytes(self) -> bytes:
        if self.raw is not None:
            return self.raw
        return (json.dumps(self.body, sort_keys=True) + "\n").encode("utf-8")


def _error(status: int, message: str, **extra: Any) -> Response:
    headers = extra.pop("headers", {})
    return Response(status, {"error": message, **extra}, headers=headers)


def route_template(path: str) -> str:
    """The bounded-cardinality route label for a request path.

    Concrete ids/refs are folded into placeholders and everything that
    matches no route at all becomes ``<unmatched>``, so a scanner
    walking random URLs cannot mint unbounded metric label values.
    """
    if path in _FIXED_ROUTES:
        return path
    job_id, action = _split_job_path(path)
    if job_id is not None and action in ("", "result", "cancel"):
        return "/v1/jobs/{id}" + (f"/{action}" if action else "")
    ref, action = _split_dash_run_path(path)
    if ref is not None and action in ("", "spans", "clusters", "fidelity"):
        return "/v1/dash/runs/{ref}" + (f"/{action}" if action else "")
    return "<unmatched>"


class ServiceApp:
    """Routes validated requests onto an executor and/or dashboard."""

    def __init__(
        self,
        executor: Optional[JobExecutor] = None,
        dashboard: Optional["DashboardData"] = None,
        events: Optional["EventBus"] = None,
    ) -> None:
        self.executor = executor
        self.dashboard = dashboard
        #: Serve the embedded HTML at /dash; off = JSON data API only.
        self.serve_ui = True
        self.metrics: Metrics = (
            executor.metrics if executor is not None else Metrics()
        )
        #: The SSE fan-out behind /v1/events.  Defaults to the
        #: executor's bus (so job lifecycle events stream) or a fresh
        #: quiet bus for read-only dashboards (hello + keepalives only).
        if events is not None:
            self.events = events
        elif executor is not None:
            self.events = executor.events
        else:
            from repro.service.events import EventBus

            self.events = EventBus()

    # -- entry point -------------------------------------------------------

    def handle(
        self, method: str, target: str, body: Optional[bytes] = None
    ) -> Response:
        """Dispatch one request; never raises for client mistakes."""
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        query = {
            key: values[-1]
            for key, values in parse_qs(parts.query).items()
        }
        route = route_template(path)
        started = time.perf_counter()
        try:
            response = self._route(method, path, query, body)
        except FieldValidationError as exc:
            response = Response(
                422,
                {
                    "error": "validation failed",
                    "field_errors": exc.as_payload(),
                },
            )
        except QueueFullError as exc:
            response = _error(
                429, str(exc), headers={"Retry-After": str(RETRY_AFTER_S)}
            )
        except JobConflictError as exc:
            response = _error(409, str(exc))
        except ValidationError as exc:
            response = _error(404, str(exc))
        elapsed = time.perf_counter() - started
        status = str(response.status)
        self.metrics.inc(
            "service_requests", method=method, route=route, status=status
        )
        self.metrics.observe(
            "service_request_duration_s", elapsed, route=route, status=status
        )
        return response

    # -- routing -----------------------------------------------------------

    def _route(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        body: Optional[bytes],
    ) -> Response:
        if path == "/v1/healthz":
            return self._require(method, "GET") or self._healthz()
        if path == "/v1/metrics":
            return self._require(method, "GET") or self._metrics()
        if path == "/v1/events":
            # Streaming cannot be expressed as a complete-body Response;
            # the HTTP layer intercepts this path before handle() and
            # holds the socket open.  A direct (in-process) caller gets
            # a description instead of a hang.
            return self._require(method, "GET") or Response(
                200,
                {
                    "stream": "text/event-stream",
                    "hint": (
                        "connect over HTTP with an SSE client; "
                        "this in-process call cannot stream"
                    ),
                    "kinds": list(_event_kinds()),
                },
            )
        if path == "/dash" or path.startswith("/v1/dash/"):
            return self._route_dash(method, path, query)
        if path == "/v1/jobs" or path.startswith("/v1/jobs/"):
            return self._route_jobs(method, path, query, body)
        return _error(404, f"no route for {path}")

    def _route_jobs(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        body: Optional[bytes],
    ) -> Response:
        if self.executor is None:
            return _error(
                503,
                "this server has no job executor (data-only dashboard); "
                "start one with 'repro serve'",
            )
        if path == "/v1/jobs":
            if method == "POST":
                return self._submit(body)
            return self._require(method, "GET") or self._list(query)
        job_id, action = _split_job_path(path)
        if job_id is None:
            return _error(404, f"no route for {path}")
        if action == "":
            return self._require(method, "GET") or self._status(job_id)
        if action == "result":
            return self._require(method, "GET") or self._result(job_id)
        if action == "cancel":
            return self._require(method, "POST") or self._cancel(job_id)
        return _error(404, f"no route for {path}")

    def _route_dash(
        self, method: str, path: str, query: Dict[str, str]
    ) -> Response:
        if self.dashboard is None:
            return _error(404, f"no route for {path} (dashboard not mounted)")
        denied = self._require(method, "GET")
        if denied is not None:
            return denied
        if path == "/dash":
            if not self.serve_ui:
                return _error(404, "UI disabled (--data-only)")
            from repro.service.dashboard import dash_page

            return Response(
                200,
                {},
                raw=dash_page(),
                content_type="text/html; charset=utf-8",
            )
        if path == "/v1/dash/runs":
            return _wrap(self.dashboard.runs(query))
        if path == "/v1/dash/series":
            return _wrap(self.dashboard.series(query))
        if path == "/v1/dash/bench":
            return _wrap(self.dashboard.bench())
        if path == "/v1/dash/jobs":
            return _wrap(self.dashboard.jobs(query))
        if path == "/v1/dash/flamediff":
            return _wrap(self.dashboard.flamediff(query))
        ref, action = _split_dash_run_path(path)
        if ref is None:
            return _error(404, f"no route for {path}")
        if action == "":
            return _wrap(self.dashboard.run_detail(ref))
        if action == "spans":
            return _wrap(self.dashboard.run_spans(ref, query))
        if action == "clusters":
            return _wrap(self.dashboard.run_clusters(ref, query))
        if action == "fidelity":
            return _wrap(self.dashboard.run_fidelity(ref, query))
        return _error(404, f"no route for {path}")

    @staticmethod
    def _require(method: str, expected: str) -> Optional[Response]:
        if method != expected:
            return _error(
                405,
                f"method {method} not allowed (use {expected})",
                headers={"Allow": expected},
            )
        return None

    # -- handlers ----------------------------------------------------------

    def _healthz(self) -> Response:
        snapshot = self.metrics.snapshot()
        return Response(
            200,
            {
                "status": "ok",
                "build": build_info(),
                "executor": self.executor is not None,
                "dashboard": self.dashboard is not None,
                "queue_depth": snapshot.gauge("service_queue_depth") or 0.0,
                "jobs_inflight": snapshot.gauge("service_jobs_inflight")
                or 0.0,
            },
        )

    def _metrics(self) -> Response:
        return Response(200, {"metrics": self.metrics.snapshot().as_dict()})

    def _submit(self, body: Optional[bytes]) -> Response:
        assert self.executor is not None  # _route_jobs guards
        if not body:
            return _error(400, "request body must be a JSON object")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return _error(400, f"request body is not valid JSON: {exc}")
        spec = validate_job_request(payload)
        record = self.executor.submit(spec)
        status = 202 if record.coalesced_with is None else 200
        return Response(status, record.status_payload())

    def _list(self, query: Dict[str, str]) -> Response:
        assert self.executor is not None
        state = query.get("state")
        if state is not None and state not in JOB_STATES:
            return _error(
                400,
                f"unknown state {state!r} "
                f"(expected one of {', '.join(JOB_STATES)})",
            )
        limit_raw = query.get("limit")
        limit: Optional[int] = None
        if limit_raw is not None:
            try:
                limit = int(limit_raw)
            except ValueError:
                return _error(400, f"limit must be an integer, got {limit_raw!r}")
        records = self.executor.store.records(
            state=state, kind=query.get("kind"), limit=limit
        )
        return Response(
            200, {"jobs": [record.status_payload() for record in records]}
        )

    def _status(self, job_id: str) -> Response:
        assert self.executor is not None
        record = self.executor.store.resolve(job_id)
        return Response(200, record.status_payload())

    def _result(self, job_id: str) -> Response:
        assert self.executor is not None
        record = self.executor.store.resolve(job_id)
        record = self._follow(record)
        if not record.is_terminal:
            return _error(
                409,
                f"job {record.job_id} is {record.state}; result is not "
                "ready yet",
                state=record.state,
            )
        if record.state != "succeeded":
            return _error(
                409,
                f"job {record.job_id} {record.state}: "
                f"{record.error or 'no result'}",
                state=record.state,
            )
        return Response(
            200,
            {
                "job_id": record.job_id,
                "state": record.state,
                "result": record.result,
                "metrics": record.metrics,
            },
        )

    def _follow(self, record: JobRecord) -> JobRecord:
        """Resolve a follower that was finished via its primary's copy."""
        assert self.executor is not None
        if record.result is None and record.coalesced_with is not None:
            try:
                return self.executor.store.get(record.coalesced_with)
            except ValidationError:
                return record
        return record

    def _cancel(self, job_id: str) -> Response:
        assert self.executor is not None
        record = self.executor.cancel(job_id)
        return Response(200, record.status_payload())


def _event_kinds() -> Tuple[str, ...]:
    from repro.service.events import EVENT_KINDS

    return EVENT_KINDS


def _wrap(outcome: Tuple[int, Dict[str, Any]]) -> Response:
    """A dashboard handler's ``(status, body)`` as a :class:`Response`."""
    status, payload = outcome
    return Response(status, payload)


def _split_job_path(path: str) -> Tuple[Optional[str], str]:
    """``/v1/jobs/<id>[/<action>]`` → ``(id, action)``; else ``(None, "")``."""
    return _split_prefixed(path, "/v1/jobs/")


def _split_dash_run_path(path: str) -> Tuple[Optional[str], str]:
    """``/v1/dash/runs/<ref>[/<action>]`` → ``(ref, action)``."""
    return _split_prefixed(path, "/v1/dash/runs/")


def _split_prefixed(path: str, prefix: str) -> Tuple[Optional[str], str]:
    if not path.startswith(prefix):
        return None, ""
    rest = path[len(prefix):]
    if not rest:
        return None, ""
    if "/" in rest:
        ident, action = rest.split("/", 1)
        if "/" in action:
            return None, ""
        return (ident or None), action
    return rest, ""
