"""HTTP-agnostic request handling for the subsetting service.

:class:`ServiceApp` maps ``(method, path, body)`` to a
:class:`Response` — plain data, no sockets — so the whole API surface is
testable without binding a port, and the actual HTTP layer
(:mod:`repro.service.http`) stays a thin translation shim.

Routes (all JSON)::

    GET  /v1/healthz            liveness + build info + queue gauges
    GET  /v1/metrics            service metrics snapshot
    POST /v1/jobs               submit a job (422 on bad fields, 429 full)
    GET  /v1/jobs               list jobs (?state=, ?kind=, ?limit=)
    GET  /v1/jobs/{id}          one job's status
    GET  /v1/jobs/{id}/result   the result payload (409 until terminal)
    POST /v1/jobs/{id}/cancel   cancel a queued job (409 if running)

Handlers never run simulations themselves — work always goes through
the executor's queue (the SVC001 check enforces this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import ValidationError
from repro.obs.history import build_info
from repro.service.executor import (
    JobConflictError,
    JobExecutor,
    QueueFullError,
)
from repro.service.jobs import JOB_STATES, JobRecord
from repro.service.specs import validate_job_request
from repro.util.validation import FieldValidationError

#: Seconds a 429 response suggests waiting before resubmitting.
RETRY_AFTER_S = 2


@dataclass(frozen=True)
class Response:
    """One API response: status code, JSON-safe body, extra headers."""

    status: int
    body: Dict[str, Any]
    headers: Dict[str, str] = field(default_factory=dict)

    def body_bytes(self) -> bytes:
        return (json.dumps(self.body, sort_keys=True) + "\n").encode("utf-8")


def _error(status: int, message: str, **extra: Any) -> Response:
    headers = extra.pop("headers", {})
    return Response(status, {"error": message, **extra}, headers=headers)


class ServiceApp:
    """Routes validated requests onto a :class:`JobExecutor`."""

    def __init__(self, executor: JobExecutor) -> None:
        self.executor = executor

    # -- entry point -------------------------------------------------------

    def handle(
        self, method: str, target: str, body: Optional[bytes] = None
    ) -> Response:
        """Dispatch one request; never raises for client mistakes."""
        self.executor.metrics.inc("service_requests", method=method)
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        query = {
            key: values[-1]
            for key, values in parse_qs(parts.query).items()
        }
        try:
            return self._route(method, path, query, body)
        except FieldValidationError as exc:
            return Response(
                422,
                {
                    "error": "validation failed",
                    "field_errors": exc.as_payload(),
                },
            )
        except QueueFullError as exc:
            return _error(
                429, str(exc), headers={"Retry-After": str(RETRY_AFTER_S)}
            )
        except JobConflictError as exc:
            return _error(409, str(exc))
        except ValidationError as exc:
            return _error(404, str(exc))

    # -- routing -----------------------------------------------------------

    def _route(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        body: Optional[bytes],
    ) -> Response:
        if path == "/v1/healthz":
            return self._require(method, "GET") or self._healthz()
        if path == "/v1/metrics":
            return self._require(method, "GET") or self._metrics()
        if path == "/v1/jobs":
            if method == "POST":
                return self._submit(body)
            return self._require(method, "GET") or self._list(query)
        job_id, action = _split_job_path(path)
        if job_id is None:
            return _error(404, f"no route for {path}")
        if action == "":
            return self._require(method, "GET") or self._status(job_id)
        if action == "result":
            return self._require(method, "GET") or self._result(job_id)
        if action == "cancel":
            return self._require(method, "POST") or self._cancel(job_id)
        return _error(404, f"no route for {path}")

    @staticmethod
    def _require(method: str, expected: str) -> Optional[Response]:
        if method != expected:
            return _error(
                405,
                f"method {method} not allowed (use {expected})",
                headers={"Allow": expected},
            )
        return None

    # -- handlers ----------------------------------------------------------

    def _healthz(self) -> Response:
        snapshot = self.executor.metrics.snapshot()
        return Response(
            200,
            {
                "status": "ok",
                "build": build_info(),
                "queue_depth": snapshot.gauge("service_queue_depth") or 0.0,
                "jobs_inflight": snapshot.gauge("service_jobs_inflight")
                or 0.0,
            },
        )

    def _metrics(self) -> Response:
        return Response(
            200, {"metrics": self.executor.metrics.snapshot().as_dict()}
        )

    def _submit(self, body: Optional[bytes]) -> Response:
        if not body:
            return _error(400, "request body must be a JSON object")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return _error(400, f"request body is not valid JSON: {exc}")
        spec = validate_job_request(payload)
        record = self.executor.submit(spec)
        status = 202 if record.coalesced_with is None else 200
        return Response(status, record.status_payload())

    def _list(self, query: Dict[str, str]) -> Response:
        state = query.get("state")
        if state is not None and state not in JOB_STATES:
            return _error(
                400,
                f"unknown state {state!r} "
                f"(expected one of {', '.join(JOB_STATES)})",
            )
        limit_raw = query.get("limit")
        limit: Optional[int] = None
        if limit_raw is not None:
            try:
                limit = int(limit_raw)
            except ValueError:
                return _error(400, f"limit must be an integer, got {limit_raw!r}")
        records = self.executor.store.records(
            state=state, kind=query.get("kind"), limit=limit
        )
        return Response(
            200, {"jobs": [record.status_payload() for record in records]}
        )

    def _status(self, job_id: str) -> Response:
        record = self.executor.store.resolve(job_id)
        return Response(200, record.status_payload())

    def _result(self, job_id: str) -> Response:
        record = self.executor.store.resolve(job_id)
        record = self._follow(record)
        if not record.is_terminal:
            return _error(
                409,
                f"job {record.job_id} is {record.state}; result is not "
                "ready yet",
                state=record.state,
            )
        if record.state != "succeeded":
            return _error(
                409,
                f"job {record.job_id} {record.state}: "
                f"{record.error or 'no result'}",
                state=record.state,
            )
        return Response(
            200,
            {
                "job_id": record.job_id,
                "state": record.state,
                "result": record.result,
                "metrics": record.metrics,
            },
        )

    def _follow(self, record: JobRecord) -> JobRecord:
        """Resolve a follower that was finished via its primary's copy."""
        if record.result is None and record.coalesced_with is not None:
            try:
                return self.executor.store.get(record.coalesced_with)
            except ValidationError:
                return record
        return record

    def _cancel(self, job_id: str) -> Response:
        record = self.executor.cancel(job_id)
        return Response(200, record.status_payload())


def _split_job_path(path: str) -> Tuple[Optional[str], str]:
    """``/v1/jobs/<id>[/<action>]`` → ``(id, action)``; else ``(None, "")``."""
    prefix = "/v1/jobs/"
    if not path.startswith(prefix):
        return None, ""
    rest = path[len(prefix):]
    if not rest:
        return None, ""
    if "/" in rest:
        job_id, action = rest.split("/", 1)
        if "/" in action:
            return None, ""
        return (job_id or None), action
    return rest, ""
