"""Subsetting-as-a-service: persistent job queue + HTTP API.

The service layers the existing runtime engine behind a small HTTP
surface so long-running subsetting work can be submitted, queued,
deduplicated, and polled::

    repro serve --port 8630 --workers 2 --job-dir .repro/jobs
    repro jobs submit --url http://127.0.0.1:8630 --kind subset ...

Pieces (each usable on its own):

- :mod:`repro.service.specs` — request validation → :class:`JobSpec`
  with a content-addressed ``job_key``;
- :mod:`repro.service.jobs` — the persistent :class:`JobStore` under
  ``.repro/jobs/`` (crash-safe lifecycle records);
- :mod:`repro.service.executor` — worker pool, in-flight coalescing,
  cache-warm dedup, run-record emission;
- :mod:`repro.service.api` — HTTP-agnostic routing
  (:class:`ServiceApp`), fully testable without sockets;
- :mod:`repro.service.http` — the ``ThreadingHTTPServer`` shim;
- :mod:`repro.service.client` — stdlib client the CLI subcommands use.
"""

from repro.service.api import Response, ServiceApp
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.executor import (
    JobConflictError,
    JobExecutor,
    QueueFullError,
)
from repro.service.jobs import JobRecord, JobStore
from repro.service.specs import JobSpec, validate_job_request

__all__ = [
    "JobConflictError",
    "JobExecutor",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "QueueFullError",
    "Response",
    "ServiceApp",
    "ServiceClient",
    "ServiceClientError",
    "validate_job_request",
]
