"""Minimal stdlib client for the subsetting service.

Wraps :mod:`urllib.request` so the ``repro jobs`` CLI subcommands (and
tests) talk to a running server without any HTTP dependency.  Non-2xx
responses raise :class:`ServiceClientError` carrying the decoded JSON
body, so callers can surface the server's field errors verbatim.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.errors import ReproError


class ServiceClientError(ReproError):
    """A request failed; ``status``/``body`` hold the server's answer.

    ``status`` is 0 when the server was unreachable (connection refused,
    DNS failure) — there is no HTTP answer to report then.
    """

    def __init__(
        self, message: str, status: int = 0, body: Optional[Dict[str, Any]] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.body = dict(body or {})

    @property
    def field_errors(self) -> List[Dict[str, str]]:
        """The 422 body's structured field list (empty otherwise)."""
        entries = self.body.get("field_errors", [])
        return [dict(entry) for entry in entries]


class ServiceClient:
    """One service endpoint, e.g. ``ServiceClient("http://127.0.0.1:8630")``."""

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- transport ---------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """One JSON round-trip; raises :class:`ServiceClientError` on failure."""
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as reply:
                return _decode(reply.read())
        except urllib.error.HTTPError as exc:
            body = _decode(exc.read())
            message = body.get("error") or f"HTTP {exc.code}"
            raise ServiceClientError(
                f"{method} {path} failed ({exc.code}): {message}",
                status=exc.code,
                body=body,
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceClientError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            ) from None

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/metrics")

    def submit(self, job: Dict[str, Any]) -> Dict[str, Any]:
        return self.request("POST", "/v1/jobs", payload=job)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request("POST", f"/v1/jobs/{job_id}/cancel", payload={})

    def list_jobs(
        self,
        state: Optional[str] = None,
        kind: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        query = "&".join(
            f"{key}={value}"
            for key, value in (
                ("state", state), ("kind", kind), ("limit", limit)
            )
            if value is not None
        )
        path = "/v1/jobs" + (f"?{query}" if query else "")
        return list(self.request("GET", path).get("jobs", []))

    # -- conveniences ------------------------------------------------------

    def wait(
        self, job_id: str, timeout_s: float = 300.0, poll_s: float = 0.2
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its status."""
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            if status.get("state") in (
                "succeeded", "failed", "cancelled", "interrupted"
            ):
                return status
            if time.monotonic() >= deadline:
                raise ServiceClientError(
                    f"job {job_id} still {status.get('state')!r} after "
                    f"{timeout_s:.0f}s"
                )
            time.sleep(poll_s)


def _decode(raw: bytes) -> Dict[str, Any]:
    try:
        decoded = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return {}
    return decoded if isinstance(decoded, dict) else {}
