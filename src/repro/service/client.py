"""Minimal stdlib client for the subsetting service.

Wraps :mod:`urllib.request` so the ``repro jobs`` CLI subcommands (and
tests) talk to a running server without any HTTP dependency.  Non-2xx
responses raise :class:`ServiceClientError` carrying the decoded JSON
body, so callers can surface the server's field errors verbatim.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError


class ServiceClientError(ReproError):
    """A request failed; ``status``/``body`` hold the server's answer.

    ``status`` is 0 when the server was unreachable (connection refused,
    DNS failure) — there is no HTTP answer to report then.
    """

    def __init__(
        self, message: str, status: int = 0, body: Optional[Dict[str, Any]] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.body = dict(body or {})

    @property
    def field_errors(self) -> List[Dict[str, str]]:
        """The 422 body's structured field list (empty otherwise)."""
        entries = self.body.get("field_errors", [])
        return [dict(entry) for entry in entries]


class ServiceClient:
    """One service endpoint, e.g. ``ServiceClient("http://127.0.0.1:8630")``."""

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- transport ---------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """One JSON round-trip; raises :class:`ServiceClientError` on failure."""
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as reply:
                return _decode(reply.read())
        except urllib.error.HTTPError as exc:
            body = _decode(exc.read())
            message = body.get("error") or f"HTTP {exc.code}"
            raise ServiceClientError(
                f"{method} {path} failed ({exc.code}): {message}",
                status=exc.code,
                body=body,
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceClientError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            ) from None

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/metrics")

    def submit(self, job: Dict[str, Any]) -> Dict[str, Any]:
        return self.request("POST", "/v1/jobs", payload=job)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request("POST", f"/v1/jobs/{job_id}/cancel", payload={})

    def list_jobs(
        self,
        state: Optional[str] = None,
        kind: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        query = "&".join(
            f"{key}={value}"
            for key, value in (
                ("state", state), ("kind", kind), ("limit", limit)
            )
            if value is not None
        )
        path = "/v1/jobs" + (f"?{query}" if query else "")
        return list(self.request("GET", path).get("jobs", []))

    # -- server-sent events ------------------------------------------------

    def events(
        self,
        kinds: Optional[List[str]] = None,
        limit: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Stream ``(kind, data)`` pairs from ``GET /v1/events``.

        ``kinds`` and ``limit`` are forwarded as query filters so the
        server closes the stream deterministically; ``timeout_s`` is the
        socket read timeout (idle streams send keepalives every ~15 s,
        so anything above that means "server died", not "no news").
        Keepalive comments surface as ``("keepalive", {})`` so callers
        can run periodic liveness checks of their own.  Ends on the
        server's ``shutdown`` event, on ``limit``, or when the
        connection drops.
        """
        query = []
        if kinds:
            query.append("kinds=" + ",".join(kinds))
        if limit is not None:
            query.append(f"limit={limit}")
        url = f"{self.base_url}/v1/events" + (
            "?" + "&".join(query) if query else ""
        )
        req = urllib.request.Request(url, headers={"Accept": "text/event-stream"})
        read_timeout = timeout_s if timeout_s is not None else self.timeout_s
        try:
            reply = urllib.request.urlopen(req, timeout=read_timeout)
        except urllib.error.URLError as exc:
            raise ServiceClientError(
                f"cannot reach service at {self.base_url}: "
                f"{getattr(exc, 'reason', exc)}"
            ) from None
        try:
            kind: Optional[str] = None
            data_lines: List[str] = []
            for raw in reply:
                line = raw.decode("utf-8", "replace").rstrip("\r\n")
                if line.startswith(":"):
                    yield "keepalive", {}
                    continue
                if line.startswith("event:"):
                    kind = line[len("event:"):].strip()
                    continue
                if line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
                    continue
                if line == "" and kind is not None:
                    try:
                        data = json.loads("\n".join(data_lines) or "{}")
                    except json.JSONDecodeError:
                        data = {}
                    yield kind, data if isinstance(data, dict) else {}
                    if kind == "shutdown":
                        return
                    kind, data_lines = None, []
        except OSError:
            return  # stream dropped; caller decides whether that matters
        finally:
            reply.close()

    # -- conveniences ------------------------------------------------------

    def wait(
        self, job_id: str, timeout_s: float = 300.0, poll_s: float = 0.2
    ) -> Dict[str, Any]:
        """Block until the job reaches a terminal state; returns its status.

        Consumes the server's event stream (one idle connection instead
        of a poll loop) and falls back to status polling when the stream
        is unavailable or silent — the terminal answer always comes from
        ``GET /v1/jobs/{id}`` even on the event path, so a missed event
        can never wedge the caller.
        """
        deadline = time.monotonic() + timeout_s
        terminal = ("succeeded", "failed", "cancelled", "interrupted")
        status = self.status(job_id)
        if status.get("state") in terminal:
            return status
        try:
            for kind, data in self.events(
                kinds=["job"], timeout_s=min(60.0, timeout_s)
            ):
                if time.monotonic() >= deadline:
                    break
                if kind == "keepalive":
                    # Close the subscribe race: a transition fired
                    # before the stream opened produces no more events,
                    # so idle beats re-check the store's truth.
                    status = self.status(job_id)
                    if status.get("state") in terminal:
                        return status
                    continue
                if kind != "job" or data.get("job_id") != job_id:
                    continue
                if data.get("state") in terminal:
                    return self.status(job_id)
        except ServiceClientError:
            pass  # no event stream (old server, proxy): poll below
        # Fallback (and post-stream re-check): classic polling.
        while True:
            status = self.status(job_id)
            if status.get("state") in terminal:
                return status
            if time.monotonic() >= deadline:
                raise ServiceClientError(
                    f"job {job_id} still {status.get('state')!r} after "
                    f"{timeout_s:.0f}s"
                )
            time.sleep(poll_s)


def _decode(raw: bytes) -> Dict[str, Any]:
    try:
        decoded = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return {}
    return decoded if isinstance(decoded, dict) else {}
