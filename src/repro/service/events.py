"""Thread-safe fan-out event bus behind ``GET /v1/events``.

The service's sole push channel: the executor publishes typed events at
its existing state-transition points (job lifecycle, run-record
appends, throttled progress), and every open SSE connection holds one
:class:`Subscription` that the HTTP layer drains onto the socket.

Event catalog (the ``kind`` field; see docs/OBSERVABILITY.md):

``hello``
    First event on every stream: server identity + current sequence.
``job``
    One job state transition; data is the job's status payload
    (``job_id``, ``state``, ``kind``, timestamps, progress).
``run_recorded``
    A run record was appended to the run store (``run_id``,
    ``command``).
``progress``
    Throttled task-progress gauges for a running job (at most one per
    second per job, riding the job store's own write throttle).
``shutdown``
    The server is closing; streams end after this event.

Concurrency discipline (the CONC rules pin this): the bus lock guards
only the in-memory subscriber set and sequence counter; delivery uses
``put_nowait`` on bounded per-subscriber queues, so a stalled consumer
can never block a publisher — its queue simply drops oldest-first and
the drop is counted on ``events_dropped``.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

#: Bounded depth of each subscriber's delivery queue.
DEFAULT_QUEUE_SIZE = 256

#: Seconds between SSE comment keepalives on an idle stream.
KEEPALIVE_INTERVAL_S = 15.0

#: The documented event kinds (docs/OBSERVABILITY.md lists them).
EVENT_KINDS = ("hello", "job", "run_recorded", "progress", "shutdown")


@dataclass(frozen=True)
class Event:
    """One published event: monotonic sequence, kind, JSON-safe data."""

    seq: int
    kind: str
    data: Mapping[str, Any] = field(default_factory=dict)
    created_unix: float = 0.0

    def sse_bytes(self) -> bytes:
        """The event in server-sent-events wire format."""
        payload = json.dumps(
            {"seq": self.seq, "created_unix": self.created_unix, **self.data},
            sort_keys=True,
        )
        return (
            f"event: {self.kind}\nid: {self.seq}\ndata: {payload}\n\n"
        ).encode("utf-8")


def keepalive_bytes() -> bytes:
    """An SSE comment line; keeps idle connections from timing out."""
    return b": keepalive\n\n"


class Subscription:
    """One consumer's bounded delivery queue; context manager closes it."""

    def __init__(self, bus: "EventBus", q: "queue.Queue[Event]") -> None:
        self._bus = bus
        self._queue = q

    def get(self, timeout: Optional[float] = None) -> Optional[Event]:
        """The next event, or ``None`` after ``timeout`` seconds idle."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:
        self._bus._unsubscribe(self._queue)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __iter__(self) -> Iterator[Event]:
        while True:
            event = self.get(timeout=None)
            if event is None or event.kind == "shutdown":
                return
            yield event


class EventBus:
    """Fan-out publisher: every subscriber sees every event, bounded.

    ``publish`` never blocks: the critical section is in-memory
    bookkeeping only, and delivery is ``put_nowait`` with drop-oldest
    overflow per subscriber.  ``close`` broadcasts a final ``shutdown``
    event so streaming handlers unwind promptly.
    """

    def __init__(self, queue_size: int = DEFAULT_QUEUE_SIZE) -> None:
        self._lock = threading.Lock()
        self._subscribers: Dict[int, "queue.Queue[Event]"] = {}
        self._seq = 0
        self._dropped = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    def subscribe(self) -> Subscription:
        """Register a new consumer; it sees events published from now on."""
        q: "queue.Queue[Event]" = queue.Queue(maxsize=DEFAULT_QUEUE_SIZE)
        with self._lock:
            self._subscribers[id(q)] = q
        return Subscription(self, q)

    def _unsubscribe(self, q: "queue.Queue[Event]") -> None:
        with self._lock:
            self._subscribers.pop(id(q), None)

    def publish(self, kind: str, /, **data: Any) -> Event:
        """Deliver one event to every current subscriber; returns it.

        ``kind`` is positional-only so payloads carrying their own
        ``kind`` field (job records do) pass through unchanged.
        """
        with self._lock:
            if self._closed and kind != "shutdown":
                # Late publishers after close are a shutdown race, not
                # an error; the event just has nobody left to care.
                targets: Tuple["queue.Queue[Event]", ...] = ()
            else:
                targets = tuple(self._subscribers.values())
            self._seq += 1
            event = Event(
                seq=self._seq,
                kind=kind,
                data=dict(data),
                created_unix=time.time(),
            )
        dropped = 0
        for q in targets:
            try:
                q.put_nowait(event)
            except queue.Full:
                try:
                    q.get_nowait()  # drop oldest; the stream stays live
                except queue.Empty:
                    pass
                try:
                    q.put_nowait(event)
                except queue.Full:
                    dropped += 1
        if dropped:
            with self._lock:
                self._dropped += dropped
        return event

    def close(self) -> None:
        """Broadcast ``shutdown`` and refuse further fan-out."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.publish("shutdown", reason="server closing")
