"""Live progress telemetry for long-running task graphs.

A :class:`ProgressReporter` receives completion and heartbeat callbacks
from the task engine and turns them into two things at once:

- human-readable progress lines on stderr (``--progress``): tasks done,
  frames simulated, frames/sec over the run so far, elapsed time, and a
  frames-rate-based ETA — so a long sweep is observable *while running*,
  not just post-mortem;
- ``progress_*`` gauges on the run's metrics registry, so the final
  snapshot (and the appended run record) carries the last observed
  throughput.

Emission is throttled to ``interval_s`` between lines (completion of the
final task always emits), so a thousand fast tasks cost a handful of
writes.  The default :data:`NULL_PROGRESS` makes every callback a no-op;
the engine never branches on "is progress on".
"""

from __future__ import annotations

import sys
import time
from typing import IO, Any, Optional


class NullProgress:
    """Disabled progress: every callback is a cheap no-op."""

    enabled = False

    #: Pool wait timeout when no heartbeats are wanted (block forever).
    heartbeat_interval_s: Optional[float] = None

    def begin(self, total_tasks: int) -> None:
        return None

    def task_done(self, done: int, total: int, frames: int) -> None:
        return None

    def heartbeat(self, done: int, total: int, frames: int) -> None:
        return None

    def finish(self, done: int, total: int, frames: int) -> None:
        return None


#: Shared disabled reporter; safe from any thread.
NULL_PROGRESS = NullProgress()


class ProgressReporter:
    """Throttled progress lines plus ``progress_*`` gauges.

    ``metrics`` is the run's :class:`~repro.obs.metrics.Metrics`
    registry (optional — a reporter can be purely textual).  ``stream``
    defaults to stderr so progress never pollutes the stdout tables.
    """

    enabled = True

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        metrics: Optional[Any] = None,
        interval_s: float = 0.5,
        heartbeat_interval_s: float = 2.0,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._metrics = metrics
        self._interval_s = float(interval_s)
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self._started: Optional[float] = None
        self._last_emit = float("-inf")
        self.lines_emitted = 0

    # -- engine callbacks --------------------------------------------------

    def begin(self, total_tasks: int) -> None:
        self._started = time.perf_counter()
        self._last_emit = float("-inf")
        self._gauge("progress_tasks_total", float(total_tasks))

    def task_done(self, done: int, total: int, frames: int) -> None:
        self._record(done, total, frames)
        final = done >= total
        if final or self._due():
            self._emit("progress", done, total, frames)

    def heartbeat(self, done: int, total: int, frames: int) -> None:
        self._record(done, total, frames)
        if self._due():
            self._emit("heartbeat", done, total, frames)

    def finish(self, done: int, total: int, frames: int) -> None:
        self._record(done, total, frames)

    # -- internals ---------------------------------------------------------

    def _elapsed(self) -> float:
        if self._started is None:
            self._started = time.perf_counter()
        return time.perf_counter() - self._started

    def _due(self) -> bool:
        return time.perf_counter() - self._last_emit >= self._interval_s

    def _rate(self, frames: int, elapsed: float) -> float:
        return frames / elapsed if elapsed > 0 else 0.0

    def _eta_s(self, done: int, total: int, elapsed: float) -> Optional[float]:
        if done <= 0 or done >= total or elapsed <= 0:
            return None
        return elapsed * (total - done) / done

    def _gauge(self, name: str, value: float) -> None:
        if self._metrics is not None:
            self._metrics.gauge(name, value)

    def _record(self, done: int, total: int, frames: int) -> None:
        elapsed = self._elapsed()
        self._gauge("progress_tasks_done", float(done))
        self._gauge("progress_tasks_total", float(total))
        self._gauge("progress_frames_per_s", self._rate(frames, elapsed))
        eta = self._eta_s(done, total, elapsed)
        if eta is not None:
            self._gauge("progress_eta_s", eta)

    def _emit(self, kind: str, done: int, total: int, frames: int) -> None:
        elapsed = self._elapsed()
        parts = [
            f"tasks {done}/{total}"
            + (f" ({100.0 * done / total:.0f}%)" if total else ""),
            f"frames {frames} ({self._rate(frames, elapsed):.1f}/s)",
            f"elapsed {elapsed:.1f}s",
        ]
        eta = self._eta_s(done, total, elapsed)
        if eta is not None:
            parts.append(f"eta {eta:.1f}s")
        self._stream.write(f"[{kind}] " + " | ".join(parts) + "\n")
        self._stream.flush()
        self._last_emit = time.perf_counter()
        self.lines_emitted += 1
