"""repro.obs — observability for the pipeline, runtime, and simulator.

Pathfinding at scale fans thousands of frame simulations over a process
pool; this subsystem makes those runs explainable:

- :mod:`repro.obs.spans` — hierarchical span tracing
  (pipeline -> stage -> task -> frame), with worker-recorded spans
  merged back into the parent's timeline;
- :mod:`repro.obs.metrics` — labeled counters, gauges, and fixed-bucket
  histograms (``frames_simulated{phase=...}``, per-worker task wall
  time, cache lookup latency, cluster sizes);
- :mod:`repro.obs.export` — Chrome trace-event JSON (loadable in
  Perfetto / ``chrome://tracing``) and span JSONL;
- :mod:`repro.obs.manifest` — ``run.json`` reproducibility manifests
  (config/trace digests, seeds, CLI args, package version, host);
- :mod:`repro.obs.context` — ambient (tracer, metrics) propagation so
  deep call sites (simgpu kernels, task functions) need no plumbing;
- :mod:`repro.obs.logjson` — structured JSON-lines logging for the CLI;
- :mod:`repro.obs.history` — the append-only run store under
  ``.repro/runs/`` every CLI run and benchmark appends to;
- :mod:`repro.obs.analyze` — statistical perf-regression gates over
  run-store windows and span-rollup hotspot profiling;
- :mod:`repro.obs.progress` — live progress/heartbeat telemetry for
  long-running task graphs (``--progress``).

The disabled path is the default and costs essentially nothing: the
:data:`~repro.obs.spans.NULL_TRACER` turns every span into a shared
no-op context manager.  ``repro.runtime.telemetry.Telemetry`` remains as
a back-compat shim over :class:`~repro.obs.metrics.Metrics`.

See ``docs/OBSERVABILITY.md`` for the span model, metric naming
conventions, and how to open a trace in Perfetto.
"""

from repro.obs.artifacts import (
    ARTIFACTS_VERSION,
    artifact_link,
    artifacts_dir_for,
    load_artifacts,
    pipeline_artifact_sections,
    read_index,
    sweep_artifact_sections,
    write_artifacts,
)
from repro.obs.analyze import (
    RegressionReport,
    SpanRollup,
    compare_to_baseline,
    render_regressions,
    rollup_spans,
)
from repro.obs.context import ObsContext, activate_obs, current_obs, current_tracer
from repro.obs.export import (
    chrome_trace_document,
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.history import (
    RUN_STORE_VERSION,
    RunRecord,
    RunStore,
    new_run_id,
    record_run,
)
from repro.obs.logjson import JsonLogger, NullLogger
from repro.obs.manifest import MANIFEST_VERSION, RunManifest, load_manifest
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    HistogramSnapshot,
    Metrics,
    MetricsSnapshot,
    label_key,
)
from repro.obs.progress import NULL_PROGRESS, NullProgress, ProgressReporter
from repro.obs.spans import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "ARTIFACTS_VERSION",
    "DEFAULT_BUCKETS",
    "HistogramSnapshot",
    "JsonLogger",
    "MANIFEST_VERSION",
    "Metrics",
    "MetricsSnapshot",
    "NULL_PROGRESS",
    "NULL_TRACER",
    "NullLogger",
    "NullProgress",
    "NullTracer",
    "ObsContext",
    "ProgressReporter",
    "RUN_STORE_VERSION",
    "RegressionReport",
    "RunManifest",
    "RunRecord",
    "RunStore",
    "Span",
    "SpanRollup",
    "Tracer",
    "activate_obs",
    "artifact_link",
    "artifacts_dir_for",
    "chrome_trace_document",
    "chrome_trace_events",
    "compare_to_baseline",
    "current_obs",
    "current_tracer",
    "label_key",
    "load_artifacts",
    "load_manifest",
    "new_run_id",
    "pipeline_artifact_sections",
    "read_index",
    "record_run",
    "render_regressions",
    "rollup_spans",
    "sweep_artifact_sections",
    "validate_chrome_trace",
    "write_artifacts",
    "write_chrome_trace",
    "write_spans_jsonl",
]
