"""Read-only aggregation behind the exploration dashboard.

Everything the dashboard shows is computed here, from artifacts that
already exist on disk: the append-only run store (``.repro/runs/``),
span JSONL exports (``--trace-out spans.jsonl``), committed
``BENCH_*.json`` trajectories, and the persistent job store.  The
module is deliberately a *consumer-only* layer — it never imports
``repro.simgpu`` or any simulation entry point (the OBS002 check pins
that), so mounting it on a server can never turn a dashboard request
into an unbounded simulation.

Shared contracts:

- :func:`run_summary` is the one listing shape ``repro runs list
  --format json`` and ``GET /v1/dash/runs`` both emit, so scripts and
  the frontend parse a single schema;
- :func:`series_trends` reuses the exact regression-gate verdicts of
  :func:`repro.obs.analyze.compare_to_baseline`, so a sparkline flagged
  red on the dashboard is the same series ``repro runs regress`` would
  fail in CI.
"""

from __future__ import annotations

import json
import time
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.obs.analyze import (
    DEFAULT_ALPHA,
    DEFAULT_REL_THRESHOLD,
    compare_to_baseline,
    load_spans_jsonl,
    rollup_spans,
    series_direction,
)
from repro.obs.artifacts import artifact_link
from repro.obs.history import RunRecord, RunStore

#: Bump when any dashboard payload changes meaning.
DASH_PAYLOAD_VERSION = 1

#: Series shown when the caller does not pass an explicit selection.
DEFAULT_SERIES_SELECT = ("derived:*", "stage:*", "counter:frames_simulated")

#: Flame-tree nodes below this share of the root total are folded into
#: one ``(other)`` bucket so a thousand tiny spans cannot bloat payloads.
FLAME_MIN_FRACTION = 0.001


# -- run listings -----------------------------------------------------------


def run_summary(record: RunRecord) -> Dict[str, Any]:
    """One run as the flat listing row every consumer shares.

    This is the contract between ``repro runs list --format json``,
    ``GET /v1/dash/runs``, and any script scraping either: change it and
    both surfaces change together.
    """
    metrics = record.metrics
    link = artifact_link(record.extra)
    return {
        "run_id": record.run_id,
        "command": record.command,
        "created_unix": record.created_unix,
        "created_iso": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(record.created_unix)
        ),
        "git_sha": record.git_sha,
        "jobs": record.jobs,
        "argv": list(record.argv),
        "duration_s": metrics.get("derived:duration_s"),
        "frames_per_s": metrics.get("derived:frames_per_s"),
        "cache_hit_rate": metrics.get("derived:cache_hit_rate"),
        "frames_simulated": metrics.get("counter:frames_simulated"),
        "precomp_store_hits": metrics.get("counter:precomp_store_hits"),
        "precomp_store_misses": metrics.get("counter:precomp_store_misses"),
        "precomp_store_publishes": metrics.get(
            "counter:precomp_store_publishes"
        ),
        "kernels_backend": record.environment.get("kernels_backend"),
        "num_series": len(record.all_series()),
        "num_stages": len(record.stages),
        "artifact_sections": list(link["sections"]) if link else [],
    }


def runs_payload(
    store: RunStore,
    command: Optional[str] = None,
    limit: Optional[int] = None,
) -> Dict[str, Any]:
    """The ``GET /v1/dash/runs`` body: newest-last summaries."""
    records = store.records(command=command, limit=limit)
    commands = sorted({r.command for r in store.records()})
    return {
        "version": DASH_PAYLOAD_VERSION,
        "store": str(store.root),
        "commands": commands,
        "count": len(records),
        "runs": [run_summary(record) for record in records],
    }


def run_detail_payload(store: RunStore, ref: str) -> Dict[str, Any]:
    """The ``GET /v1/dash/runs/{ref}`` body: the full record."""
    record = store.resolve(ref)
    payload = record.to_dict()
    payload["summary"] = run_summary(record)
    payload["span_artifact"] = find_span_artifact(record)
    return payload


def find_span_artifact(record: RunRecord) -> Optional[str]:
    """The run's span JSONL export, recovered from its recorded argv.

    Simulating commands record ``--trace-out FILE`` in their argv; when
    FILE is a span JSONL export that still exists (relative to the
    current working directory, where the CLI ran), the dashboard can
    offer the flamegraph without any extra bookkeeping.  Returns
    ``None`` when the run exported nothing usable.
    """
    argv = list(record.argv)
    candidate: Optional[str] = None
    for index, token in enumerate(argv):
        if token == "--trace-out" and index + 1 < len(argv):
            candidate = argv[index + 1]
        elif token.startswith("--trace-out="):
            candidate = token.split("=", 1)[1]
    if candidate and candidate.endswith(".jsonl") and Path(candidate).is_file():
        return candidate
    return None


# -- series trends ----------------------------------------------------------


def series_trends(
    records: Sequence[RunRecord],
    select: Optional[Sequence[str]] = None,
    *,
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    alpha: float = DEFAULT_ALPHA,
) -> Dict[str, Any]:
    """Per-series value trails across a window of one command's runs.

    ``records`` must be oldest-first (the run-store order).  Each
    matching series gets its point trail plus — when at least two runs
    exist — the regression-gate verdict of the newest run against the
    earlier window, straight from :func:`compare_to_baseline`.  The
    dashboard's red sparkline and a CI ``repro runs regress`` failure
    are therefore the same fact.
    """
    patterns = list(select) if select else list(DEFAULT_SERIES_SELECT)
    names: List[str] = sorted(
        {
            name
            for record in records
            for name in record.all_series()
            if any(fnmatchcase(name, pattern) for pattern in patterns)
        }
    )
    gates: Dict[str, Dict[str, Any]] = {}
    if len(records) >= 2:
        report = compare_to_baseline(
            records[-1],
            list(records[:-1]),
            rel_threshold=rel_threshold,
            alpha=alpha,
            select=patterns,
        )
        gates = {result.metric: result.as_dict() for result in report.results}
    series = []
    for name in names:
        points = []
        for record in records:
            value = record.all_series().get(name)
            if value is None:
                continue
            points.append(
                {
                    "run_id": record.run_id,
                    "created_unix": record.created_unix,
                    "value": value,
                }
            )
        series.append(
            {
                "name": name,
                "direction": series_direction(name),
                "points": points,
                "gate": gates.get(name),
            }
        )
    return {
        "version": DASH_PAYLOAD_VERSION,
        "command": records[-1].command if records else None,
        "window": len(records),
        "run_ids": [record.run_id for record in records],
        "series": series,
    }


# -- span artifacts: flame tree + frame timeline ----------------------------


def span_flame_tree(
    spans: Sequence[Mapping[str, Any]],
    min_fraction: float = FLAME_MIN_FRACTION,
) -> List[Dict[str, Any]]:
    """Spans folded into an aggregated name-tree (the flamegraph shape).

    Concrete spans sharing a ``(name, category)`` under the same
    aggregated parent merge into one node carrying summed total/self
    time and a count; children recurse the same way, so ten thousand
    ``simulate_frame`` spans render as one wide box instead of ten
    thousand slivers.  Spans whose ``parent_id`` matches nothing in the
    export (orphans — :func:`~repro.obs.export.validate_chrome_trace`
    flags them) root at the top rather than vanishing.  Nodes below
    ``min_fraction`` of the grand total fold into ``(other)``.
    """
    by_id = {str(s.get("span_id")): s for s in spans if s.get("span_id")}
    children: Dict[Optional[str], List[Mapping[str, Any]]] = {}
    for span in spans:
        parent = span.get("parent_id")
        key = str(parent) if parent is not None and str(parent) in by_id else None
        children.setdefault(key, []).append(span)
    roots = children.get(None, [])
    grand_total = sum(int(s.get("duration_ns", 0)) for s in roots) or 1

    def fold(group: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
        merged: Dict[Any, Dict[str, Any]] = {}
        for span in group:
            key = (str(span.get("name", "<unnamed>")), str(span.get("category", "")))
            entry = merged.setdefault(
                key, {"total_ns": 0, "count": 0, "spans": []}
            )
            entry["total_ns"] += int(span.get("duration_ns", 0))
            entry["count"] += 1
            entry["spans"].append(span)
        nodes: List[Dict[str, Any]] = []
        folded_ns = 0
        folded_count = 0
        for (name, category), entry in sorted(
            merged.items(), key=lambda item: -item[1]["total_ns"]
        ):
            if entry["total_ns"] / grand_total < min_fraction:
                folded_ns += entry["total_ns"]
                folded_count += entry["count"]
                continue
            child_spans = [
                child
                for span in entry["spans"]
                for child in children.get(str(span.get("span_id")), [])
            ]
            child_nodes = fold(child_spans)
            child_ns = sum(
                int(c.get("duration_ns", 0)) for c in child_spans
            )
            nodes.append(
                {
                    "name": name,
                    "category": category,
                    "count": entry["count"],
                    "total_s": entry["total_ns"] / 1e9,
                    "self_s": max(0, entry["total_ns"] - child_ns) / 1e9,
                    "children": child_nodes,
                }
            )
        if folded_count:
            nodes.append(
                {
                    "name": "(other)",
                    "category": "",
                    "count": folded_count,
                    "total_s": folded_ns / 1e9,
                    "self_s": folded_ns / 1e9,
                    "children": [],
                }
            )
        return nodes

    return fold(roots)


def frame_timeline(
    spans: Sequence[Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    """Per-frame rows from ``simulate_frame`` spans, labeled by phase.

    Each simulated frame appears once per pipeline phase it ran in
    (``ground_truth`` and ``representatives`` both simulate their
    frames); the phase is the nearest ancestor span with category
    ``stage``.  Rows carry the frame index, wall duration, draw count,
    and whatever per-stage cycle args the simulator attached — the raw
    material for the dashboard's cluster/phase timeline.
    """
    by_id = {str(s.get("span_id")): s for s in spans if s.get("span_id")}
    rows: List[Dict[str, Any]] = []
    for span in spans:
        if span.get("name") != "simulate_frame":
            continue
        args = span.get("args") or {}
        frame = args.get("frame")
        if frame is None:
            continue
        phase = ""
        cursor: Optional[Mapping[str, Any]] = span
        for _ in range(64):  # cycle guard on malformed exports
            parent = cursor.get("parent_id") if cursor else None
            cursor = by_id.get(str(parent)) if parent is not None else None
            if cursor is None:
                break
            if str(cursor.get("category", "")) == "stage":
                phase = str(cursor.get("name", ""))
                break
        cycles = {
            key[: -len("_cycles")]: value
            for key, value in args.items()
            if isinstance(key, str) and key.endswith("_cycles")
        }
        rows.append(
            {
                "frame": int(frame),
                "phase": phase,
                "start_ns": int(span.get("start_ns", 0)),
                "duration_ns": int(span.get("duration_ns", 0)),
                "draws": args.get("draws"),
                "time_ns": args.get("time_ns"),
                "cycles": cycles,
            }
        )
    rows.sort(key=lambda row: (row["start_ns"], row["frame"]))
    return rows


def spans_payload(path: Union[str, Path]) -> Dict[str, Any]:
    """The ``GET /v1/dash/runs/{ref}/spans`` body for one JSONL export."""
    spans = load_spans_jsonl(path)
    return {
        "version": DASH_PAYLOAD_VERSION,
        "source": str(path),
        "num_spans": len(spans),
        "rollup": [rollup.as_dict() for rollup in rollup_spans(spans)],
        "flame": span_flame_tree(spans),
        "frames": frame_timeline(spans),
    }


# -- artifact sidecar views: cluster scatter + fidelity ---------------------


def _pca_2d(matrix: Sequence[Sequence[float]]) -> Dict[str, Any]:
    """2-component PCA of one frame's standardized feature matrix.

    numpy-only by design (the dashboard layer must not grow heavier
    deps): center, SVD, project onto the top two right singular
    vectors.  Degenerate shapes — one draw, one feature, all-constant
    columns — degrade to zero-filled components rather than raising.
    """
    import numpy as np

    data = np.asarray(matrix, dtype=np.float64)
    if data.ndim != 2 or data.size == 0:
        return {"points": [], "explained_variance": [0.0, 0.0]}
    centered = data - data.mean(axis=0, keepdims=True)
    coords = np.zeros((data.shape[0], 2))
    explained = [0.0, 0.0]
    try:
        _, singular, vt = np.linalg.svd(centered, full_matrices=False)
    except np.linalg.LinAlgError:
        singular, vt = np.zeros(0), np.zeros((0, data.shape[1]))
    components = min(2, vt.shape[0])
    if components:
        coords[:, :components] = centered @ vt[:components].T
        denominator = float(np.sum(singular**2))
        if denominator > 0:
            for i in range(components):
                explained[i] = float(singular[i] ** 2 / denominator)
    return {
        "points": [[float(x), float(y)] for x, y in coords],
        "explained_variance": explained,
    }


def clusters_payload(store: RunStore, ref: str) -> Dict[str, Any]:
    """The ``GET /v1/dash/runs/{ref}/clusters`` body.

    Projects each frame's standardized feature matrix (straight from
    the run's sidecar — never recomputed, never re-simulated) to 2D
    via PCA, tagging every draw with its cluster assignment and
    whether it is that cluster's representative.  Raises
    :class:`~repro.errors.ValidationError` when the run has no sidecar
    or no ``clusters`` section; the service maps that to a typed 404.
    """
    record = store.resolve(ref)
    section = store.load_artifact_section(record, "clusters")
    frames = []
    for entry in section.get("frames", []):
        projection = _pca_2d(entry.get("features", []))
        representatives = {int(r) for r in entry.get("representatives", [])}
        labels = [int(v) for v in entry.get("labels", [])]
        points = [
            {
                "draw": draw,
                "x": xy[0],
                "y": xy[1],
                "cluster": labels[draw] if draw < len(labels) else -1,
                "representative": draw in representatives,
            }
            for draw, xy in enumerate(projection["points"])
        ]
        frames.append(
            {
                "frame": entry.get("frame"),
                "num_draws": entry.get("num_draws"),
                "num_clusters": entry.get("num_clusters"),
                "representatives": sorted(representatives),
                "weights": list(entry.get("weights", [])),
                "explained_variance": projection["explained_variance"],
                "points": points,
            }
        )
    return {
        "version": DASH_PAYLOAD_VERSION,
        "run_id": record.run_id,
        "command": record.command,
        "feature_names": list(section.get("feature_names", [])),
        "normalize": section.get("normalize"),
        "frames": frames,
    }


def fidelity_payload(store: RunStore, ref: str) -> Dict[str, Any]:
    """The ``GET /v1/dash/runs/{ref}/fidelity`` body.

    Ships the per-frame predicted-vs-measured curves (E1: in-context
    prediction error, E2: isolated-replay error) and per-phase error
    bars exactly as the pipeline serialized them — the numbers here are
    the printed report's numbers, not a recomputation.  Raises
    :class:`~repro.errors.ValidationError` without a sidecar.
    """
    record = store.resolve(ref)
    fidelity = store.load_artifact_section(record, "fidelity")
    frames = list(fidelity.get("frames", []))

    phase_of: Dict[int, int] = {}
    try:
        subset = store.load_artifact_section(record, "subset")
    except Exception:
        subset = {}
    phases_meta = subset.get("phases", {}) if isinstance(subset, Mapping) else {}
    for interval, phase in zip(
        phases_meta.get("intervals", []), phases_meta.get("phase_ids", [])
    ):
        for frame in range(int(interval["start"]), int(interval["end"])):
            phase_of[frame] = int(phase)

    groups: Dict[int, List[Mapping[str, Any]]] = {}
    for row in frames:
        phase = phase_of.get(int(row.get("frame", -1)), -1)
        groups.setdefault(phase, []).append(row)
    phase_errors = [
        {
            "phase": phase,
            "num_frames": len(rows),
            "mean_error": sum(r["error"] for r in rows) / len(rows),
            "max_error": max(r["error"] for r in rows),
            "mean_isolated_error": (
                sum(r["isolated_error"] for r in rows) / len(rows)
            ),
            "mean_outlier_rate": (
                sum(r["outlier_rate"] for r in rows) / len(rows)
            ),
        }
        for phase, rows in sorted(groups.items())
        if rows
    ]
    return {
        "version": DASH_PAYLOAD_VERSION,
        "run_id": record.run_id,
        "command": record.command,
        "trace": fidelity.get("trace"),
        "config": fidelity.get("config"),
        "summary": dict(fidelity.get("summary", {})),
        "frames": frames,
        "phases": phase_errors,
        "subset": {
            key: subset.get(key)
            for key in (
                "frame_positions",
                "frame_weights",
                "frame_fraction",
                "draw_fraction",
            )
            if isinstance(subset, Mapping) and key in subset
        },
    }


# -- flame diff: two span exports aligned into one tree ---------------------


def _merge_flame_nodes(
    nodes_a: Sequence[Mapping[str, Any]],
    nodes_b: Sequence[Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    index_a = {(n["name"], n["category"]): n for n in nodes_a}
    index_b = {(n["name"], n["category"]): n for n in nodes_b}
    keys = list(index_a)
    keys.extend(k for k in index_b if k not in index_a)
    merged: List[Dict[str, Any]] = []
    for key in keys:
        node_a = index_a.get(key)
        node_b = index_b.get(key)
        empty = {"count": 0, "total_s": 0.0, "self_s": 0.0, "children": []}
        side_a = node_a or empty
        side_b = node_b or empty
        merged.append(
            {
                "name": key[0],
                "category": key[1],
                "a": {
                    "count": side_a["count"],
                    "total_s": side_a["total_s"],
                    "self_s": side_a["self_s"],
                },
                "b": {
                    "count": side_b["count"],
                    "total_s": side_b["total_s"],
                    "self_s": side_b["self_s"],
                },
                "delta_total_s": side_b["total_s"] - side_a["total_s"],
                "delta_self_s": side_b["self_s"] - side_a["self_s"],
                "children": _merge_flame_nodes(
                    side_a["children"], side_b["children"]
                ),
            }
        )
    merged.sort(key=lambda n: -abs(n["delta_total_s"]))
    return merged


def flamediff_payload(
    path_a: Union[str, Path], path_b: Union[str, Path]
) -> Dict[str, Any]:
    """The ``GET /v1/dash/flamediff?a=&b=`` body.

    Both span exports fold into flame trees
    (:func:`span_flame_tree`), which are then aligned into a single
    tree by their ``(name, category)`` path; each merged node carries
    both sides' totals plus self/total deltas (``b - a``).  Diffing an
    export against itself therefore yields all-zero deltas — the
    identity the tests pin.
    """
    spans_a = load_spans_jsonl(path_a)
    spans_b = load_spans_jsonl(path_b)
    tree_a = span_flame_tree(spans_a)
    tree_b = span_flame_tree(spans_b)

    def total(tree: Sequence[Mapping[str, Any]]) -> float:
        return sum(node["total_s"] for node in tree)

    return {
        "version": DASH_PAYLOAD_VERSION,
        "a": {
            "source": str(path_a),
            "num_spans": len(spans_a),
            "total_s": total(tree_a),
        },
        "b": {
            "source": str(path_b),
            "num_spans": len(spans_b),
            "total_s": total(tree_b),
        },
        "delta_total_s": total(tree_b) - total(tree_a),
        "tree": _merge_flame_nodes(tree_a, tree_b),
    }


# -- committed benchmark trajectory -----------------------------------------


def bench_trajectory(root: Union[str, Path] = ".") -> Dict[str, Any]:
    """Every committed ``BENCH_*.json`` under ``root``, by stem.

    Unreadable files are reported in ``problems`` rather than raised —
    the dashboard should render what exists, not die on one bad file.
    """
    base = Path(root)
    benches: Dict[str, Any] = {}
    problems: List[str] = []
    for path in sorted(base.glob("BENCH_*.json")):
        try:
            with open(path, "r", encoding="utf-8") as stream:
                benches[path.stem] = json.load(stream)
        except (OSError, ValueError) as exc:
            problems.append(f"{path.name}: {exc}")
    return {
        "version": DASH_PAYLOAD_VERSION,
        "root": str(base),
        "benches": benches,
        "problems": problems,
    }
