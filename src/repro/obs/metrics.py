"""Labeled metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`Metrics` object per run (the runtime's telemetry owns it).
Every instrument is identified by a name plus a label set, e.g.::

    metrics.inc("frames_simulated", 64, phase="ground_truth")
    metrics.observe("task_wall_s", 0.31, worker="12345")
    metrics.gauge("workers", 8)

Histograms use *fixed* buckets chosen at first observation (default: one
bucket per decade), so merging two registries — the parent folding a
worker's report back in — is a plain element-wise add, never a re-bin.

Worker processes cannot share the parent's registry, so they record into
a local :class:`Metrics`, ship :meth:`Metrics.dump` with their results,
and the engine folds it back with :meth:`Metrics.merge` — mirroring the
existing counter-merge pattern.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

#: Default histogram buckets: one per decade, covering everything from
#: sub-microsecond latencies to billions of cycles.  Values above the
#: last bound land in the overflow bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(10.0 ** e for e in range(-7, 10))

LabelKey = Tuple[Tuple[str, str], ...]
MetricKey = Tuple[str, LabelKey]


def label_key(labels: Mapping[str, Any]) -> LabelKey:
    """Canonical, hashable form of a label mapping."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Histogram:
    """Mutable fixed-bucket histogram (counts per bucket + moments)."""

    __slots__ = ("buckets", "counts", "total", "count", "min", "max")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +1 overflow bucket
        self.total = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.buckets, value)] += 1
        self.total += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "_Histogram") -> None:
        if tuple(other.buckets) != tuple(self.buckets):
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{other.buckets!r} vs {self.buckets!r}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.total += other.total
        self.count += other.count
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def as_tuple(self) -> tuple:
        return (
            tuple(self.buckets),
            tuple(self.counts),
            self.total,
            self.count,
            self.min,
            self.max,
        )

    @classmethod
    def from_tuple(cls, data: tuple) -> "_Histogram":
        hist = cls(tuple(data[0]))
        hist.counts = list(data[1])
        hist.total = float(data[2])
        hist.count = int(data[3])
        hist.min = float(data[4])
        hist.max = float(data[5])
        return hist


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable view of one histogram series."""

    buckets: Tuple[float, ...]
    counts: Tuple[int, ...]
    total: float
    count: int
    min: float
    max: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable copy of every series at one moment."""

    counters: Mapping[MetricKey, int]
    gauges: Mapping[MetricKey, float]
    histograms: Mapping[MetricKey, HistogramSnapshot]

    def counter(self, name: str, **labels: Any) -> int:
        return int(self.counters.get((name, label_key(labels)), 0))

    def counter_total(self, name: str) -> int:
        """Sum of a counter across all label sets."""
        return int(
            sum(v for (n, _), v in self.counters.items() if n == name)
        )

    def counter_totals(self) -> Dict[str, int]:
        """Every counter aggregated over labels, by name."""
        totals: Dict[str, int] = {}
        for (name, _), value in self.counters.items():
            totals[name] = totals.get(name, 0) + int(value)
        return totals

    def gauge(self, name: str, **labels: Any) -> Optional[float]:
        return self.gauges.get((name, label_key(labels)))

    def histogram(self, name: str, **labels: Any) -> Optional[HistogramSnapshot]:
        return self.histograms.get((name, label_key(labels)))

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (``--metrics-out``, manifests)."""

        def series(key: MetricKey) -> Dict[str, Any]:
            name, labels = key
            return {"name": name, "labels": dict(labels)}

        return {
            "counters": [
                {**series(key), "value": int(value)}
                for key, value in sorted(self.counters.items())
            ],
            "gauges": [
                {**series(key), "value": float(value)}
                for key, value in sorted(self.gauges.items())
            ],
            "histograms": [
                {
                    **series(key),
                    "buckets": [float(b) for b in hist.buckets],
                    "counts": [int(c) for c in hist.counts],
                    "sum": float(hist.total),
                    "count": int(hist.count),
                    "min": float(hist.min) if hist.count else None,
                    "max": float(hist.max) if hist.count else None,
                }
                for key, hist in sorted(self.histograms.items())
            ],
        }


class Metrics:
    """Thread-safe registry of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[MetricKey, int] = {}
        self._gauges: Dict[MetricKey, float] = {}
        self._histograms: Dict[MetricKey, _Histogram] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, amount: int = 1, **labels: Any) -> None:
        """Add ``amount`` to the counter ``name{labels}``."""
        key = (name, label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + int(amount)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge ``name{labels}`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[(name, label_key(labels))] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: Any,
    ) -> None:
        """Record ``value`` into the histogram ``name{labels}``.

        ``buckets`` fixes the bucket bounds when the series is first
        observed; later calls reuse the registered bounds.
        """
        key = (name, label_key(labels))
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = _Histogram(
                    tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
                )
                self._histograms[key] = hist
            hist.observe(float(value))

    # -- reading -----------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> int:
        with self._lock:
            return int(self._counters.get((name, label_key(labels)), 0))

    def counter_total(self, name: str) -> int:
        """Sum of a counter across all label sets."""
        with self._lock:
            return int(
                sum(v for (n, _), v in self._counters.items() if n == name)
            )

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={
                    key: HistogramSnapshot(
                        buckets=tuple(h.buckets),
                        counts=tuple(h.counts),
                        total=h.total,
                        count=h.count,
                        min=h.min,
                        max=h.max,
                    )
                    for key, h in self._histograms.items()
                },
            )

    # -- worker round-trip -------------------------------------------------

    def dump(self) -> Dict[str, Any]:
        """Picklable report for shipping a worker's registry to the parent."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    key: h.as_tuple() for key, h in self._histograms.items()
                },
            }

    def merge(self, dumped: Optional[Mapping[str, Any]]) -> None:
        """Fold a :meth:`dump` report into this registry (element-wise)."""
        if not dumped:
            return
        with self._lock:
            for key, value in dumped.get("counters", {}).items():
                self._counters[key] = self._counters.get(key, 0) + int(value)
            for key, value in dumped.get("gauges", {}).items():
                self._gauges[key] = float(value)
            for key, data in dumped.get("histograms", {}).items():
                incoming = _Histogram.from_tuple(data)
                hist = self._histograms.get(key)
                if hist is None:
                    self._histograms[key] = incoming
                else:
                    hist.merge(incoming)
