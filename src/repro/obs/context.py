"""Ambient observability context.

Deep call sites (the simgpu batch kernels, task functions) must not
thread a tracer through every signature, so the active
:class:`ObsContext` — a (tracer, metrics) pair — is held in a
context variable.  The runtime engine activates the parent's context
around serial task execution; worker processes activate a fresh local
context per task and ship its contents back with the result.

When nothing is active, :func:`current_obs` returns the module default:
a :data:`~repro.obs.spans.NULL_TRACER` plus a throwaway registry, so
instrumented code never checks for ``None``.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.obs.metrics import Metrics
from repro.obs.spans import NULL_TRACER


@dataclass
class ObsContext:
    """The observability handles one run threads through its layers."""

    tracer: object = NULL_TRACER
    metrics: Metrics = field(default_factory=Metrics)


_DEFAULT_OBS = ObsContext()
_ACTIVE: ContextVar[Optional[ObsContext]] = ContextVar("repro_obs", default=None)


def current_obs() -> ObsContext:
    """The active context, or the inert module default."""
    active = _ACTIVE.get()
    return active if active is not None else _DEFAULT_OBS


def current_tracer():
    """Shortcut for ``current_obs().tracer``."""
    return current_obs().tracer


@contextmanager
def activate_obs(obs: ObsContext) -> Iterator[ObsContext]:
    """Make ``obs`` the ambient context for the dynamic extent."""
    token = _ACTIVE.set(obs)
    try:
        yield obs
    finally:
        _ACTIVE.reset(token)
