"""Structured JSON-lines logging for CLI runs.

``--log-json`` turns the CLI's lifecycle events into machine-readable
lines on stderr (stdout keeps the human tables), one JSON object per
event::

    {"ts": 1754500000.123456, "event": "run_start", "command": "subset", ...}

Keep fields JSON-safe; anything else is stringified rather than raised —
a log line must never take the run down.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, IO, Optional


class JsonLogger:
    """Writes one JSON object per event to a text stream (default stderr)."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr

    def log(self, event: str, **fields: Any) -> None:
        record = {"ts": round(time.time(), 6), "event": event, **fields}
        self._stream.write(json.dumps(record, sort_keys=True, default=str))
        self._stream.write("\n")
        self._stream.flush()


class NullLogger:
    """Disabled logging: accepts any event, writes nothing."""

    def log(self, event: str, **fields: Any) -> None:
        return None
