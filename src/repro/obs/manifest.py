"""Run manifests: the reproducibility record of one run.

A manifest (``run.json``) pins everything needed to reproduce or audit a
pipeline/suite/sweep run: the command and CLI arguments, every seed, the
content digests of the GPU configs and traces involved (the same SHA-256
digests the artifact cache keys on), the package version, the host's
CPU count, and a final metric snapshot.  Two runs with equal config
digests and seeds compute identical results; the manifest makes that
checkable months later.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Union

#: Bump when the manifest layout changes meaning.
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class RunManifest:
    """Everything ``run.json`` records about one run."""

    command: str
    argv: Sequence[str]
    created_unix: float
    duration_s: Optional[float]
    package_version: str
    python_version: str
    platform: str
    host_cpu_count: Optional[int]
    jobs: Optional[int]
    cache_dir: Optional[str]
    seeds: Mapping[str, int] = field(default_factory=dict)
    config_digests: Mapping[str, str] = field(default_factory=dict)
    trace_digests: Mapping[str, str] = field(default_factory=dict)
    metrics: Mapping[str, Any] = field(default_factory=dict)
    # Kernel backend the run computed with ({"requested", "backend"}) —
    # compiled vs pure-python runs are bit-identical by contract, but
    # recording which one ran keeps perf records comparable.
    kernels: Mapping[str, Any] = field(default_factory=dict)
    extra: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        command: str,
        argv: Optional[Sequence[str]] = None,
        *,
        seeds: Optional[Mapping[str, int]] = None,
        configs: Optional[Mapping[str, Any]] = None,
        traces: Optional[Mapping[str, Any]] = None,
        jobs: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        duration_s: Optional[float] = None,
        metrics: Optional[Any] = None,
        extra: Optional[Mapping[str, Any]] = None,
    ) -> "RunManifest":
        """Build a manifest from live objects.

        ``configs`` maps names to :class:`~repro.simgpu.config.GpuConfig`
        objects and ``traces`` to :class:`~repro.gfx.trace.Trace`
        objects; both are reduced to the content digests the artifact
        cache uses, so a manifest digest matching a cache key's digest
        is the same computation.  ``metrics`` accepts a
        :class:`~repro.obs.metrics.MetricsSnapshot` (or its dict form).
        """
        # Imported lazily: keys pulls in the gfx/simgpu serialization
        # stack, which manifest-free users of repro.obs never need.
        from repro import __version__
        from repro.runtime.keys import config_digest, trace_digest
        from repro.simgpu._kernels import kernel_info

        metrics_dict: Mapping[str, Any] = {}
        if metrics is not None:
            metrics_dict = (
                metrics.as_dict() if hasattr(metrics, "as_dict") else dict(metrics)
            )
        return cls(
            command=command,
            argv=tuple(str(a) for a in (argv if argv is not None else [])),
            created_unix=time.time(),
            duration_s=duration_s,
            package_version=__version__,
            python_version=sys.version.split()[0],
            platform=platform.platform(),
            host_cpu_count=os.cpu_count(),
            jobs=jobs,
            cache_dir=str(cache_dir) if cache_dir is not None else None,
            seeds=dict(seeds or {}),
            config_digests={
                name: config_digest(config)
                for name, config in (configs or {}).items()
            },
            trace_digests={
                name: trace_digest(trace)
                for name, trace in (traces or {}).items()
            },
            metrics=metrics_dict,
            # resolve=False: recording a manifest must never trigger a
            # kernel compile/import; simulating commands have already
            # resolved the backend by the time they write run.json.
            kernels=kernel_info(resolve=False),
            extra=dict(extra or {}),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "manifest_version": MANIFEST_VERSION,
            "command": self.command,
            "argv": list(self.argv),
            "created_unix": self.created_unix,
            "duration_s": self.duration_s,
            "package_version": self.package_version,
            "python_version": self.python_version,
            "platform": self.platform,
            "host_cpu_count": self.host_cpu_count,
            "jobs": self.jobs,
            "cache_dir": self.cache_dir,
            "seeds": dict(self.seeds),
            "config_digests": dict(self.config_digests),
            "trace_digests": dict(self.trace_digests),
            "metrics": dict(self.metrics),
            "kernels": dict(self.kernels),
            "extra": dict(self.extra),
        }

    def write(self, path: Union[str, Path]) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(self.to_dict(), stream, indent=2, sort_keys=True)
            stream.write("\n")


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a manifest back as a plain dict (no object round-trip)."""
    with open(path, "r", encoding="utf-8") as stream:
        return json.load(stream)
