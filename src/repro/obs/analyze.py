"""Regression gates and span-rollup profiling over the run store.

Two consumers of longitudinal observability data live here:

- :func:`compare_to_baseline` — the noise-aware perf-regression gate
  behind ``repro runs regress``.  Each scalar series of the current run
  (stage wall-times, cache hit rate, sweep throughput, accuracy
  gauges, counters) is compared against a baseline window of prior
  records.  A series regresses only when **both** prongs fire: the
  relative-threshold prong (current vs the baseline *median*, direction
  aware) and the noise prong (Mann–Whitney U between windows when both
  sides have enough samples, otherwise "current lies beyond every
  baseline sample").  Requiring both keeps a noisy single run from
  tripping the gate while a genuine 1.5x stage slowdown cannot hide.

- :func:`rollup_spans` — the hotspot profiler behind
  ``repro trace report``: exported span trees reduced to per-name
  self-time/total-time tables (self time = a span's duration minus its
  direct children's durations), the per-stage aggregation LUMINA-style
  bottleneck analysis starts from.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ValidationError
from repro.obs.history import RunRecord
from repro.util.stats import mann_whitney_u

REGRESS_JSON_VERSION = 1

#: Default relative-threshold prong: 20% beyond the baseline median.
DEFAULT_REL_THRESHOLD = 0.2

#: Default Mann–Whitney significance level for the noise prong.
DEFAULT_ALPHA = 0.05

#: Fewest baseline samples a series needs before it is gated at all.
DEFAULT_MIN_BASELINE = 3

#: Fewest samples *per side* before the noise prong uses Mann–Whitney U
#: instead of the beyond-every-baseline-sample extreme-rank check.
MWU_MIN_SAMPLES = 3

#: Series-name glob -> gate direction.  ``worse_high`` flags increases
#: (wall times), ``worse_low`` flags decreases (throughput, hit rates,
#: accuracy), ``both`` flags any drift (counters — workload shape is
#: deterministic, so a count change is a behavior change).
_DIRECTION_PATTERNS: Tuple[Tuple[str, str], ...] = (
    ("stage:*", "worse_high"),
    ("hist:task_wall_s*:mean", "worse_high"),
    ("hist:cache_lookup_s*:mean", "worse_high"),
    ("derived:duration_s", "worse_high"),
    ("derived:frames_per_s", "worse_low"),
    ("derived:cache_hit_rate", "worse_low"),
    ("gauge:*accuracy*", "worse_low"),
    ("gauge:*agreement*", "worse_low"),
    ("gauge:*error*", "worse_high"),
    ("counter:*", "both"),
)

#: Series never gated: run-local bookkeeping with no cross-run meaning.
_IGNORED_PATTERNS: Tuple[str, ...] = (
    "gauge:progress_*",
    "hist:*:count",
)


def series_direction(name: str) -> Optional[str]:
    """The gate direction for a series name, ``None`` when ungated."""
    for pattern in _IGNORED_PATTERNS:
        if fnmatchcase(name, pattern):
            return None
    for pattern, direction in _DIRECTION_PATTERNS:
        if fnmatchcase(name, pattern):
            return direction
    return None


@dataclass(frozen=True)
class GateResult:
    """The verdict for one scalar series."""

    metric: str
    verdict: str  # "ok" | "regression" | "skipped"
    direction: str
    current: float
    baseline_median: float
    baseline_n: int
    rel_delta: Optional[float]
    p_value: Optional[float]
    reason: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "verdict": self.verdict,
            "direction": self.direction,
            "current": self.current,
            "baseline_median": self.baseline_median,
            "baseline_n": self.baseline_n,
            "rel_delta": self.rel_delta,
            "p_value": self.p_value,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class RegressionReport:
    """Everything one ``repro runs regress`` invocation decided."""

    command: str
    current_run_id: str
    baseline_run_ids: Sequence[str]
    rel_threshold: float
    alpha: float
    results: Sequence[GateResult] = field(default_factory=tuple)

    @property
    def regressions(self) -> List[GateResult]:
        return [r for r in self.results if r.verdict == "regression"]

    @property
    def checked(self) -> int:
        return sum(1 for r in self.results if r.verdict != "skipped")

    @property
    def passed(self) -> bool:
        return not self.regressions


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _gate_series(
    name: str,
    direction: str,
    current_values: Sequence[float],
    baseline_values: Sequence[float],
    rel_threshold: float,
    alpha: float,
) -> GateResult:
    """Apply the two-prong gate to one series."""
    current = current_values[-1]
    median = _median(baseline_values)
    n = len(baseline_values)

    if median == 0.0:
        if all(v == 0.0 for v in current_values):
            return GateResult(
                name, "ok", direction, current, median, n, None, None,
                "baseline and current both zero",
            )
        rel_delta = None
        threshold_fired = True  # any appearance from a zero baseline
        over = current > 0
    else:
        rel_delta = (current - median) / abs(median)
        over = rel_delta > 0
        if direction == "worse_high":
            threshold_fired = rel_delta > rel_threshold
        elif direction == "worse_low":
            threshold_fired = rel_delta < -rel_threshold
        else:
            threshold_fired = abs(rel_delta) > rel_threshold
    if not threshold_fired:
        return GateResult(
            name, "ok", direction, current, median, n, rel_delta, None,
            f"within {rel_threshold:.0%} of baseline median",
        )

    # Noise prong: the shift must also stand out from baseline noise.
    p_value: Optional[float] = None
    if len(current_values) >= MWU_MIN_SAMPLES and n >= MWU_MIN_SAMPLES:
        if direction == "worse_high":
            alternative = "greater"
        elif direction == "worse_low":
            alternative = "less"
        else:
            alternative = "greater" if over else "less"
        result = mann_whitney_u(
            current_values, baseline_values, alternative=alternative
        )
        p_value = result.p_value
        noise_fired = p_value <= alpha
        noise_reason = (
            f"Mann-Whitney U p={p_value:.4f} "
            f"{'<=' if noise_fired else '>'} alpha={alpha}"
        )
    else:
        # Extreme-rank fallback: with a single current sample the
        # strongest available evidence is lying beyond every baseline
        # observation in the bad direction.
        if direction == "worse_high":
            noise_fired = current > max(baseline_values)
        elif direction == "worse_low":
            noise_fired = current < min(baseline_values)
        else:
            noise_fired = (
                current > max(baseline_values)
                or current < min(baseline_values)
            )
        noise_reason = (
            "beyond every baseline sample"
            if noise_fired
            else "inside the baseline sample range (noise)"
        )
    if noise_fired:
        delta_text = (
            f"{rel_delta:+.1%} vs baseline median"
            if rel_delta is not None
            else "appeared from a zero baseline"
        )
        return GateResult(
            name, "regression", direction, current, median, n, rel_delta,
            p_value, f"{delta_text}; {noise_reason}",
        )
    return GateResult(
        name, "ok", direction, current, median, n, rel_delta, p_value,
        f"threshold exceeded but {noise_reason}",
    )


def compare_to_baseline(
    current: Union[RunRecord, Sequence[RunRecord]],
    baseline: Sequence[RunRecord],
    *,
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    alpha: float = DEFAULT_ALPHA,
    min_baseline: int = DEFAULT_MIN_BASELINE,
    select: Optional[Sequence[str]] = None,
) -> RegressionReport:
    """Gate the current run (or window) against a baseline window.

    ``current`` may be one record or a window of records — the newest is
    the run under test; with :data:`MWU_MIN_SAMPLES` or more on each
    side the noise prong upgrades from the extreme-rank check to a
    Mann–Whitney U test.  ``select`` restricts gating to series whose
    name matches any of the given globs (e.g. ``["stage:*"]``).
    """
    current_window = (
        [current] if isinstance(current, RunRecord) else list(current)
    )
    if not current_window:
        raise ValidationError("current window must hold at least one record")
    if min_baseline < 1:
        raise ValidationError("min_baseline must be >= 1")
    current_record = current_window[-1]
    current_series = [record.all_series() for record in current_window]
    baseline_series = [record.all_series() for record in baseline]

    results: List[GateResult] = []
    for name, value in sorted(current_series[-1].items()):
        direction = series_direction(name)
        if direction is None:
            continue
        if select is not None and not any(
            fnmatchcase(name, pattern) for pattern in select
        ):
            continue
        baseline_values = [s[name] for s in baseline_series if name in s]
        if len(baseline_values) < min_baseline:
            results.append(
                GateResult(
                    name, "skipped", direction, value,
                    _median(baseline_values) if baseline_values else 0.0,
                    len(baseline_values), None, None,
                    f"baseline has {len(baseline_values)} sample(s), "
                    f"need {min_baseline}",
                )
            )
            continue
        current_values = [s[name] for s in current_series if name in s]
        results.append(
            _gate_series(
                name, direction, current_values, baseline_values,
                rel_threshold, alpha,
            )
        )
    return RegressionReport(
        command=current_record.command,
        current_run_id=current_record.run_id,
        baseline_run_ids=tuple(r.run_id for r in baseline),
        rel_threshold=rel_threshold,
        alpha=alpha,
        results=tuple(results),
    )


# -- record diffing ---------------------------------------------------------


def diff_records(
    a: RunRecord, b: RunRecord
) -> List[Tuple[str, Optional[float], Optional[float], Optional[float]]]:
    """``(series, a_value, b_value, rel_delta)`` rows for two records.

    Series present in only one record carry ``None`` on the other side;
    ``rel_delta`` is ``None`` when undefined (missing side or zero
    base).  Rows are sorted by series name.
    """
    series_a = a.all_series()
    series_b = b.all_series()
    rows: List[
        Tuple[str, Optional[float], Optional[float], Optional[float]]
    ] = []
    for name in sorted(set(series_a) | set(series_b)):
        va = series_a.get(name)
        vb = series_b.get(name)
        delta: Optional[float] = None
        if va is not None and vb is not None and va != 0.0:
            delta = (vb - va) / abs(va)
        rows.append((name, va, vb, delta))
    return rows


# -- rendering --------------------------------------------------------------


def render_regressions(
    fmt: str, report: RegressionReport, *, verbose: bool = False
) -> str:
    """``--format`` dispatch: ``text`` / ``json`` / ``github``."""
    if fmt == "json":
        return json.dumps(
            {
                "version": REGRESS_JSON_VERSION,
                "command": report.command,
                "current_run_id": report.current_run_id,
                "baseline_run_ids": list(report.baseline_run_ids),
                "rel_threshold": report.rel_threshold,
                "alpha": report.alpha,
                "passed": report.passed,
                "checked": report.checked,
                "results": [r.as_dict() for r in report.results],
            },
            indent=2,
        )
    if fmt == "github":
        lines = [
            f"::error title=perf regression::{r.metric}: {r.reason} "
            f"(current {r.current:.6g}, baseline median "
            f"{r.baseline_median:.6g}, n={r.baseline_n})"
            for r in report.regressions
        ]
        return "\n".join(lines)
    if fmt != "text":
        raise ValidationError(
            f"unknown format {fmt!r}; expected text, json, or github"
        )
    lines = []
    shown = report.results if verbose else report.regressions
    for r in shown:
        lines.append(
            f"{r.verdict.upper():10s} {r.metric}: current {r.current:.6g} "
            f"vs baseline median {r.baseline_median:.6g} (n={r.baseline_n})"
            f" — {r.reason}"
        )
    lines.append(
        f"{'PASS' if report.passed else 'FAIL'}: "
        f"{len(report.regressions)} regression(s) in {report.checked} "
        f"gated series (baseline window: {len(report.baseline_run_ids)} "
        f"run(s), threshold {report.rel_threshold:.0%}, "
        f"alpha {report.alpha})"
    )
    return "\n".join(lines)


# -- span rollups -----------------------------------------------------------


@dataclass(frozen=True)
class SpanRollup:
    """Aggregate of every span sharing one name."""

    name: str
    category: str
    count: int
    total_s: float
    self_s: float
    min_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "category": self.category,
            "count": self.count,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "mean_s": self.mean_s,
        }


def load_spans_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Span dicts from a ``write_spans_jsonl`` file, blank lines skipped."""
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValidationError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
            if not isinstance(record, dict) or "span_id" not in record:
                raise ValidationError(
                    f"{path}:{lineno}: not a span object "
                    "(missing 'span_id')"
                )
            spans.append(record)
    return spans


def rollup_spans(spans: Sequence[Mapping[str, Any]]) -> List[SpanRollup]:
    """Per-name hotspot aggregation of a span tree.

    Self time is a span's own duration minus the summed durations of its
    *direct* children, floored at zero (worker clocks can make a child
    overshoot its parent by scheduling noise).  Spans accept either
    :meth:`~repro.obs.spans.Span.to_dict` dicts or anything mapping the
    same keys.  Sorted by self time, descending.
    """
    child_time_ns: Dict[str, int] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None:
            child_time_ns[str(parent)] = (
                child_time_ns.get(str(parent), 0)
                + int(span.get("duration_ns", 0))
            )

    grouped: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for span in spans:
        name = str(span.get("name", "<unnamed>"))
        category = str(span.get("category", ""))
        duration_ns = int(span.get("duration_ns", 0))
        self_ns = max(
            0, duration_ns - child_time_ns.get(str(span.get("span_id")), 0)
        )
        entry = grouped.setdefault(
            (name, category),
            {"count": 0, "total": 0, "self": 0, "min": None, "max": 0},
        )
        entry["count"] += 1
        entry["total"] += duration_ns
        entry["self"] += self_ns
        entry["min"] = (
            duration_ns
            if entry["min"] is None
            else min(entry["min"], duration_ns)
        )
        entry["max"] = max(entry["max"], duration_ns)

    rollups = [
        SpanRollup(
            name=name,
            category=category,
            count=entry["count"],
            total_s=entry["total"] / 1e9,
            self_s=entry["self"] / 1e9,
            min_s=(entry["min"] or 0) / 1e9,
            max_s=entry["max"] / 1e9,
        )
        for (name, category), entry in grouped.items()
    ]
    rollups.sort(key=lambda r: (-r.self_s, -r.total_s, r.name))
    return rollups


def render_rollup(
    rollups: Sequence[SpanRollup],
    *,
    sort: str = "self",
    limit: Optional[int] = None,
    title: str = "span hotspots",
) -> str:
    """The ``repro trace report`` table."""
    from repro.util.tables import format_table

    if sort == "total":
        ordered = sorted(rollups, key=lambda r: (-r.total_s, r.name))
    elif sort == "self":
        ordered = list(rollups)
    else:
        raise ValidationError(
            f"unknown sort {sort!r}; expected 'self' or 'total'"
        )
    if limit is not None and limit > 0:
        ordered = ordered[:limit]
    total_self = sum(r.self_s for r in rollups) or 1.0
    rows = [
        [
            r.name,
            r.category,
            r.count,
            round(r.self_s, 6),
            f"{100.0 * r.self_s / total_self:.1f}",
            round(r.total_s, 6),
            round(r.mean_s, 6),
            round(r.max_s, 6),
        ]
        for r in ordered
    ]
    return format_table(
        ["span", "category", "count", "self s", "self %", "total s",
         "mean s", "max s"],
        rows,
        title=title,
        precision=6,
    )
