"""Append-only run-history store under ``.repro/runs/``.

Every simulating CLI subcommand and every benchmark appends one
:class:`RunRecord` per invocation through the shared :func:`record_run`
hook, so the repository accumulates a longitudinal, queryable record of
execution telemetry instead of a single overwritten snapshot: manifest
digests, a flattened metrics snapshot, per-stage wall-time rollups, the
git SHA, and an environment fingerprint.  The regression gates in
:mod:`repro.obs.analyze` read windows of these records back to decide
whether the current run drifted.

The store is **append-only by construction**: each record lands in its
own file named by creation time plus a random run id, opened with
``"x"`` (exclusive create), so two consecutive invocations can never
overwrite each other — the failure mode the old ``BENCH_*.json``
overwrite-in-place workflow made invisible.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import ValidationError

#: Bump when the record layout changes meaning.
RUN_STORE_VERSION = 1

#: Environment override for the store directory.  An empty value
#: disables recording entirely (used by hermetic test runs).
RUN_STORE_ENV = "REPRO_RUN_STORE"

#: Default store location, relative to the working directory.
DEFAULT_STORE_DIR = ".repro/runs"


def default_store_dir() -> Optional[Path]:
    """The run-store directory: ``$REPRO_RUN_STORE`` or ``.repro/runs``.

    Returns ``None`` when the environment variable is set but empty —
    the documented way to disable run recording wholesale.
    """
    value = os.environ.get(RUN_STORE_ENV)
    if value is None:
        return Path(DEFAULT_STORE_DIR)
    if not value.strip():
        return None
    return Path(value)


def git_sha() -> Optional[str]:
    """The current git commit SHA, or ``None`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def environment_fingerprint() -> Dict[str, Any]:
    """The host/runtime facts that explain run-to-run perf variance."""
    from repro import __version__
    from repro.simgpu._kernels import kernel_info

    # resolve=False: fingerprinting must stay side-effect free (no
    # kernel compiles/imports); the backend shows as None until some
    # simulation actually resolved it in this process.
    kernels = kernel_info(resolve=False)
    return {
        "package_version": __version__,
        "python_version": sys.version.split()[0],
        "platform": platform.platform(),
        "host_cpu_count": os.cpu_count(),
        "kernels_requested": kernels["requested"],
        "kernels_backend": kernels["backend"],
    }


def build_info() -> Dict[str, Any]:
    """Package version plus source provenance, for version surfaces.

    Backs ``repro --version`` and the service's ``GET /v1/healthz``:
    the environment fingerprint's package/python facts joined with the
    git SHA (``None`` outside a checkout), so every deployment can say
    exactly which build is answering.
    """
    info = environment_fingerprint()
    info["git_sha"] = git_sha()
    return info


def version_line() -> str:
    """One human-readable line: ``repro <version> (<sha>, python <ver>)``."""
    info = build_info()
    sha = info["git_sha"]
    provenance = f"git {sha[:12]}" if sha else "no git checkout"
    return (
        f"repro {info['package_version']} "
        f"({provenance}, python {info['python_version']})"
    )


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def flatten_metrics(snapshot: Any) -> Dict[str, float]:
    """A :class:`~repro.obs.metrics.MetricsSnapshot` as flat scalars.

    Naming scheme (stable — the regression gate keys on it):

    - ``counter:<name>`` — counter total aggregated over labels;
    - ``counter:<name>{k=v,...}`` — one entry per labeled series;
    - ``gauge:<name>{...}`` — gauges verbatim;
    - ``hist:<name>{...}:mean`` / ``:count`` — histogram rollups.
    """
    flat: Dict[str, float] = {}
    for name, total in snapshot.counter_totals().items():
        flat[f"counter:{name}"] = float(total)
    for (name, labels), value in snapshot.counters.items():
        if labels:
            flat[f"counter:{name}{_render_labels(dict(labels))}"] = float(value)
    for (name, labels), value in snapshot.gauges.items():
        flat[f"gauge:{name}{_render_labels(dict(labels))}"] = float(value)
    for (name, labels), hist in snapshot.histograms.items():
        prefix = f"hist:{name}{_render_labels(dict(labels))}"
        flat[f"{prefix}:count"] = float(hist.count)
        flat[f"{prefix}:mean"] = float(hist.mean)
    return flat


@dataclass(frozen=True)
class RunRecord:
    """One appended run: identity, provenance, metrics, stage rollups."""

    run_id: str
    created_unix: float
    command: str
    argv: Sequence[str] = ()
    git_sha: Optional[str] = None
    environment: Mapping[str, Any] = field(default_factory=dict)
    jobs: Optional[int] = None
    seeds: Mapping[str, int] = field(default_factory=dict)
    config_digests: Mapping[str, str] = field(default_factory=dict)
    trace_digests: Mapping[str, str] = field(default_factory=dict)
    metrics: Mapping[str, float] = field(default_factory=dict)
    stages: Mapping[str, float] = field(default_factory=dict)
    top_stages: Mapping[str, float] = field(default_factory=dict)
    extra: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_store_version": RUN_STORE_VERSION,
            "run_id": self.run_id,
            "created_unix": self.created_unix,
            "command": self.command,
            "argv": list(self.argv),
            "git_sha": self.git_sha,
            "environment": dict(self.environment),
            "jobs": self.jobs,
            "seeds": dict(self.seeds),
            "config_digests": dict(self.config_digests),
            "trace_digests": dict(self.trace_digests),
            "metrics": dict(self.metrics),
            "stages": dict(self.stages),
            "top_stages": dict(self.top_stages),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        version = data.get("run_store_version")
        if version != RUN_STORE_VERSION:
            raise ValidationError(
                f"unsupported run record version {version!r} "
                f"(this build reads version {RUN_STORE_VERSION})"
            )
        return cls(
            run_id=str(data["run_id"]),
            created_unix=float(data["created_unix"]),
            command=str(data["command"]),
            argv=tuple(str(a) for a in data.get("argv", [])),
            git_sha=data.get("git_sha"),
            environment=dict(data.get("environment", {})),
            jobs=data.get("jobs"),
            seeds=dict(data.get("seeds", {})),
            config_digests=dict(data.get("config_digests", {})),
            trace_digests=dict(data.get("trace_digests", {})),
            metrics={k: float(v) for k, v in data.get("metrics", {}).items()},
            stages={k: float(v) for k, v in data.get("stages", {}).items()},
            top_stages={
                k: float(v) for k, v in data.get("top_stages", {}).items()
            },
            extra=dict(data.get("extra", {})),
        )

    def all_series(self) -> Dict[str, float]:
        """Every gateable scalar: metrics plus ``stage:``-prefixed rollups."""
        series = dict(self.metrics)
        for name, seconds in self.stages.items():
            series[f"stage:{name}"] = float(seconds)
        return series


def new_run_id() -> str:
    """A fresh run id (12 hex chars), mintable ahead of record collection.

    Callers that write an artifact sidecar need the id *before* the
    record exists — the sidecar directory is named by it and the link
    goes inside the record — so the id is mintable separately and passed
    back in through ``collect_record(run_id=...)``.
    """
    return uuid.uuid4().hex[:12]


def collect_record(
    command: str,
    *,
    argv: Optional[Sequence[str]] = None,
    telemetry: Optional[Any] = None,
    metrics: Optional[Mapping[str, float]] = None,
    stages: Optional[Mapping[str, float]] = None,
    seeds: Optional[Mapping[str, int]] = None,
    config_digests: Optional[Mapping[str, str]] = None,
    trace_digests: Optional[Mapping[str, str]] = None,
    jobs: Optional[int] = None,
    duration_s: Optional[float] = None,
    extra: Optional[Mapping[str, Any]] = None,
    run_id: Optional[str] = None,
) -> RunRecord:
    """Build a :class:`RunRecord` from live objects.

    ``telemetry`` is a :class:`~repro.runtime.telemetry.Telemetry`; its
    metrics snapshot is flattened and its stage timers become the
    per-stage rollups.  ``metrics``/``stages`` accept pre-flattened
    mappings for callers (benchmarks) without a telemetry object; when
    both are given the explicit mappings win key-by-key.
    """
    flat: Dict[str, float] = {}
    stage_rollup: Dict[str, float] = {}
    top_rollup: Dict[str, float] = {}
    if telemetry is not None:
        snap = telemetry.snapshot()
        flat.update(flatten_metrics(telemetry.metrics.snapshot()))
        stage_rollup.update({k: float(v) for k, v in snap.timers_s.items()})
        if snap.top_timers_s is not None:
            top_rollup.update(
                {k: float(v) for k, v in snap.top_timers_s.items()}
            )
    if metrics:
        flat.update({k: float(v) for k, v in metrics.items()})
    if stages:
        stage_rollup.update({k: float(v) for k, v in stages.items()})

    # Derived series the regression gate cares about directly.
    hits = flat.get("counter:cache_hits", 0.0)
    misses = flat.get("counter:cache_misses", 0.0)
    if hits + misses > 0:
        flat["derived:cache_hit_rate"] = hits / (hits + misses)
    frames = flat.get("counter:frames_simulated", 0.0)
    wall = duration_s if duration_s else sum(top_rollup.values()) or None
    if frames and wall:
        flat["derived:frames_per_s"] = frames / wall
    if duration_s is not None:
        flat["derived:duration_s"] = float(duration_s)

    return RunRecord(
        run_id=run_id if run_id is not None else new_run_id(),
        created_unix=time.time(),
        command=command,
        argv=tuple(str(a) for a in (argv if argv is not None else [])),
        git_sha=git_sha(),
        environment=environment_fingerprint(),
        jobs=jobs,
        seeds=dict(seeds or {}),
        config_digests=dict(config_digests or {}),
        trace_digests=dict(trace_digests or {}),
        metrics=flat,
        stages=stage_rollup,
        top_stages=top_rollup,
        extra=dict(extra or {}),
    )


class RunStore:
    """The append-only record directory (one JSON file per run).

    Thread-safety audit (CONC rules): worker threads append through
    :func:`record_run` while dashboard request threads read, with no
    lock — and none is needed.  The store keeps no mutable in-memory
    state (``root`` is set once in ``__init__``), appends are exclusive
    creates, and readers only ever see whole files.  Adding an id cache
    like :class:`~repro.service.jobs.JobStore` has would require its
    lock discipline; keep it stateless instead.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        resolved = Path(root) if root is not None else default_store_dir()
        if resolved is None:
            raise ValidationError(
                f"run store disabled: ${RUN_STORE_ENV} is set but empty"
            )
        self.root = resolved

    # -- writing -----------------------------------------------------------

    def append(self, record: RunRecord) -> Path:
        """Write ``record`` as a brand-new file; never overwrites."""
        self.root.mkdir(parents=True, exist_ok=True)
        stamp = int(record.created_unix * 1e6)
        base = f"{stamp:017d}-{record.run_id}"
        path = self.root / f"{base}.json"
        attempt = 0
        while True:
            try:
                with open(path, "x", encoding="utf-8") as stream:
                    json.dump(record.to_dict(), stream, indent=2, sort_keys=True)
                    stream.write("\n")
                return path
            except FileExistsError:
                attempt += 1
                path = self.root / f"{base}-{attempt}.json"

    # -- reading -----------------------------------------------------------

    def paths(self) -> List[Path]:
        """Record files, oldest first (filenames sort by creation time)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))

    def records(
        self,
        command: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[RunRecord]:
        """Stored records, oldest first, optionally filtered by command.

        ``limit`` keeps only the newest N after filtering.  Unreadable
        or foreign JSON files are skipped rather than fatal — the store
        directory is long-lived and may accumulate partial writes.
        """
        loaded: List[RunRecord] = []
        for path in self.paths():
            try:
                with open(path, "r", encoding="utf-8") as stream:
                    record = RunRecord.from_dict(json.load(stream))
            except (OSError, ValueError, KeyError, ValidationError):
                continue
            if command is not None and record.command != command:
                continue
            loaded.append(record)
        loaded.sort(key=lambda r: (r.created_unix, r.run_id))
        if limit is not None and limit >= 0:
            loaded = loaded[-limit:] if limit else []
        return loaded

    # -- artifact sidecars -------------------------------------------------

    def artifacts_dir(self, record: RunRecord) -> Path:
        """The record's sidecar directory (existing or conventional).

        Prefers the link the record carries in ``extra["artifacts"]``;
        records written before sidecars existed fall back to the
        conventional ``<run_id>.artifacts`` name, so a sidecar placed
        next to an old record is still discoverable.
        """
        from repro.obs.artifacts import artifact_link, artifacts_dir_for

        link = artifact_link(record.extra)
        if link is not None:
            return self.root / str(link["dir"])
        return artifacts_dir_for(self.root, record.run_id)

    def artifact_index(self, record: RunRecord) -> Dict[str, Any]:
        """The sidecar's index document; raises when the run has none."""
        from repro.obs.artifacts import read_index

        return read_index(self.artifacts_dir(record))

    def load_artifacts(self, record: RunRecord) -> Dict[str, Any]:
        """Every sidecar section of ``record``, digest-verified."""
        from repro.obs.artifacts import load_artifacts

        return load_artifacts(self.artifacts_dir(record))

    def load_artifact_section(self, record: RunRecord, name: str) -> Any:
        """One sidecar section of ``record``, digest-verified."""
        from repro.obs.artifacts import load_section

        return load_section(self.artifacts_dir(record), name)

    def resolve(self, ref: str) -> RunRecord:
        """A record by run-id prefix or negative age index (``-1`` = newest)."""
        records = self.records()
        if not records:
            raise ValidationError(f"run store {self.root} is empty")
        try:
            index = int(ref)
        except ValueError:
            matches = [r for r in records if r.run_id.startswith(ref)]
            if len(matches) == 1:
                return matches[0]
            if not matches:
                raise ValidationError(
                    f"no run record matches id prefix {ref!r}"
                ) from None
            shown = [r.run_id for r in matches[:8]]
            if len(matches) > len(shown):
                shown.append(f"... +{len(matches) - len(shown)} more")
            raise ValidationError(
                f"run id prefix {ref!r} is ambiguous "
                f"({len(matches)} matches: {', '.join(shown)})"
            ) from None
        try:
            return records[index]
        except IndexError:
            raise ValidationError(
                f"run index {index} out of range ({len(records)} records)"
            ) from None


def record_run(
    command: str,
    *,
    store: Optional[Union[str, Path, RunStore]] = None,
    argv: Optional[Sequence[str]] = None,
    telemetry: Optional[Any] = None,
    metrics: Optional[Mapping[str, float]] = None,
    stages: Optional[Mapping[str, float]] = None,
    seeds: Optional[Mapping[str, int]] = None,
    config_digests: Optional[Mapping[str, str]] = None,
    trace_digests: Optional[Mapping[str, str]] = None,
    jobs: Optional[int] = None,
    duration_s: Optional[float] = None,
    extra: Optional[Mapping[str, Any]] = None,
    artifacts: Optional[Mapping[str, Any]] = None,
) -> Optional[Path]:
    """The shared append hook: collect a record and append it to the store.

    ``artifacts`` is an optional mapping of sidecar section names to
    JSON-safe bodies (see :mod:`repro.obs.artifacts`); when given and
    non-empty, the sidecar is written *first* and its link embedded in
    the record's ``extra["artifacts"]`` — existing records are never
    mutated to attach artifacts after the fact.

    Returns the written path, or ``None`` when recording is disabled
    (``$REPRO_RUN_STORE`` set but empty and no explicit ``store``).
    Never raises on store I/O problems — a telemetry write must not take
    the run down — but record *collection* errors (programming bugs)
    propagate.
    """
    if isinstance(store, RunStore):
        run_store = store
    else:
        root = Path(store) if store is not None else default_store_dir()
        if root is None:
            return None
        run_store = RunStore(root)
    run_id = new_run_id()
    merged_extra: Dict[str, Any] = dict(extra or {})
    if artifacts:
        from repro.obs.artifacts import write_artifacts

        try:
            run_store.root.mkdir(parents=True, exist_ok=True)
            merged_extra["artifacts"] = write_artifacts(
                run_store.root, run_id, artifacts
            )
        except OSError:
            # A sidecar write failure degrades to a link-less record;
            # the run itself (and its record) must survive.
            merged_extra.pop("artifacts", None)
    record = collect_record(
        command,
        argv=argv,
        telemetry=telemetry,
        metrics=metrics,
        stages=stages,
        seeds=seeds,
        config_digests=config_digests,
        trace_digests=trace_digests,
        jobs=jobs,
        duration_s=duration_s,
        extra=merged_extra,
        run_id=run_id,
    )
    try:
        return run_store.append(record)
    except OSError:
        return None
