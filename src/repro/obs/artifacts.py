"""Content-addressed artifact sidecars next to run records.

The run store records *that* a pipeline ran and how fast; this module
records *why its subset is representative*: the standardized feature
matrices the clustering saw, the per-frame cluster assignments and
representative draw ids, the per-phase weights, and the
predicted-vs-measured metrics behind the paper's E1/E2 fidelity claims.
Those were computed anyway and then thrown away — the sidecar keeps
them, so the dashboard's cluster scatter and fidelity views can show
the printed report's exact numbers instead of recomputing (or worse,
re-simulating) anything.

Layout: one directory per run next to its record::

    .repro/runs/
      00000000000000000-3f2a9c.json            # the run record
      3f2a9c.artifacts/                        # this module's sidecar
        index.json                             # section -> file map
        clusters-4fd1f39e06c2a51b.json         # content-addressed body
        fidelity-9ab04c77d31e02f4.json
        subset-0d7f6cc8e91b3a55.json

Write discipline mirrors the stores it sits between: section bodies are
exclusive-create (``open(path, "x")``) and named by their content
digest, so a body file can never be half-overwritten — an existing file
with the same name already holds identical bytes.  The ``index.json``
is the one mutable summary and lands via ``tempfile.mkstemp`` +
``os.replace`` (the job-store update pattern), so readers only ever see
a whole index.  The run record itself is never touched: the link is
computed *before* :func:`~repro.obs.history.record_run` appends it.

Section *builders* (which need the trace and simulation results) import
the core/simgpu layers lazily; readers are pure stdlib+json, so the
dashboard layer can load sidecars without crossing the OBS002 line.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.errors import ValidationError

#: Bump when the sidecar layout or section schemas change meaning.
ARTIFACTS_VERSION = 1

#: Directory suffix: ``<run_id>.artifacts`` next to the record file.
ARTIFACTS_SUFFIX = ".artifacts"

#: Hex digits of the body digest kept in the filename.
_DIGEST_CHARS = 16


def artifacts_dir_for(store_root: Union[str, Path], run_id: str) -> Path:
    """The sidecar directory of ``run_id`` under ``store_root``."""
    return Path(store_root) / f"{run_id}{ARTIFACTS_SUFFIX}"


def _encode(section: Any) -> bytes:
    return (
        json.dumps(section, indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")


def write_artifacts(
    store_root: Union[str, Path],
    run_id: str,
    sections: Mapping[str, Any],
) -> Dict[str, Any]:
    """Write ``sections`` as ``run_id``'s sidecar; returns the link dict.

    Each section body is serialized, digested, and exclusive-created as
    ``<name>-<sha256[:16]>.json``; a colliding filename means identical
    bytes already on disk, so :class:`FileExistsError` is simply a
    dedup hit.  The index is replaced atomically last, so a crash
    mid-write leaves either the previous complete sidecar or orphaned
    (harmless, content-addressed) body files — never a torn index.

    The returned link is what :func:`~repro.obs.history.record_run`
    embeds in the record's ``extra["artifacts"]``; it carries the
    directory name (relative to the store root), the section inventory,
    and the index digest, so a record can vouch for its sidecar.
    """
    directory = artifacts_dir_for(store_root, run_id)
    directory.mkdir(parents=True, exist_ok=True)
    index_files: Dict[str, Dict[str, Any]] = {}
    for name in sorted(sections):
        body = _encode(sections[name])
        digest = hashlib.sha256(body).hexdigest()
        filename = f"{name}-{digest[:_DIGEST_CHARS]}.json"
        path = directory / filename
        try:
            with open(path, "xb") as stream:
                stream.write(body)
        except FileExistsError:
            pass  # same digest, same bytes: already written
        index_files[name] = {
            "file": filename,
            "sha256": digest,
            "bytes": len(body),
        }
    index = {
        "artifacts_version": ARTIFACTS_VERSION,
        "run_id": run_id,
        "sections": index_files,
    }
    index_bytes = _encode(index)
    fd, tmp_name = tempfile.mkstemp(
        prefix=".index-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as stream:
            stream.write(index_bytes)
        os.replace(tmp_name, directory / "index.json")
    except OSError:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return {
        "dir": directory.name,
        "sections": sorted(index_files),
        "index_sha256": hashlib.sha256(index_bytes).hexdigest(),
    }


def read_index(directory: Union[str, Path]) -> Dict[str, Any]:
    """The sidecar's index document; raises on absent/foreign sidecars."""
    path = Path(directory) / "index.json"
    try:
        with open(path, "r", encoding="utf-8") as stream:
            index = json.load(stream)
    except FileNotFoundError:
        raise ValidationError(
            f"run has no artifact sidecar at {Path(directory).name}/ "
            "(re-run the pipeline with this build to produce one)"
        ) from None
    except (OSError, ValueError) as exc:
        raise ValidationError(f"unreadable artifact index {path}: {exc}") from None
    version = index.get("artifacts_version")
    if version != ARTIFACTS_VERSION:
        raise ValidationError(
            f"unsupported artifact sidecar version {version!r} "
            f"(this build reads version {ARTIFACTS_VERSION})"
        )
    return index


def load_section(
    directory: Union[str, Path], name: str
) -> Any:
    """One section body, verified against its recorded digest."""
    index = read_index(directory)
    entry = index.get("sections", {}).get(name)
    if entry is None:
        have = ", ".join(sorted(index.get("sections", {}))) or "none"
        raise ValidationError(
            f"artifact sidecar has no {name!r} section (have: {have})"
        )
    path = Path(directory) / str(entry["file"])
    try:
        body = path.read_bytes()
    except OSError as exc:
        raise ValidationError(f"unreadable artifact body {path}: {exc}") from None
    digest = hashlib.sha256(body).hexdigest()
    if digest != entry.get("sha256"):
        raise ValidationError(
            f"artifact body {path.name} digest mismatch "
            "(sidecar corrupted; delete the directory and re-run)"
        )
    return json.loads(body.decode("utf-8"))


def load_artifacts(directory: Union[str, Path]) -> Dict[str, Any]:
    """Every section of a sidecar, keyed by section name."""
    index = read_index(directory)
    return {
        name: load_section(directory, name)
        for name in sorted(index.get("sections", {}))
    }


# -- section builders (lazy core imports; not for dashboard code) -----------


def pipeline_artifact_sections(result: Any, trace: Any) -> Dict[str, Any]:
    """Sidecar sections for one :class:`~repro.core.pipeline.PipelineResult`.

    Requires ``result.clusterings`` (run the pipeline with
    ``keep_clusterings=True``); returns ``{}`` otherwise, so callers can
    pass whatever they have and only complete runs produce sidecars.
    The fidelity section stores the *same floats* ``result.report()``
    prints — the dashboard's E1/E2 must match the printed report
    exactly, so they are serialized once here, not recomputed.
    """
    if getattr(result, "clusterings", None) is None:
        return {}
    from repro.core.features import FEATURE_NAMES, FeatureExtractor
    from repro.core.normalize import Normalizer

    extractor = FeatureExtractor(trace)
    frames: List[Dict[str, Any]] = []
    for frame, clustering in zip(trace.frames, result.clusterings):
        matrix = Normalizer("zscore").fit_transform(
            extractor.frame_matrix(frame)
        )
        frames.append(
            {
                "frame": int(frame.index),
                "num_draws": int(clustering.num_draws),
                "num_clusters": int(clustering.num_clusters),
                "labels": [int(v) for v in clustering.labels],
                "representatives": [
                    int(v) for v in clustering.representatives
                ],
                "weights": [float(v) for v in clustering.weights],
                "features": [
                    [float(v) for v in row] for row in matrix
                ],
            }
        )
    clusters = {
        "feature_names": list(FEATURE_NAMES),
        "normalize": "zscore",
        "frames": frames,
    }

    predictions = [
        {
            "frame": int(p.frame_index),
            "actual_time_ns": float(p.actual_time_ns),
            "predicted_time_ns": float(p.predicted_time_ns),
            "isolated_time_ns": float(p.isolated_time_ns),
            "error": float(p.error),
            "isolated_error": float(p.isolated_error),
            "efficiency": float(p.efficiency),
            "num_draws": int(p.num_draws),
            "num_clusters": int(p.num_clusters),
            "outlier_rate": float(rate),
        }
        for p, rate in zip(result.frame_predictions, result.frame_outlier_rates)
    ]
    fidelity = {
        "trace": result.trace_name,
        "config": result.config_name,
        "frames": predictions,
        "summary": {
            "mean_prediction_error": float(result.mean_prediction_error),
            "mean_isolated_error": float(result.mean_isolated_error),
            "mean_efficiency": float(result.mean_efficiency),
            "mean_outlier_rate": float(result.mean_outlier_rate),
            "subset_time_error": float(result.subset_time_error),
            "actual_total_time_ns": float(result.actual_total_time_ns),
            "subset_estimated_total_time_ns": float(
                result.subset_estimated_total_time_ns
            ),
            "combined_draw_fraction": float(result.combined_draw_fraction),
        },
    }

    detection = result.detection
    subset = result.subset
    subset_section = {
        "frame_positions": [int(p) for p in subset.frame_positions],
        "frame_weights": [float(w) for w in subset.frame_weights],
        "frame_fraction": float(subset.frame_fraction),
        "draw_fraction": float(subset.draw_fraction),
        "parent_num_frames": int(subset.parent_num_frames),
        "parent_num_draws": int(subset.parent_num_draws),
        "phases": {
            "num_phases": int(detection.num_phases),
            "num_intervals": int(detection.num_intervals),
            "interval_length": int(detection.interval_length),
            "phase_ids": [int(p) for p in detection.phase_ids],
            "intervals": [
                {"index": iv.index, "start": iv.start, "end": iv.end}
                for iv in detection.intervals
            ],
        },
    }
    return {
        "clusters": clusters,
        "fidelity": fidelity,
        "subset": subset_section,
    }


def sweep_artifact_sections(result: Any) -> Dict[str, Any]:
    """Sidecar sections for a pathfinding-sweep result.

    The sweep's fidelity evidence is per-config: predicted-vs-measured
    total times over the candidate configurations, plus the ranking
    agreement the paper's pathfinding claim rests on.
    """
    return {
        "sweep": {
            "configs": [
                {
                    "config": str(name),
                    "parent_time_ns": float(parent),
                    "subset_estimated_time_ns": float(estimate),
                    "error": (
                        abs(float(estimate) - float(parent)) / float(parent)
                        if parent
                        else 0.0
                    ),
                }
                for name, parent, estimate in zip(
                    result.config_names,
                    result.parent_times_ns,
                    result.subset_estimated_times_ns,
                )
            ],
            "ranking_agreement": float(result.ranking_agreement),
            "winner_agrees": bool(result.winner_agrees()),
        }
    }


def artifact_link(record_extra: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    """The ``extra["artifacts"]`` link of a record, if present and sane."""
    link = record_extra.get("artifacts")
    if not isinstance(link, Mapping) or "dir" not in link:
        return None
    return dict(link)
