"""Span export: Chrome trace-event JSON and span JSONL.

``write_chrome_trace`` emits the *JSON Object Format* of the Chrome
trace-event specification — a ``traceEvents`` array of ``"ph": "X"``
(complete) events plus ``"M"`` (metadata) process/thread names — which
loads directly in Perfetto (https://ui.perfetto.dev) and
``chrome://tracing``.  ``write_spans_jsonl`` emits one span per line
with explicit ``span_id``/``parent_id``, for programmatic analysis.

``validate_chrome_trace`` checks an emitted document against the shape
Perfetto requires; CI smoke-runs the quickstart with ``--trace-out`` and
fails on any reported problem.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from repro.obs.spans import Span


def _json_safe(value: Any) -> Any:
    """Coerce numpy scalars and other exotica to JSON-safe values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        # numpy arrays and scalars: item()/tolist() yields builtin types.
        try:
            return _json_safe(tolist())
        except (TypeError, ValueError):
            pass
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def chrome_trace_events(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    """Spans as a list of Chrome trace-event dicts (metadata + ``X``)."""
    events: List[Dict[str, Any]] = []
    seen_pids: set = set()
    for span in spans:
        if span.pid not in seen_pids:
            seen_pids.add(span.pid)
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": span.pid,
                    "tid": 0,
                    "args": {"name": f"repro pid {span.pid}"},
                }
            )
    for span in spans:
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category,
                # Chrome timestamps are microseconds (float OK).
                "ts": span.start_ns / 1000.0,
                "dur": max(span.duration_ns, 1) / 1000.0,
                "pid": span.pid,
                "tid": span.tid,
                "args": _json_safe(
                    {
                        **span.args,
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                    }
                ),
            }
        )
    return events


def chrome_trace_document(spans: Sequence[Span]) -> Dict[str, Any]:
    """The full JSON-object-format document for a span set."""
    return {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(spans: Sequence[Span], path: Union[str, Path]) -> None:
    """Write spans as Chrome trace-event JSON (open in Perfetto)."""
    document = chrome_trace_document(spans)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(document, stream)
        stream.write("\n")


def write_spans_jsonl(spans: Sequence[Span], path: Union[str, Path]) -> None:
    """Write one JSON object per span (ids and parent ids explicit)."""
    with open(path, "w", encoding="utf-8") as stream:
        for span in spans:
            stream.write(json.dumps(_json_safe(span.to_dict())))
            stream.write("\n")


def validate_chrome_trace(document: Any) -> List[str]:
    """Problems that would break loading ``document`` in Perfetto.

    Returns an empty list when the document is a valid JSON-object-format
    trace: a dict with a ``traceEvents`` list whose events all carry a
    phase, and whose ``X`` events have a name, numeric non-negative
    ``ts``/``dur``, and integer ``pid``/``tid``.  Span hierarchy is
    cross-checked too: an ``X`` event whose ``args.parent_id`` names a
    span id no event in the document carries is an orphan — its subtree
    renders detached in Perfetto, which almost always means an export
    dropped spans.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"document must be a JSON object, got {type(document).__name__}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document must contain a 'traceEvents' list"]
    if not events:
        problems.append("'traceEvents' is empty")
    span_ids = {
        event["args"]["span_id"]
        for event in events
        if isinstance(event, dict)
        and isinstance(event.get("args"), dict)
        and "span_id" in event["args"]
    }
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            problems.append(f"{where}: missing 'ph' phase")
            continue
        if phase != "X":
            continue
        if not event.get("name"):
            problems.append(f"{where}: X event missing 'name'")
        for field_name in ("ts", "dur"):
            value = event.get(field_name)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(
                    f"{where}: X event field {field_name!r} must be a "
                    f"non-negative number, got {value!r}"
                )
        for field_name in ("pid", "tid"):
            if not isinstance(event.get(field_name), int):
                problems.append(
                    f"{where}: X event field {field_name!r} must be an int"
                )
        args = event.get("args")
        if isinstance(args, dict):
            parent_id = args.get("parent_id")
            if parent_id is not None and parent_id not in span_ids:
                problems.append(
                    f"{where}: X event parent_id {parent_id!r} matches no "
                    f"span_id in the document (orphaned span)"
                )
    return problems
