"""Hierarchical span tracing.

A :class:`Span` is one timed, named region of work; a :class:`Tracer`
collects finished spans and maintains a per-thread stack so spans nest
(pipeline -> stage -> task -> frame).  Timestamps are epoch-anchored but
advance on the monotonic clock, so spans from concurrent worker
processes land on one shared timeline and children always nest inside
their parents within a process.

Workers cannot share a tracer with the parent process, so they record
into a local :class:`Tracer` rooted at a shipped parent span id and
return the finished spans with their results; the engine folds them back
with :meth:`Tracer.merge` — the same pattern the runtime already uses
for telemetry counters.

The default tracer is :data:`NULL_TRACER`, whose ``span()`` is a single
attribute lookup returning a shared no-op context manager — the
disabled path costs essentially nothing.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass
class Span:
    """One finished (or in-flight) region of the run's timeline.

    ``start_ns`` is epoch-anchored (comparable across processes);
    ``duration_ns`` is measured on the monotonic clock.  ``args`` holds
    arbitrary JSON-safe labels (frame index, config name, stage costs).
    """

    span_id: str
    parent_id: Optional[str]
    name: str
    category: str
    start_ns: int
    duration_ns: int
    pid: int
    tid: int
    args: Dict[str, Any] = field(default_factory=dict)

    def set(self, **args: Any) -> None:
        """Attach labels to the span while it is open."""
        self.args.update(args)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "pid": self.pid,
            "tid": self.tid,
            "args": dict(self.args),
        }


class _NullSpan:
    """The span handle the disabled tracer yields; ``set`` is a no-op."""

    __slots__ = ()

    def set(self, **args: Any) -> None:
        return None


class _NullSpanContext:
    """Reusable no-op context manager (one shared instance, no state)."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """Disabled tracing: every operation is a cheap no-op.

    This is the default everywhere, so instrumented code never branches
    on "is tracing on" beyond reading :attr:`enabled` for work it would
    otherwise not do (e.g. computing per-stage cost sums for span args).
    """

    enabled = False

    def span(self, name: str, category: str = "run", **args: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def current_span_id(self) -> Optional[str]:
        return None

    def spans(self) -> Tuple[Span, ...]:
        return ()

    def drain(self) -> List[Span]:
        return []

    def merge(self, spans: Sequence[Span]) -> None:
        return None


#: Shared disabled tracer; safe to use from any thread or process.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects nested spans on an epoch-anchored monotonic timeline.

    Thread-safe: each thread keeps its own span stack (so nesting is
    per-thread), and the finished-span list is lock-protected.  A worker
    process constructs its tracer with ``root_parent_id`` set to the
    span id the parent captured at submit time, which stitches the
    worker's spans into the parent's hierarchy after :meth:`merge`.
    """

    enabled = True

    def __init__(self, root_parent_id: Optional[str] = None) -> None:
        self.root_parent_id = root_parent_id
        self._lock = threading.Lock()
        self._finished: List[Span] = []
        self._counter = 0
        self._pid = os.getpid()
        self._tls = threading.local()
        # Epoch anchor: spans advance on perf_counter (monotonic, so
        # children always nest inside parents) but are reported on the
        # epoch timeline (so parent- and worker-process spans align).
        self._anchor_epoch_ns = time.time_ns()
        self._anchor_perf_ns = time.perf_counter_ns()

    # -- internals ---------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    # -- recording ---------------------------------------------------------

    @contextmanager
    def span(
        self, name: str, category: str = "run", **args: Any
    ) -> Iterator[Span]:
        """Open a nested span; yields the :class:`Span` for ``set()``."""
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else self.root_parent_id
        with self._lock:
            self._counter += 1
            span_id = f"{self._pid}-{self._counter}"
        # One perf sample anchors both the epoch start and the duration,
        # so a child's reported end can never overshoot its parent's.
        start_perf = time.perf_counter_ns()
        record = Span(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            category=category,
            start_ns=self._anchor_epoch_ns + (start_perf - self._anchor_perf_ns),
            duration_ns=0,
            pid=self._pid,
            tid=threading.get_ident(),
            args=dict(args),
        )
        stack.append(record)
        try:
            yield record
        finally:
            record.duration_ns = time.perf_counter_ns() - start_perf
            stack.pop()
            with self._lock:
                self._finished.append(record)

    def current_span_id(self) -> Optional[str]:
        """The id of this thread's innermost open span (for propagation)."""
        stack = self._stack()
        return stack[-1].span_id if stack else self.root_parent_id

    # -- collection --------------------------------------------------------

    def spans(self) -> Tuple[Span, ...]:
        """All finished spans so far, in completion order."""
        with self._lock:
            return tuple(self._finished)

    def drain(self) -> List[Span]:
        """Remove and return the finished spans (worker -> result ship)."""
        with self._lock:
            finished = self._finished
            self._finished = []
        return finished

    def merge(self, spans: Sequence[Span]) -> None:
        """Fold spans recorded elsewhere (a worker) into this tracer."""
        if not spans:
            return
        with self._lock:
            self._finished.extend(spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)
