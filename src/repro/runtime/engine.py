"""Dependency-aware task engine and the user-facing :class:`Runtime`.

The engine executes a task graph either inline (``jobs=1`` — the serial
fallback, bit-identical to the pre-runtime code paths) or on a
``ProcessPoolExecutor``.  The run's shared ``context`` (typically the
trace) ships to each worker once via the pool initializer instead of
once per task; per-task child seeds come from
:func:`repro.util.rng.spawn_worker_seed`, so results never depend on
worker count or completion order.

Observability rides the same rails: each task runs under an ambient
:class:`~repro.obs.context.ObsContext` and inside a ``task:<kind>``
span.  Inline tasks record straight into the parent's tracer/metrics;
pool tasks record into a worker-local pair — rooted at the span id the
parent captured at submit time — and ship spans, timers, and metric
dumps back inside the :class:`~repro.runtime.tasks.TaskResult`, where
:meth:`TaskEngine._finish` folds them in (the counter-merge pattern,
generalized).

:class:`Runtime` bundles an engine, a content-addressed
:class:`~repro.runtime.cache.ArtifactCache`, and a
:class:`~repro.runtime.telemetry.Telemetry` into the object the
pipeline, suite, sweep, and CLI layers thread through.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigError
from repro.obs.context import ObsContext, activate_obs
from repro.obs.metrics import Metrics
from repro.obs.progress import NULL_PROGRESS, NullProgress, ProgressReporter
from repro.obs.spans import NULL_TRACER, Tracer
from repro.runtime.cache import CACHE_MISS, ArtifactCache, NullCache
from repro.runtime.keys import task_key
from repro.runtime.tasks import Task, TaskResult, resolve_task_function
from repro.runtime.telemetry import Telemetry, TelemetrySnapshot
from repro.util.rng import spawn_worker_seed

if TYPE_CHECKING:
    from repro.gfx.trace import Trace
    from repro.simgpu.batch import BatchFrameOutput
    from repro.simgpu.config import GpuConfig
    from repro.simgpu.simulator import TraceResult

#: Anything the engine can consult for artifacts: the real store or the
#: inert default.  (A Protocol would be overkill for two shapes.)
CacheLike = Union[ArtifactCache, NullCache]

_WORKER_CONTEXT: Any = None


def _init_worker(context: Any) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_task(
    context: Any,
    kind: str,
    payload: Any,
    dep_values: Dict[str, Any],
    seed: Optional[int],
) -> TaskResult:
    """Execute one task body (same code inline and in workers)."""
    if seed is not None:
        # Seed the legacy global stream so any np.random fallback inside a
        # task is reproducible per task identity, not per worker schedule.
        np.random.seed(seed % 2**32)
    fn = resolve_task_function(kind)
    result = fn(context, payload, dep_values)
    if not isinstance(result, TaskResult):
        result = TaskResult(result)
    return result


def _execute_in_worker(blob: bytes) -> TaskResult:
    # The work item arrives pre-pickled: the parent serializes it before
    # submit so an unpicklable payload raises there, synchronously, instead
    # of poisoning the executor's feeder thread (which deadlocks
    # ``shutdown(wait=True)`` on CPython 3.11).
    kind, payload, dep_values, seed, task_id, parent_span_id, trace_on = (
        pickle.loads(blob)
    )
    tracer = Tracer(root_parent_id=parent_span_id) if trace_on else NULL_TRACER
    metrics = Metrics()
    start = time.perf_counter()
    with activate_obs(ObsContext(tracer=tracer, metrics=metrics)):
        with tracer.span(f"task:{kind}", category="task", task_id=task_id):
            result = _run_task(_WORKER_CONTEXT, kind, payload, dep_values, seed)
    elapsed = time.perf_counter() - start
    metrics.observe("task_wall_s", elapsed, worker=str(os.getpid()))
    return TaskResult(
        value=result.value,
        counters=result.counters,
        timers={**result.timers, f"worker.{kind}": elapsed},
        metrics=metrics.dump(),
        spans=tuple(tracer.drain()),
    )


def _topological_order(tasks: Sequence[Task]) -> List[Task]:
    """Kahn's algorithm, stable with respect to submission order."""
    by_id: Dict[str, Task] = {}
    for task in tasks:
        if task.task_id in by_id:
            raise ConfigError(f"duplicate task id {task.task_id!r}")
        by_id[task.task_id] = task
    children: Dict[str, List[str]] = {task.task_id: [] for task in tasks}
    blocked_by: Dict[str, int] = {}
    for task in tasks:
        for dep in task.deps:
            if dep not in by_id:
                raise ConfigError(
                    f"task {task.task_id!r} depends on unknown task {dep!r}"
                )
            children[dep].append(task.task_id)
        blocked_by[task.task_id] = len(task.deps)
    ready = [task for task in tasks if blocked_by[task.task_id] == 0]
    order: List[Task] = []
    cursor = 0
    while cursor < len(ready):
        task = ready[cursor]
        cursor += 1
        order.append(task)
        for child_id in children[task.task_id]:
            blocked_by[child_id] -= 1
            if blocked_by[child_id] == 0:
                ready.append(by_id[child_id])
    if len(order) != len(tasks):
        stuck = sorted(tid for tid, n in blocked_by.items() if n > 0)
        raise ConfigError(f"task graph has a dependency cycle involving {stuck}")
    return order


class TaskEngine:
    """Executes task graphs serially or on a process pool.

    ``jobs=1`` runs every task inline in topological submission order —
    no subprocesses, no pickling — and is the reference behavior the
    parallel path must reproduce exactly (results, counters, and span
    counts alike).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[CacheLike] = None,
        telemetry: Optional[Telemetry] = None,
        progress: Optional[Union[ProgressReporter, NullProgress]] = None,
    ) -> None:
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise ConfigError(f"jobs must be an int >= 1, got {jobs!r}")
        self.jobs = jobs
        self.cache = cache if cache is not None else NullCache()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.progress = progress if progress is not None else NULL_PROGRESS

    # -- execution ---------------------------------------------------------

    def run(
        self, tasks: Sequence[Task], context: Any = None
    ) -> Dict[str, Any]:
        """Execute ``tasks`` and return ``{task_id: value}``.

        Cached tasks (``cache_key`` set, entry present) are resolved
        without executing — or submitting — anything.  A task exception
        propagates to the caller with its original type; remaining tasks
        are cancelled.
        """
        order = _topological_order(tasks)
        results: Dict[str, Any] = {}
        pending: List[Task] = []
        for task in order:
            if task.cache_key is not None:
                hit = self.cache.get(task.cache_key)
                if hit is not CACHE_MISS:
                    results[task.task_id] = hit
                    self.telemetry.count("tasks_from_cache")
                    continue
            pending.append(task)
        if not pending:
            return results
        self.progress.begin(len(pending))
        if self.jobs == 1 or len(pending) == 1:
            # A one-task graph gains nothing from a pool: spinning up a
            # worker process costs orders of magnitude more than the
            # inline dispatch, and the inline path is the reference
            # behavior anyway.
            self._run_serial(pending, context, results)
        else:
            self._run_pool(pending, context, results)
        self.progress.finish(
            len(pending), len(pending), self._frames_simulated()
        )
        return results

    def _frames_simulated(self) -> int:
        return self.telemetry.counter("frames_simulated")

    def _finish(self, task: Task, result: TaskResult, results: Dict[str, Any]) -> None:
        results[task.task_id] = result.value
        self.telemetry.count("tasks_run")
        if result.counters:
            self.telemetry.merge_counters(result.counters)
        if result.timers:
            self.telemetry.merge_timers(result.timers)
        if result.metrics:
            self.telemetry.metrics.merge(result.metrics)
        if result.spans:
            self.telemetry.tracer.merge(result.spans)
        if task.cache_key is not None:
            self.cache.put(task.cache_key, result.value)

    def _dep_values(self, task: Task, results: Dict[str, Any]) -> Dict[str, Any]:
        return {dep: results[dep] for dep in task.deps}

    def _run_serial(
        self, pending: List[Task], context: Any, results: Dict[str, Any]
    ) -> None:
        telemetry = self.telemetry
        obs = ObsContext(tracer=telemetry.tracer, metrics=telemetry.metrics)
        total = len(pending)
        with activate_obs(obs):
            for done, task in enumerate(pending, start=1):
                start = time.perf_counter()
                try:
                    with telemetry.tracer.span(
                        f"task:{task.kind}", category="task", task_id=task.task_id
                    ):
                        result = _run_task(
                            context, task.kind, task.payload,
                            self._dep_values(task, results), task.seed,
                        )
                except Exception:
                    telemetry.count("tasks_failed")
                    raise
                elapsed = time.perf_counter() - start
                telemetry.observe("task_wall_s", elapsed, worker="main")
                telemetry.merge_timers({f"worker.{task.kind}": elapsed})
                self._finish(task, result, results)
                self.progress.task_done(done, total, self._frames_simulated())

    def _run_pool(
        self, pending: List[Task], context: Any, results: Dict[str, Any]
    ) -> None:
        children: Dict[str, List[Task]] = {}
        blocked_by: Dict[str, int] = {}
        for task in pending:
            # Deps already satisfied from cache don't block execution.
            open_deps = [dep for dep in task.deps if dep not in results]
            blocked_by[task.task_id] = len(open_deps)
            for dep in open_deps:
                children.setdefault(dep, []).append(task)
        ready = [task for task in pending if blocked_by[task.task_id] == 0]
        pool = ProcessPoolExecutor(
            max_workers=min(self.jobs, len(pending)),
            initializer=_init_worker,
            initargs=(context,),
        )
        futures: Dict[Future[TaskResult], Task] = {}
        tracer = self.telemetry.tracer

        def submit(task: Task) -> None:
            try:
                blob = pickle.dumps(
                    (task.kind, task.payload,
                     self._dep_values(task, results), task.seed,
                     task.task_id, tracer.current_span_id(), tracer.enabled)
                )
            except Exception as exc:
                raise ConfigError(
                    f"task {task.task_id!r} payload cannot be sent to a "
                    f"worker process: {exc}"
                ) from exc
            futures[pool.submit(_execute_in_worker, blob)] = task

        total = len(pending)
        finished = 0
        heartbeat_s = self.progress.heartbeat_interval_s
        try:
            for task in ready:
                submit(task)
            while futures:
                done, _ = wait(
                    set(futures),
                    timeout=heartbeat_s,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # Workers are still heads-down past the heartbeat
                    # interval: surface liveness rather than going dark.
                    self.progress.heartbeat(
                        finished, total, self._frames_simulated()
                    )
                    continue
                for future in done:
                    task = futures.pop(future)
                    try:
                        result = future.result()
                    except Exception:
                        self.telemetry.count("tasks_failed")
                        raise
                    self._finish(task, result, results)
                    finished += 1
                    self.progress.task_done(
                        finished, total, self._frames_simulated()
                    )
                    for child in children.get(task.task_id, ()):
                        blocked_by[child.task_id] -= 1
                        if blocked_by[child.task_id] == 0:
                            submit(child)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)


def _chunk_ranges(
    num_items: int, num_chunks: int, min_items: int = 1
) -> List[Tuple[int, int]]:
    """Split ``[0, num_items)`` into contiguous near-equal ranges.

    ``min_items`` floors the chunk size: chunks smaller than it cost more
    in task dispatch than the work they carry, so the chunk count is
    reduced until every range holds at least ``min_items`` items (or one
    chunk remains).
    """
    if min_items > 1:
        num_chunks = min(num_chunks, max(1, num_items // min_items))
    num_chunks = max(1, min(num_chunks, num_items))
    base, extra = divmod(num_items, num_chunks)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for i in range(num_chunks):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


class Runtime:
    """Parallel, cache-aware execution facade for the pipeline layers.

    The default construction (``Runtime()`` / :meth:`Runtime.serial`) is
    the zero-surprise configuration: one process, no cache, results
    bit-identical to the historical serial code paths.  ``jobs=N`` adds
    process-pool parallelism; ``jobs="auto"`` sizes the pool to the host
    CPU count *and* falls back to inline execution for workloads smaller
    than ``serial_cutoff`` frames, where pool startup and pickling cost
    more than the simulation itself (results are identical either way —
    only the execution strategy adapts).  ``cache_dir=...`` (or a
    prebuilt ``cache``) adds the content-addressed artifact store, so
    repeated experiments and interrupted sweeps skip every
    already-computed simulation.

    ``tracer=Tracer()`` (or a prebuilt ``telemetry`` bound to one)
    enables hierarchical span tracing; the default
    :data:`~repro.obs.spans.NULL_TRACER` makes every span a no-op.
    """

    #: Below this many work items, ``jobs="auto"`` runs inline: on traces
    #: this small the process pool's startup + serialization overhead
    #: exceeds the simulation work (measured in BENCH_runtime.json).
    DEFAULT_SERIAL_CUTOFF = 32

    def __init__(
        self,
        jobs: Union[int, str] = 1,
        cache: Optional[CacheLike] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        telemetry: Optional[Telemetry] = None,
        tracer: Optional[object] = None,
        seed: int = 0,
        chunks_per_job: int = 2,
        serial_cutoff: Optional[int] = None,
        progress: Optional[Union[ProgressReporter, NullProgress]] = None,
    ) -> None:
        if cache is not None and cache_dir is not None:
            raise ConfigError("pass either cache or cache_dir, not both")
        if telemetry is not None and tracer is not None:
            raise ConfigError(
                "pass either telemetry (bound to a tracer) or tracer, not both"
            )
        if not isinstance(chunks_per_job, int) or chunks_per_job < 1:
            raise ConfigError(
                f"chunks_per_job must be an int >= 1, got {chunks_per_job!r}"
            )
        if serial_cutoff is not None and (
            not isinstance(serial_cutoff, int)
            or isinstance(serial_cutoff, bool)
            or serial_cutoff < 0
        ):
            raise ConfigError(
                f"serial_cutoff must be an int >= 0, got {serial_cutoff!r}"
            )
        self.adaptive = jobs == "auto"
        if self.adaptive:
            jobs = os.cpu_count() or 1
        self.serial_cutoff = (
            serial_cutoff if serial_cutoff is not None
            else self.DEFAULT_SERIAL_CUTOFF
        )
        if telemetry is None:
            telemetry = Telemetry(tracer=tracer)
        self.telemetry = telemetry
        if cache is None:
            cache = (
                ArtifactCache(cache_dir, telemetry=self.telemetry)
                if cache_dir is not None
                else NullCache()
            )
        if isinstance(cache, ArtifactCache) and cache.telemetry is None:
            cache.telemetry = self.telemetry
        self.cache = cache
        self.seed = seed
        self.chunks_per_job = chunks_per_job
        self.progress = progress if progress is not None else NULL_PROGRESS
        self.engine = TaskEngine(
            jobs=jobs, cache=cache, telemetry=self.telemetry,
            progress=self.progress,
        )

    @property
    def jobs(self) -> int:
        return self.engine.jobs

    @property
    def tracer(self) -> Any:
        """The span tracer observability layers record into."""
        return self.telemetry.tracer

    @property
    def metrics(self) -> Metrics:
        """The labeled metrics registry behind the telemetry shim."""
        return self.telemetry.metrics

    @classmethod
    def serial(cls) -> "Runtime":
        """One process, no cache — the reference configuration."""
        return cls(jobs=1)

    # -- chunking ----------------------------------------------------------

    def _ranges(self, num_items: int) -> List[Tuple[int, int]]:
        """Work partition for ``num_items`` frames under this runtime.

        ``jobs="auto"`` runtimes return a single range for workloads
        under ``serial_cutoff`` (the engine runs one-task graphs inline,
        so small traces never touch the pool) and floor the chunk size
        for everything else; explicit ``jobs=N`` keeps the historical
        fixed partition.
        """
        if self.jobs == 1:
            return [(0, num_items)]
        if self.adaptive:
            if num_items < self.serial_cutoff:
                return [(0, num_items)]
            min_items = max(1, self.serial_cutoff // 4)
            return _chunk_ranges(
                num_items, self.jobs * self.chunks_per_job, min_items=min_items
            )
        return _chunk_ranges(num_items, self.jobs * self.chunks_per_job)

    # -- simulation --------------------------------------------------------

    def simulate_frames_many(
        self,
        trace: Trace,
        configs: Sequence[GpuConfig],
        label: str = "simulate",
    ) -> List[List[BatchFrameOutput]]:
        """Per-frame outputs of ``trace`` on every config, cache-first.

        One artifact per (trace content, config) pair; configs missing
        from the cache are simulated together in one task graph so each
        chunk computes the order-dependent context arrays once per
        distinct context signature (the DVFS-sweep sharing the serial
        batch path has always had).  ``label`` names the stage timer,
        the trace span, and the ``frames_simulated{phase=...}`` label.
        """
        configs = list(configs)
        if not configs:
            return []
        keys = [
            task_key("simulate_frames", trace=trace, config=config)
            for config in configs
        ]
        by_key: Dict[str, Any] = {}
        need: List[Tuple[str, Any]] = []
        for key, config in zip(keys, configs):
            if key in by_key or any(key == k for k, _ in need):
                continue
            hit = self.cache.get(key)
            if hit is not CACHE_MISS:
                by_key[key] = hit
            else:
                need.append((key, config))
        if need:
            need_configs = tuple(config for _, config in need)
            ranges = self._ranges(trace.num_frames)
            tasks = [
                Task(
                    task_id=f"{label}:{start}:{stop}",
                    kind="simulate_frame_range",
                    payload=(need_configs, start, stop, label),
                    seed=spawn_worker_seed(
                        self.seed, "simulate_frame_range", start, stop
                    ),
                )
                for start, stop in ranges
            ]
            self._prepublish_precomp(trace, len(tasks))
            with self.telemetry.timer(label):
                values = self.engine.run(tasks, context=trace)
            for position, (key, _) in enumerate(need):
                outputs: list = []
                for start, stop in ranges:
                    outputs.extend(values[f"{label}:{start}:{stop}"][position])
                by_key[key] = outputs
                self.cache.put(key, outputs)
        return [list(by_key[key]) for key in keys]

    def _prepublish_precomp(self, trace: "Trace", num_tasks: int) -> None:
        """Publish the trace's precompute to the shared store before fan-out.

        Only worth doing when the run will actually fan out (multiple
        tasks on a multi-job engine) *and* a compiled kernel backend is
        active: publishing from the parent is serial, so with the
        pure-python kernels it would cost more than letting each worker
        compute-and-publish its own chunk.  With compiled kernels the
        parent precomputes each frame once machine-wide and workers
        mmap the arrays instead of recomputing (ROADMAP item 2).
        """
        if num_tasks <= 1 or self.engine.jobs <= 1:
            return
        from repro.simgpu import _kernels
        from repro.simgpu.batch import prepublish_precomp
        from repro.simgpu.precomp_store import active_store

        if active_store() is None:
            return
        try:
            if _kernels.backend().name == "python":
                return
        except Exception:
            return
        with self.telemetry.timer("precomp_publish"):
            published = prepublish_precomp(trace)
        if published:
            self.telemetry.count("precomp_prepublished_frames", published)

    def simulate_frames(
        self, trace: Trace, config: GpuConfig, label: str = "simulate"
    ) -> List[BatchFrameOutput]:
        """Per-frame :class:`~repro.simgpu.batch.BatchFrameOutput` list."""
        return self.simulate_frames_many(trace, [config], label=label)[0]

    def simulate_trace(
        self, trace: Trace, config: GpuConfig, label: str = "simulate"
    ) -> TraceResult:
        """Cache-aware, parallel equivalent of ``simulate_trace_batch``."""
        from repro.simgpu.batch import trace_result_from_outputs

        outputs = self.simulate_frames(trace, config, label=label)
        return trace_result_from_outputs(trace.name, config.name, outputs)

    def total_time_ns(
        self, trace: Trace, config: GpuConfig, label: str = "simulate"
    ) -> float:
        """Whole-trace time on ``config`` (sum over per-frame outputs)."""
        return float(
            sum(out.time_ns for out in self.simulate_frames(trace, config, label))
        )

    # -- clustering --------------------------------------------------------

    def cluster_frames(self, trace: Trace, **params: object) -> list:
        """Per-frame clusterings of ``trace``, cache-first.

        ``params`` are forwarded to
        :func:`repro.core.cluster_frame.cluster_frame` verbatim and
        participate in the cache key.
        """
        key = task_key("cluster_frames", trace=trace, params=params)
        hit = self.cache.get(key)
        if hit is not CACHE_MISS:
            return list(hit)
        base_seed = params.get("seed")
        if not isinstance(base_seed, int) or isinstance(base_seed, bool):
            base_seed = self.seed
        payload_params = tuple(sorted(params.items()))
        ranges = self._ranges(trace.num_frames)
        tasks = [
            Task(
                task_id=f"cluster:{start}:{stop}",
                kind="cluster_frame_range",
                payload=(payload_params, start, stop),
                seed=spawn_worker_seed(
                    base_seed, "cluster_frame_range", start, stop
                ),
            )
            for start, stop in ranges
        ]
        with self.telemetry.timer("cluster"):
            values = self.engine.run(tasks, context=trace)
        clusterings: list = []
        for start, stop in ranges:
            clusterings.extend(values[f"cluster:{start}:{stop}"])
        self.cache.put(key, clusterings)
        return clusterings

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> TelemetrySnapshot:
        return self.telemetry.snapshot()

    def report(self) -> str:
        return self.telemetry.report()
