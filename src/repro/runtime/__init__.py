"""Parallel execution engine with a content-addressed artifact cache.

Pathfinding is an embarrassingly parallel job graph — hundreds of frames
times dozens of candidate architectures — whose artifacts are reused for
months.  This subsystem supplies the execution layer the rest of the
library runs on:

- :class:`~repro.runtime.engine.TaskEngine` — dependency-aware task
  graphs on a process pool, with a serial ``jobs=1`` fallback that is
  bit-identical to the historical code paths;
- :class:`~repro.runtime.cache.ArtifactCache` — results keyed by a
  stable digest of (trace content, GPU config, algorithm parameters,
  format version), persisted on disk so re-runs and interrupted sweeps
  skip completed work;
- :class:`~repro.runtime.telemetry.Telemetry` — counters and stage
  timers (tasks run, cache hits/misses, frames simulated) surfaced in
  pipeline and suite reports; now a back-compat shim over the
  :mod:`repro.obs` metrics registry and span tracer, so labeled metrics
  and hierarchical traces come from the same object;
- :class:`~repro.runtime.engine.Runtime` — the facade the pipeline,
  suite, sweep, and CLI layers accept as ``runtime=``.

See ``docs/RUNTIME.md`` for the architecture, the cache-key recipe, and
the invalidation rules, and ``docs/OBSERVABILITY.md`` for the span
model and metric naming conventions.
"""

from repro.runtime.cache import (
    CACHE_DIR_ENV,
    CACHE_MISS,
    ArtifactCache,
    NullCache,
    default_cache_dir,
)
from repro.runtime.engine import Runtime, TaskEngine
from repro.runtime.keys import (
    CACHE_FORMAT_VERSION,
    config_digest,
    params_digest,
    task_key,
    trace_digest,
)
from repro.runtime.tasks import TASK_FUNCTIONS, Task, TaskResult, task_function
from repro.runtime.telemetry import Telemetry, TelemetrySnapshot

__all__ = [
    "ArtifactCache",
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "CACHE_MISS",
    "NullCache",
    "Runtime",
    "TASK_FUNCTIONS",
    "Task",
    "TaskEngine",
    "TaskResult",
    "Telemetry",
    "TelemetrySnapshot",
    "config_digest",
    "default_cache_dir",
    "params_digest",
    "task_function",
    "task_key",
    "trace_digest",
]
