"""Content-addressed artifact cache.

Simulation and clustering artifacts are keyed by
:func:`repro.runtime.keys.task_key` and persisted under a cache
directory, sharded by key prefix::

    <cache_dir>/ab/abcdef....pkl     # arbitrary python objects (pickle)
    <cache_dir>/ab/abcdef....npz     # dict-of-ndarray payloads (numpy)

Keys already encode every input plus the format version, so entries are
immutable: a key is either absent or holds the one true value, and
invalidation is simply "the key changed".  Writes are atomic
(temp file + ``os.replace``) so an interrupted sweep never leaves a
truncated entry behind — and if one appears anyway (disk fault, manual
tampering), :meth:`ArtifactCache.get` evicts it and reports a miss, so
the caller transparently recomputes.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.errors import ConfigError
from repro.runtime.telemetry import Telemetry

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class _Miss:
    """Sentinel distinguishing 'not cached' from a cached ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<CACHE_MISS>"


CACHE_MISS = _Miss()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


class NullCache:
    """The no-op cache: every lookup misses, every store is dropped.

    Used when caching is disabled (``--no-cache``, or a library caller
    that wants pure recomputation) so the engine never branches on
    "is there a cache".
    """

    def get(self, key: str) -> Any:
        return CACHE_MISS

    def put(self, key: str, value: Any) -> None:
        return None


class ArtifactCache:
    """Durable content-addressed store for runtime artifacts.

    ``telemetry`` (bound by the runtime that owns the cache) receives
    ``cache_hits`` / ``cache_misses`` / ``cache_puts`` /
    ``cache_corrupt_evicted`` counts.
    """

    def __init__(
        self,
        cache_dir: Union[str, Path, None] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.telemetry = telemetry
        self.cache_dir.mkdir(parents=True, exist_ok=True)

    # -- internals ---------------------------------------------------------

    def _count(self, name: str) -> None:
        if self.telemetry is not None:
            self.telemetry.count(name)

    def _paths(self, key: str) -> Dict[str, Path]:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ConfigError(f"cache keys are lowercase hex digests, got {key!r}")
        shard = self.cache_dir / key[:2]
        return {"pkl": shard / f"{key}.pkl", "npz": shard / f"{key}.npz"}

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _evict(self, path: Path) -> None:
        self._count("cache_corrupt_evicted")
        try:
            path.unlink()
        except OSError:
            pass

    # -- public API --------------------------------------------------------

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`CACHE_MISS`.

        A corrupted entry (truncated pickle, mangled npz) is deleted and
        reported as a miss — recomputation heals the cache.  Lookup
        latency lands in the ``cache_lookup_s`` histogram.
        """
        start = time.perf_counter()
        try:
            return self._get(key)
        finally:
            if self.telemetry is not None:
                self.telemetry.observe(
                    "cache_lookup_s", time.perf_counter() - start
                )

    def _get(self, key: str) -> Any:
        paths = self._paths(key)
        npz_path = paths["npz"]
        if npz_path.exists():
            try:
                with np.load(npz_path) as archive:
                    value = {name: archive[name] for name in archive.files}
                self._count("cache_hits")
                return value
            except Exception:
                self._evict(npz_path)
        pkl_path = paths["pkl"]
        try:
            with open(pkl_path, "rb") as stream:
                value = pickle.load(stream)
        except FileNotFoundError:
            self._count("cache_misses")
            return CACHE_MISS
        except Exception:
            self._evict(pkl_path)
            self._count("cache_misses")
            return CACHE_MISS
        self._count("cache_hits")
        return value

    def put(self, key: str, value: Any) -> None:
        """Persist ``value`` under ``key`` (atomic; last writer wins).

        A ``dict`` whose values are all numpy arrays is stored as an NPZ
        archive (compact, language-neutral); everything else is pickled.
        """
        paths = self._paths(key)
        if (
            isinstance(value, dict)
            and value
            and all(isinstance(k, str) for k in value)
            and all(isinstance(v, np.ndarray) for v in value.values())
        ):
            import io

            buffer = io.BytesIO()
            np.savez_compressed(buffer, **value)
            self._atomic_write(paths["npz"], buffer.getvalue())
        else:
            data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            self._atomic_write(paths["pkl"], data)
        self._count("cache_puts")

    def __contains__(self, key: str) -> bool:
        paths = self._paths(key)
        return paths["pkl"].exists() or paths["npz"].exists()
