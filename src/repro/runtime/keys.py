"""Content-addressed cache keys for runtime artifacts.

A cached result is only trustworthy if its key pins *everything* the
computation depends on:

- the **trace content** (a SHA-256 over the canonical binary
  serialization, so two identically-generated traces share a digest and
  any draw/shader/resource change produces a new one);
- the **GPU configuration** (every model field; the ``name`` label is
  deliberately excluded — two configs with identical parameters simulate
  identically, so e.g. DVFS points renamed between runs still hit);
- the **algorithm parameters** (clustering method, radius, seed, ...);
- the **format version** (:data:`CACHE_FORMAT_VERSION`), bumped whenever
  the simulator, feature extractor, or artifact layout changes meaning.

All digests are SHA-256 over canonical text/bytes, so keys are stable
across processes, platforms, and Python versions (``hash()`` is not).
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import weakref
from typing import Mapping, Optional, Tuple

from repro.gfx.trace import Trace
from repro.gfx.tracebin import write_trace_binary
from repro.simgpu.config import GpuConfig

#: Bump on any change to the simulator, feature extractor, task payloads,
#: or on-disk artifact encoding.  Old entries become unreachable (never
#: silently reused) because the version participates in every key.
#: v2: BatchFrameOutput grew the optional ``stage_cycles`` field.
CACHE_FORMAT_VERSION = 2

# Digests are memoized per live Trace object: traces are immutable, and
# paper-scale serialization is the expensive part of key construction.
_TRACE_DIGEST_MEMO: dict = {}


def _sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def trace_digest(trace: Trace) -> str:
    """Content digest of a trace (canonical binary serialization).

    Two traces constructed independently but with identical content
    (same generator, same seed) share a digest; trace ``metadata`` is not
    serialized and therefore does not participate.
    """
    memo = _TRACE_DIGEST_MEMO.get(id(trace))
    if memo is not None:
        ref, digest = memo
        if ref() is trace:
            return digest
    buffer = io.BytesIO()
    write_trace_binary(trace, buffer)
    digest = _sha256_hex(buffer.getvalue())
    _TRACE_DIGEST_MEMO[id(trace)] = (weakref.ref(trace), digest)
    return digest


def config_digest(config: GpuConfig) -> str:
    """Digest of every model-relevant :class:`GpuConfig` field.

    The ``name`` label is excluded: it never influences simulated
    numbers, and including it would defeat caching across renamed but
    numerically identical configs (DVFS points, preset copies).
    """
    fields = dataclasses.asdict(config)
    fields.pop("name", None)
    canonical = json.dumps(fields, sort_keys=True)
    return _sha256_hex(canonical.encode("utf-8"))


def params_digest(params: Optional[Mapping[str, object]]) -> str:
    """Digest of an algorithm-parameter mapping (order-insensitive).

    Values must have a stable ``repr`` (numbers, strings, bools, None,
    and tuples/lists of those) — the same constraint
    :func:`repro.util.rng.derive_seed` places on seed components.
    """
    items = sorted((params or {}).items())
    canonical = repr([(str(k), repr(v)) for k, v in items])
    return _sha256_hex(canonical.encode("utf-8"))


def task_key(
    kind: str,
    *,
    trace: Optional[Trace] = None,
    config: Optional[GpuConfig] = None,
    params: Optional[Mapping[str, object]] = None,
    extra: Tuple[object, ...] = (),
) -> str:
    """The content-addressed key for one cacheable artifact.

    ``kind`` names the computation (e.g. ``"simulate_frames"``); the
    digests of its inputs and :data:`CACHE_FORMAT_VERSION` complete the
    recipe documented in ``docs/RUNTIME.md``.
    """
    record = {
        "kind": kind,
        "version": CACHE_FORMAT_VERSION,
        "trace": trace_digest(trace) if trace is not None else None,
        "config": config_digest(config) if config is not None else None,
        "params": params_digest(params) if params is not None else None,
        "extra": [repr(item) for item in extra],
    }
    canonical = json.dumps(record, sort_keys=True)
    return _sha256_hex(canonical.encode("utf-8"))
