"""Content-addressed cache keys for runtime artifacts.

A cached result is only trustworthy if its key pins *everything* the
computation depends on:

- the **trace content** (a SHA-256 over the canonical binary
  serialization, so two identically-generated traces share a digest and
  any draw/shader/resource change produces a new one);
- the **GPU configuration** (every model field; the ``name`` label is
  deliberately excluded — two configs with identical parameters simulate
  identically, so e.g. DVFS points renamed between runs still hit);
- the **algorithm parameters** (clustering method, radius, seed, ...);
- the **format version** (:data:`CACHE_FORMAT_VERSION`), bumped whenever
  the simulator, feature extractor, or artifact layout changes meaning.

All digests are SHA-256 over canonical text/bytes, so keys are stable
across processes, platforms, and Python versions (``hash()`` is not).
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import weakref
from typing import Dict, Mapping, Optional, Tuple

from repro.gfx.trace import Trace
from repro.gfx.tracebin import write_trace_binary
from repro.simgpu.config import GpuConfig

#: Bump on any change to the simulator, feature extractor, task payloads,
#: or on-disk artifact encoding.  Old entries become unreachable (never
#: silently reused) because the version participates in every key.
#: v2: BatchFrameOutput grew the optional ``stage_cycles`` field.
#: v3: feature extraction standardized on ``np.log1p`` (1 ULP shift vs
#: ``math.log1p`` on some inputs) when the matrix path was vectorized.
CACHE_FORMAT_VERSION = 3

#: Introspection hook for the ``repro.checks`` cache-key-completeness
#: rules (KEY003): the exact fields the :func:`task_key` record carries.
#: The checker cross-checks this tuple against the literal ``record``
#: dict in :func:`task_key`, so the set of key inputs can only change in
#: a diff that touches this declaration.
KEY_RECORD_FIELDS: Tuple[str, ...] = (
    "kind",
    "version",
    "trace",
    "config",
    "params",
    "extra",
)

#: Introspection hook for the cache-key-completeness rules (KEY001): how
#: each field of :class:`repro.runtime.tasks.Task` participates in cache
#: keys — or why it deliberately does not.  Adding a ``Task`` field
#: without a row here is a CI failure: every new task input must state
#: how the cache sees it.
TASK_FIELD_KEYING: Mapping[str, str] = {
    "task_id": "label only: names the result slot, never changes the value",
    "kind": "keyed directly via the 'kind' record field",
    "payload": (
        "keyed via the trace/config/params/extra digests at the key-"
        "building call sites (Runtime.simulate_frames_many / "
        "cluster_frames pass every payload component to task_key)"
    ),
    "deps": (
        "dependency values are keyed by their own task keys; the id "
        "list itself is graph wiring, not an input"
    ),
    "cache_key": "is the key — self-referential by construction",
    "seed": (
        "derived from (run seed, kind, frame range) by spawn_worker_seed; "
        "the run seed participates via params at the call sites"
    ),
}

# Digests are memoized per live Trace object: traces are immutable, and
# paper-scale serialization is the expensive part of key construction.
_TRACE_DIGEST_MEMO: Dict[int, Tuple["weakref.ReferenceType[Trace]", str]] = {}


def _sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def trace_digest(trace: Trace) -> str:
    """Content digest of a trace (canonical binary serialization).

    Two traces constructed independently but with identical content
    (same generator, same seed) share a digest; trace ``metadata`` is not
    serialized and therefore does not participate.
    """
    memo = _TRACE_DIGEST_MEMO.get(id(trace))
    if memo is not None:
        ref, digest = memo
        if ref() is trace:
            return digest
    buffer = io.BytesIO()
    write_trace_binary(trace, buffer)
    digest = _sha256_hex(buffer.getvalue())
    _TRACE_DIGEST_MEMO[id(trace)] = (weakref.ref(trace), digest)
    return digest


def config_digest(config: GpuConfig) -> str:
    """Digest of every model-relevant :class:`GpuConfig` field.

    The ``name`` label is excluded: it never influences simulated
    numbers, and including it would defeat caching across renamed but
    numerically identical configs (DVFS points, preset copies).
    """
    fields = dataclasses.asdict(config)
    fields.pop("name", None)
    canonical = json.dumps(fields, sort_keys=True)
    return _sha256_hex(canonical.encode("utf-8"))


def params_digest(params: Optional[Mapping[str, object]]) -> str:
    """Digest of an algorithm-parameter mapping (order-insensitive).

    Values must have a stable ``repr`` (numbers, strings, bools, None,
    and tuples/lists of those) — the same constraint
    :func:`repro.util.rng.derive_seed` places on seed components.
    """
    items = sorted((params or {}).items())
    canonical = repr([(str(k), repr(v)) for k, v in items])
    return _sha256_hex(canonical.encode("utf-8"))


def task_key(
    kind: str,
    *,
    trace: Optional[Trace] = None,
    config: Optional[GpuConfig] = None,
    params: Optional[Mapping[str, object]] = None,
    extra: Tuple[object, ...] = (),
) -> str:
    """The content-addressed key for one cacheable artifact.

    ``kind`` names the computation (e.g. ``"simulate_frames"``); the
    digests of its inputs and :data:`CACHE_FORMAT_VERSION` complete the
    recipe documented in ``docs/RUNTIME.md``.
    """
    record = {
        "kind": kind,
        "version": CACHE_FORMAT_VERSION,
        "trace": trace_digest(trace) if trace is not None else None,
        "config": config_digest(config) if config is not None else None,
        "params": params_digest(params) if params is not None else None,
        "extra": [repr(item) for item in extra],
    }
    canonical = json.dumps(record, sort_keys=True)
    return _sha256_hex(canonical.encode("utf-8"))
