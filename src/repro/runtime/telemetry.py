"""Runtime instrumentation: counters and stage timers.

Every runtime component (engine, cache, task functions) reports into one
:class:`Telemetry` object, so a pipeline or suite run can answer the
questions that matter at pathfinding scale: how many tasks actually ran,
how many frame simulations the cache avoided, and where the wall time
went.  Task functions execute in worker processes, so they return their
counters with their results and the engine merges them here — a worker
incrementing a counter locally would be invisible to the parent.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping

from repro.util.tables import format_table


@dataclass(frozen=True)
class TelemetrySnapshot:
    """An immutable copy of the counters and timers at one moment."""

    counters: Mapping[str, int] = field(default_factory=dict)
    timers_s: Mapping[str, float] = field(default_factory=dict)

    def counter(self, name: str) -> int:
        """A counter's value, 0 when never incremented."""
        return int(self.counters.get(name, 0))

    def summary_line(self) -> str:
        """One-line digest for CLI output."""
        parts = [
            f"tasks={self.counter('tasks_run')}",
            f"frames_simulated={self.counter('frames_simulated')}",
            f"cache_hits={self.counter('cache_hits')}",
            f"cache_misses={self.counter('cache_misses')}",
        ]
        wall = sum(self.timers_s.values())
        if wall:
            parts.append(f"stage_time={wall:.2f}s")
        return "[runtime] " + " ".join(parts)

    def report(self) -> str:
        """Human-readable counter and per-stage timing tables."""
        counter_rows = [[name, self.counters[name]] for name in sorted(self.counters)]
        timer_rows = [
            [name, self.timers_s[name]] for name in sorted(self.timers_s)
        ]
        blocks = []
        if counter_rows:
            blocks.append(
                format_table(["counter", "value"], counter_rows,
                             title="Runtime counters")
            )
        if timer_rows:
            blocks.append(
                format_table(["stage", "seconds"], timer_rows,
                             title="Runtime stage timers", precision=3)
            )
        return "\n".join(blocks) if blocks else "[runtime] no activity recorded"


class Telemetry:
    """Mutable counters/timers shared by one runtime's components.

    Thread-safe: the engine's completion loop and nested stage timers may
    touch it concurrently.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._timers_s: Dict[str, float] = {}

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(amount)

    def merge_counters(self, counters: Mapping[str, int]) -> None:
        """Fold a worker's counter report into the totals."""
        with self._lock:
            for name, amount in counters.items():
                self._counters[name] = self._counters.get(name, 0) + int(amount)

    @contextmanager
    def timer(self, stage: str) -> Iterator[None]:
        """Accumulate wall time under ``stage`` (re-entrant across calls)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self._timers_s[stage] = self._timers_s.get(stage, 0.0) + elapsed

    def counter(self, name: str) -> int:
        with self._lock:
            return int(self._counters.get(name, 0))

    def snapshot(self) -> TelemetrySnapshot:
        """Freeze the current state (counters and timers are copied)."""
        with self._lock:
            return TelemetrySnapshot(
                counters=dict(self._counters), timers_s=dict(self._timers_s)
            )

    def report(self) -> str:
        return self.snapshot().report()
