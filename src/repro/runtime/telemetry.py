"""Runtime instrumentation — back-compat shim over :mod:`repro.obs`.

Historically this module owned the runtime's counters and stage timers.
The implementation now lives in the observability subsystem: counters
land in a labeled :class:`~repro.obs.metrics.Metrics` registry and stage
timers double as hierarchical spans on the bound tracer.  The
:class:`Telemetry` API is preserved verbatim (``count`` / ``timer`` /
``merge_counters`` / ``snapshot`` / ``report``) so every existing caller
keeps working; new code should use ``telemetry.metrics`` and
``telemetry.tracer`` (or :mod:`repro.obs` directly) for labels, spans,
and histograms.

Timer semantics, made honest: ``timers_s`` accumulates *every* stage
(including nested stages and merged worker-side timers), while
``top_timers_s`` accumulates only stages entered at nesting depth zero.
``summary_line`` reports the top-level total, so nesting never
double-counts wall time.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional

from repro.obs.metrics import Metrics
from repro.obs.spans import NULL_TRACER
from repro.util.tables import format_table


@dataclass(frozen=True)
class TelemetrySnapshot:
    """An immutable copy of the counters and timers at one moment.

    ``counters`` aggregates each metric over its label sets (so a
    counter incremented with labels still reads back by name).
    ``timers_s`` holds every stage ever timed, nested or not;
    ``top_timers_s`` holds only top-level stages and is what wall-time
    summaries must use.
    """

    counters: Mapping[str, int] = field(default_factory=dict)
    timers_s: Mapping[str, float] = field(default_factory=dict)
    top_timers_s: Optional[Mapping[str, float]] = None

    def counter(self, name: str) -> int:
        """A counter's value, 0 when never incremented."""
        return int(self.counters.get(name, 0))

    @property
    def stage_time_s(self) -> float:
        """Top-level stage wall time (nested stages excluded).

        Falls back to summing ``timers_s`` only when the snapshot was
        built without top-level tracking (hand-constructed snapshots).
        """
        timers = self.top_timers_s if self.top_timers_s is not None else self.timers_s
        return float(sum(timers.values()))

    def summary_line(self) -> str:
        """One-line digest for CLI output."""
        parts = [
            f"tasks={self.counter('tasks_run')}",
            f"frames_simulated={self.counter('frames_simulated')}",
            f"cache_hits={self.counter('cache_hits')}",
            f"cache_misses={self.counter('cache_misses')}",
        ]
        if not self.timers_s:
            # A run with zero timers is a real state (all-cache-hit runs,
            # bare engine use) — say so instead of silently omitting the
            # stage column.
            parts.append("no stages recorded")
        else:
            parts.append(f"stage_time={self.stage_time_s:.2f}s")
        return "[runtime] " + " ".join(parts)

    def report(self) -> str:
        """Human-readable counter and per-stage timing tables."""
        counter_rows = [[name, self.counters[name]] for name in sorted(self.counters)]
        top = self.top_timers_s if self.top_timers_s is not None else self.timers_s
        timer_rows = [
            [name, self.timers_s[name], "yes" if name in top else "nested"]
            for name in sorted(self.timers_s)
        ]
        blocks = []
        if counter_rows:
            blocks.append(
                format_table(["counter", "value"], counter_rows,
                             title="Runtime counters")
            )
        if timer_rows:
            blocks.append(
                format_table(["stage", "seconds", "top-level"], timer_rows,
                             title="Runtime stage timers", precision=3)
            )
        return "\n".join(blocks) if blocks else "[runtime] no activity recorded"


class Telemetry:
    """Mutable counters/timers shared by one runtime's components.

    Thread-safe: the engine's completion loop and nested stage timers may
    touch it concurrently.  ``metrics`` is the underlying labeled
    registry and ``tracer`` the span tracer stage timers record into —
    both default to inert instances, so ``Telemetry()`` stays the
    zero-configuration construction it always was.
    """

    def __init__(
        self, metrics: Optional[Metrics] = None, tracer: Optional[object] = None
    ) -> None:
        self.metrics = metrics if metrics is not None else Metrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._lock = threading.Lock()
        self._timers_s: Dict[str, float] = {}
        self._top_timers_s: Dict[str, float] = {}
        self._tls = threading.local()

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.metrics.inc(name, amount)

    def merge_counters(self, counters: Mapping[str, int]) -> None:
        """Fold a worker's counter report into the totals."""
        for name, amount in counters.items():
            self.metrics.inc(name, int(amount))

    def merge_timers(self, timers_s: Mapping[str, float]) -> None:
        """Fold a worker's stage timers into the totals.

        Worker time always elapses inside some parent-side stage timer,
        so merged timers count as nested — they appear in ``timers_s``
        but never in the top-level total.
        """
        with self._lock:
            for name, elapsed in timers_s.items():
                self._timers_s[name] = self._timers_s.get(name, 0.0) + float(elapsed)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record into a histogram on the underlying metrics registry."""
        self.metrics.observe(name, value, **labels)

    @contextmanager
    def timer(self, stage: str) -> Iterator[None]:
        """Accumulate wall time under ``stage`` (re-entrant across calls).

        Also opens a span named ``stage`` on the bound tracer, so stage
        timers and the trace timeline stay one source of truth.  Only
        time entered at nesting depth zero counts toward the top-level
        total reported by :meth:`TelemetrySnapshot.summary_line`.
        """
        depth = getattr(self._tls, "depth", 0)
        self._tls.depth = depth + 1
        start = time.perf_counter()
        try:
            with self.tracer.span(stage, category="stage"):
                yield
        finally:
            self._tls.depth = depth
            elapsed = time.perf_counter() - start
            with self._lock:
                self._timers_s[stage] = self._timers_s.get(stage, 0.0) + elapsed
                if depth == 0:
                    self._top_timers_s[stage] = (
                        self._top_timers_s.get(stage, 0.0) + elapsed
                    )

    def counter(self, name: str) -> int:
        return self.metrics.counter_total(name)

    def snapshot(self) -> TelemetrySnapshot:
        """Freeze the current state (counters and timers are copied)."""
        counters = self.metrics.snapshot().counter_totals()
        with self._lock:
            return TelemetrySnapshot(
                counters=counters,
                timers_s=dict(self._timers_s),
                top_timers_s=dict(self._top_timers_s),
            )

    def report(self) -> str:
        return self.snapshot().report()
