"""Task vocabulary for the runtime engine.

A :class:`Task` is one unit of pipeline work: simulate a range of
frames, cluster a range of frames, or call an arbitrary function.  Task
*functions* are module-level (so worker processes can resolve them by
kind name after a fork/spawn) and registered in :data:`TASK_FUNCTIONS`;
they receive the run's shared ``context`` (shipped once per worker, not
once per task — the trace is the heavy part), their payload, and the
results of their dependencies, and return a :class:`TaskResult` whose
counters the engine folds into telemetry in the parent process.

Task bodies also run under an ambient :class:`repro.obs.ObsContext`:
labeled metrics and nested spans they record land in the parent's
registry directly when executing inline, or in a worker-local registry
that ships back inside the :class:`TaskResult` (``timers``, ``metrics``,
``spans``) when executing in a pool worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigError
from repro.obs.context import current_obs


@dataclass(frozen=True)
class TaskResult:
    """A task function's return value plus its observability payload.

    ``counters`` is the legacy unlabeled counter report; ``timers``
    carries worker-side stage timers (merged via
    :meth:`~repro.runtime.telemetry.Telemetry.merge_timers`),
    ``metrics`` a worker registry dump (labeled counters/histograms),
    and ``spans`` the spans recorded inside the worker.  Task functions
    only ever fill ``value`` and ``counters``; the engine's worker
    wrapper attaches the rest.
    """

    value: Any
    counters: Mapping[str, int] = field(default_factory=dict)
    timers: Mapping[str, float] = field(default_factory=dict)
    metrics: Optional[Mapping[str, Any]] = None
    spans: Tuple[Any, ...] = ()


@dataclass(frozen=True)
class Task:
    """One node of a dependency-aware task graph.

    ``seed``, when set, seeds numpy's legacy global RNG in the worker
    before the task body runs (derive it with
    :func:`repro.util.rng.spawn_worker_seed` so it depends on the task's
    identity, never on scheduling).  ``cache_key`` marks the task's
    result as a content-addressed artifact: the engine consults the
    cache before running it and persists the value afterwards.
    """

    task_id: str
    kind: str
    payload: Any = None
    deps: Tuple[str, ...] = ()
    cache_key: Optional[str] = None
    seed: Optional[int] = None


TaskFunction = Callable[[Any, Any, Dict[str, Any]], TaskResult]

TASK_FUNCTIONS: Dict[str, TaskFunction] = {}


def task_function(kind: str) -> Callable[[TaskFunction], TaskFunction]:
    """Register a task function under ``kind`` (importable module scope).

    Registration happens at import time, so any module that defines task
    kinds must be imported in the worker as well — the built-in kinds
    live here; test/extension kinds rely on the fork start method or on
    the engine pickling the submission closure's imports.
    """

    def register(fn: TaskFunction) -> TaskFunction:
        if kind in TASK_FUNCTIONS:
            raise ConfigError(f"task kind {kind!r} is already registered")
        TASK_FUNCTIONS[kind] = fn
        return fn

    return register


def resolve_task_function(kind: str) -> TaskFunction:
    try:
        return TASK_FUNCTIONS[kind]
    except KeyError:
        known = ", ".join(sorted(TASK_FUNCTIONS))
        raise ConfigError(
            f"unknown task kind {kind!r}; registered kinds: {known}"
        ) from None


# ---------------------------------------------------------------------------
# Built-in task kinds
# ---------------------------------------------------------------------------


@task_function("call")
def _call(context: Any, payload: Any, deps: Dict[str, Any]) -> TaskResult:
    """Generic escape hatch: ``payload = (fn, args)``, returns ``fn(*args)``."""
    fn, args = payload
    return TaskResult(fn(*args))


@task_function("call_with_deps")
def _call_with_deps(context: Any, payload: Any, deps: Dict[str, Any]) -> TaskResult:
    """Like ``call`` but passes the dependency results as ``fn(deps, *args)``."""
    fn, args = payload
    return TaskResult(fn(deps, *args))


@task_function("simulate_frame_range")
def _simulate_frame_range(
    context: Any, payload: Any, deps: Dict[str, Any]
) -> TaskResult:
    """Simulate frames ``[start, stop)`` of the context trace on N configs.

    All configs are evaluated in one task so the order-dependent context
    arrays (texture warmth, switch penalties) are computed once per
    distinct context signature — the same sharing
    :class:`repro.simgpu.batch.TracePrecomp` gives a serial DVFS sweep.

    ``payload`` optionally carries the phase label (the runtime's stage
    name, e.g. ``ground_truth``); simulated-frame counts are recorded as
    ``frames_simulated{phase=...}`` on the ambient metrics registry.
    """
    from repro.simgpu.batch import simulate_frame_range_multi

    trace = context
    configs, start, stop, phase = payload
    per_config = simulate_frame_range_multi(trace, configs, start, stop)
    current_obs().metrics.inc(
        "frames_simulated", (stop - start) * len(configs), phase=phase
    )
    return TaskResult(tuple(tuple(outputs) for outputs in per_config))


@task_function("cluster_frame_range")
def _cluster_frame_range(
    context: Any, payload: Any, deps: Dict[str, Any]
) -> TaskResult:
    """Cluster frames ``[start, stop)`` of the context trace.

    Records the cluster-count and cluster-size distributions
    (``frame_cluster_count``, ``cluster_size`` histograms) on the
    ambient metrics registry.
    """
    from repro.core.cluster_frame import cluster_frame
    from repro.core.features import FeatureExtractor

    trace = context
    params, start, stop = payload
    extractor = FeatureExtractor(trace)
    metrics = current_obs().metrics
    clusterings = []
    for i in range(start, stop):
        clustering = cluster_frame(
            extractor.frame_matrix(trace.frames[i]), **dict(params)
        )
        metrics.observe("frame_cluster_count", clustering.num_clusters)
        for weight in clustering.weights:
            metrics.observe("cluster_size", float(weight))
        clusterings.append(clustering)
    return TaskResult(tuple(clusterings), {"frames_clustered": stop - start})
