"""Order-dependent execution context: cache warmth and pipeline switches.

The tracker walks the draws of a frame in submission order and reports,
for each draw, (a) how warm its bound texture set is — earlier draws may
already have streamed the same textures through the cache hierarchy — and
(b) how many cycles of pipeline reconfiguration the draw pays for shader,
fixed-function-state, and render-target changes.

Both effects depend on *where* a draw sits in the frame, not on the draw
alone.  They are therefore invisible to the paper's micro-architecture-
independent clustering features and form the intra-cluster variance that
experiments E1/E2 measure.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.gfx.drawcall import DrawCall
from repro.gfx.resources import TextureDesc
from repro.simgpu.config import GpuConfig


@dataclass(frozen=True)
class TrackerEffects:
    """Per-draw context effects fed into the cost model."""

    warm_fraction: float
    switch_cycles: float


class StateTracker:
    """Tracks residency and binding state across the draws of a frame.

    Texture residency is an LRU over texture byte footprints with capacity
    equal to the config's texture-cache + L2 capacity.  Binding state is
    the previous draw's shader id, fixed-function state key, and render
    target binding.
    """

    def __init__(self, config: GpuConfig) -> None:
        self._config = config
        self._capacity = config.warm_capacity_bytes
        self._resident: "OrderedDict[int, int]" = OrderedDict()
        self._prev_shader: Optional[int] = None
        self._prev_state_key: Optional[tuple] = None
        self._prev_rt_key: Optional[Tuple[object, ...]] = None

    def begin_frame(self) -> None:
        """Reset all context at a frame boundary.

        Frames are treated as independent: the swap-chain flip and RT
        round-robin flush useful residency in practice, and independence
        makes per-frame prediction well defined.
        """
        self._resident.clear()
        self._prev_shader = None
        self._prev_state_key = None
        self._prev_rt_key = None

    def observe(
        self, draw: DrawCall, textures: Sequence[TextureDesc]
    ) -> TrackerEffects:
        """Account for ``draw`` and return its context effects.

        Must be called once per draw, in submission order.
        """
        warm = self._warm_fraction(textures)
        self._touch(textures)
        switch = self._switch_cycles(draw)
        self._prev_shader = draw.shader_id
        self._prev_state_key = draw.state.state_key
        self._prev_rt_key = (draw.render_target_ids, draw.depth_target_id)
        return TrackerEffects(warm_fraction=warm, switch_cycles=switch)

    # -- internals -----------------------------------------------------------

    def _warm_fraction(self, textures: Sequence[TextureDesc]) -> float:
        total = sum(tex.byte_size for tex in textures)
        if total == 0:
            return 0.0
        warm = sum(
            tex.byte_size for tex in textures if tex.texture_id in self._resident
        )
        return warm / total

    def _touch(self, textures: Sequence[TextureDesc]) -> None:
        for tex in textures:
            if tex.texture_id in self._resident:
                self._resident.move_to_end(tex.texture_id)
            else:
                self._resident[tex.texture_id] = tex.byte_size
        used = sum(self._resident.values())
        while used > self._capacity and self._resident:
            _, evicted_bytes = self._resident.popitem(last=False)
            used -= evicted_bytes

    def _switch_cycles(self, draw: DrawCall) -> float:
        cycles = 0.0
        if draw.shader_id != self._prev_shader:
            cycles += self._config.shader_switch_cycles
        if draw.state.state_key != self._prev_state_key:
            cycles += self._config.state_switch_cycles
        rt_key = (draw.render_target_ids, draw.depth_target_id)
        if rt_key != self._prev_rt_key:
            cycles += self._config.rt_switch_cycles
        return cycles
