"""Per-draw cost model: stage cycles, memory traffic, and their combination.

:func:`draw_cost` is a pure function of the draw, its resolved resources,
the architecture configuration, and the context effects supplied by the
state tracker.  Both the sequential simulator and the vectorized batch
path compute exactly this model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.gfx.drawcall import DrawCall
from repro.gfx.resources import RenderTargetDesc, TextureDesc
from repro.gfx.shader import ShaderProgram
# Leaf imports rather than `from repro.simgpu import ...`: the package
# __init__ imports this module, so importing through the package would
# make cost.py part of an import cycle (repro.checks rule IMP003).
import repro.simgpu.memory as memory
import repro.simgpu.raster as raster
import repro.simgpu.rop as rop
import repro.simgpu.shadercore as shadercore
import repro.simgpu.texture as texture
from repro.simgpu.config import GpuConfig
from repro.simgpu.memory import TrafficBreakdown
from repro.simgpu.state_tracker import TrackerEffects
from repro.util.rng import stable_unit

STAGE_NAMES = ("vertex", "fetch", "raster", "pixel", "texture", "rop")


@dataclass(frozen=True)
class DrawCost:
    """Full cost breakdown of one draw on one architecture."""

    vertex_cycles: float
    fetch_cycles: float
    raster_cycles: float
    pixel_cycles: float
    texture_cycles: float
    rop_cycles: float
    switch_cycles: float
    overhead_cycles: float
    core_cycles: float
    traffic: TrafficBreakdown
    dram_cycles: float
    time_ns: float
    bottleneck: str

    @property
    def stage_cycles(self) -> Tuple[float, ...]:
        return (
            self.vertex_cycles,
            self.fetch_cycles,
            self.raster_cycles,
            self.pixel_cycles,
            self.texture_cycles,
            self.rop_cycles,
        )


def noise_multiplier(config: GpuConfig, noise_key: Tuple[object, ...]) -> float:
    """Deterministic 'unmodeled effects' multiplier for a draw slot.

    Keyed by execution slot (frame index, draw position), not by draw
    contents, so identical draws at different slots cost slightly
    differently — modeling DRAM refresh, scheduling jitter, and other
    effects outside the analytical model.
    """
    if config.noise_amplitude == 0.0:
        return 1.0
    unit = stable_unit("simgpu-noise", *noise_key)
    return 1.0 + config.noise_amplitude * (2.0 * unit - 1.0)


def combine_core_cycles(
    stage_cycles: Sequence[float],
    switch_cycles: float,
    overhead_cycles: float,
    config: GpuConfig,
) -> float:
    """Combine stage cycles under the pipelined-bottleneck assumption.

    The slowest stage sets the floor; a fraction of the remaining stages'
    work fails to overlap (dependency stalls, drain/fill) and is added on
    top, as are per-draw fixed costs.
    """
    slowest = max(stage_cycles)
    residual = config.serial_fraction * (sum(stage_cycles) - slowest)
    return slowest + residual + switch_cycles + overhead_cycles


def combine_time_ns(
    core_cycles: float, dram_cycles_count: float, config: GpuConfig
) -> float:
    """Wall time of a draw given core-domain and memory-domain cycles.

    Core and memory mostly overlap; whichever domain is the bottleneck
    sets the base, and a residual fraction of the other fails to hide.
    """
    core_ns = 1e3 * core_cycles / config.core_clock_mhz
    mem_ns = 1e3 * dram_cycles_count / config.memory_clock_mhz
    return max(core_ns, mem_ns) + config.mem_overlap_residual * min(core_ns, mem_ns)


def draw_cost(
    draw: DrawCall,
    shader: ShaderProgram,
    textures: Sequence[TextureDesc],
    color_targets: Sequence[RenderTargetDesc],
    depth_target: Optional[RenderTargetDesc],
    config: GpuConfig,
    effects: TrackerEffects,
    noise_key: Tuple[object, ...],
) -> DrawCost:
    """Cost of one draw in a given execution context.

    ``textures``/``color_targets``/``depth_target`` must be the resolved
    descriptors for the draw's bound ids, in binding order.
    """
    vertex_cycles = shadercore.shader_stage_cycles(
        invocations=draw.total_vertices,
        alu_ops=shader.vertex.alu_ops,
        tex_ops=shader.vertex.tex_ops,
        branch_ops=shader.vertex.branch_ops,
        registers=shader.vertex.registers,
        config=config,
    )
    vertex_bytes = float(draw.total_vertices * draw.vertex_stride_bytes)
    fetch_cycles = memory.vertex_fetch_cycles(vertex_bytes, config)
    raster_cycles_count = raster.raster_cycles(
        primitive_count=draw.primitive_count,
        pixels_rasterized=draw.pixels_rasterized,
        cull=draw.state.cull,
        config=config,
    )
    pixel_cycles = shadercore.shader_stage_cycles(
        invocations=draw.pixels_shaded,
        alu_ops=shader.pixel.alu_ops,
        tex_ops=shader.pixel.tex_ops,
        branch_ops=shader.pixel.branch_ops,
        registers=shader.pixel.registers,
        config=config,
    )
    samples = draw.pixels_shaded * shader.pixel.tex_ops + (
        draw.total_vertices * shader.vertex.tex_ops
    )
    tex_cycles = texture.texture_cycles(samples, config)
    footprint = texture.texture_footprint_bytes(textures)
    sample_miss_rate = texture.miss_rate(footprint, effects.warm_fraction, config)
    tex_bytes = texture.texture_miss_bytes(
        samples, sample_miss_rate, footprint, config
    )
    rop_cycles_count = rop.rop_cycles(draw, len(color_targets), config)
    rt_bytes = rop.color_traffic_bytes(draw, color_targets)
    if depth_target is not None:
        rt_bytes += rop.depth_traffic_bytes(draw, depth_target, config)

    traffic = TrafficBreakdown(
        vertex_bytes=vertex_bytes, texture_bytes=tex_bytes, rt_bytes=rt_bytes
    )
    stage_cycles = (
        vertex_cycles,
        fetch_cycles,
        raster_cycles_count,
        pixel_cycles,
        tex_cycles,
        rop_cycles_count,
    )
    core_cycles = combine_core_cycles(
        stage_cycles, effects.switch_cycles, config.draw_overhead_cycles, config
    )
    core_cycles *= noise_multiplier(config, noise_key)
    dram_cycles_count = memory.dram_cycles(traffic, config)
    time_ns = combine_time_ns(core_cycles, dram_cycles_count, config)

    core_ns = 1e3 * core_cycles / config.core_clock_mhz
    mem_ns = 1e3 * dram_cycles_count / config.memory_clock_mhz
    if mem_ns > core_ns:
        bottleneck = "memory"
    else:
        bottleneck = STAGE_NAMES[stage_cycles.index(max(stage_cycles))]

    return DrawCost(
        vertex_cycles=vertex_cycles,
        fetch_cycles=fetch_cycles,
        raster_cycles=raster_cycles_count,
        pixel_cycles=pixel_cycles,
        texture_cycles=tex_cycles,
        rop_cycles=rop_cycles_count,
        switch_cycles=effects.switch_cycles,
        overhead_cycles=config.draw_overhead_cycles,
        core_cycles=core_cycles,
        traffic=traffic,
        dram_cycles=dram_cycles_count,
        time_ns=time_ns,
        bottleneck=bottleneck,
    )
