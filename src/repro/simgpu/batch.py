"""Vectorized simulation path for paper-scale corpora.

Reimplements exactly the model in :mod:`repro.simgpu.cost` over numpy
arrays, one frame at a time.  The order-dependent context (texture
warmth, switch penalties) is *also* array-valued: per-draw switch events
and texture reuse distances are config-independent, so they are computed
once per trace (:func:`precompute_frame`) and combined with any
architecture point by cheap numpy arithmetic — warmth is a reuse-distance
vs. cache-capacity comparison, switch penalties are event flags times the
per-config costs.  See ``DESIGN.md`` ("Reuse-distance warmth") for why
this reformulation is exact for the tracker's size-weighted LRU, not an
approximation.

Two evaluation shapes exist on top of the shared precompute:

- :func:`simulate_frame_arrays` — one config, ``(num_draws,)`` arrays
  (the historical batch path, kept as a bridge and for parity tests);
- :func:`simulate_frame_multi` — **all** candidate configs at once as a
  ``(num_configs, num_draws)`` broadcast against a :class:`ConfigTable`,
  which is what makes architecture sweeps over 828K-draw corpora
  tractable: the per-config Python draw loop is gone entirely.

Worker processes memoize per-frame precompute keyed by the trace's
content digest (:func:`frame_precomp_cached`), so consecutive sweep /
validate tasks on the same trace never redo table resolution or
reuse-distance analysis.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.gfx.trace import Trace
from repro.obs.context import current_obs
from repro.simgpu import raster, rop, shadercore, texture
from repro.simgpu.config import GpuConfig
from repro.simgpu.simulator import FrameResult, TraceResult
from repro.util.rng import stable_unit


@dataclass
class FramePrecomp:
    """Config-independent per-draw arrays for one frame.

    Beyond the resolved cost-model inputs, this carries the two
    order-dependent event streams the state tracker used to rebuild per
    config: binding-switch flags (``*_switch``) and the texture-slot
    reuse distances (``tex_slot_*``), from which any config's warmth and
    switch-penalty arrays follow by pure arithmetic.
    """

    frame_index: int
    verts: np.ndarray
    prims: np.ndarray
    cull_none: np.ndarray
    pix_rast: np.ndarray
    pix_shaded: np.ndarray
    stride: np.ndarray
    vs_alu: np.ndarray
    vs_tex: np.ndarray
    vs_branch: np.ndarray
    vs_regs: np.ndarray
    ps_alu: np.ndarray
    ps_tex: np.ndarray
    ps_branch: np.ndarray
    ps_regs: np.ndarray
    footprint: np.ndarray
    color_bpp: np.ndarray
    n_color: np.ndarray
    blend_dest: np.ndarray
    depth_reads: np.ndarray
    depth_writes: np.ndarray
    depth_bpp: np.ndarray  # 0 when no depth target bound
    noise_units: np.ndarray
    pass_spans: List[Tuple[str, int, int]]
    draws: list  # DrawCall refs (length/debugging)
    # Switch-event flags: does draw i change shader / fixed-function
    # state / render-target binding relative to draw i-1?  (Draw 0 pays
    # all three, exactly like a fresh StateTracker.)
    shader_switch: np.ndarray = field(default=None)  # type: ignore[assignment]
    state_switch: np.ndarray = field(default=None)  # type: ignore[assignment]
    rt_switch: np.ndarray = field(default=None)  # type: ignore[assignment]
    # Texture-slot arrays, flattened over each draw's bound-texture list:
    # byte sizes, LRU reuse distances (np.inf on first touch), the
    # [offsets[i], offsets[i+1]) segment of draw i, and per-draw totals.
    tex_slot_sizes: np.ndarray = field(default=None)  # type: ignore[assignment]
    tex_slot_reuse: np.ndarray = field(default=None)  # type: ignore[assignment]
    tex_slot_offsets: np.ndarray = field(default=None)  # type: ignore[assignment]
    tex_totals: np.ndarray = field(default=None)  # type: ignore[assignment]

    @property
    def num_draws(self) -> int:
        return len(self.draws)


@dataclass
class TracePrecomp:
    """Precomputed arrays for a whole trace, plus a context cache."""

    trace: Trace
    frames: List[FramePrecomp]
    _context_cache: Dict[tuple, List[Tuple[np.ndarray, np.ndarray]]] = field(
        default_factory=dict
    )

    def context_arrays(
        self, config: GpuConfig
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """(warm_fraction, switch_cycles) arrays per frame for ``config``.

        Cached by the config fields that influence them, so a DVFS sweep
        (same capacities/penalties, different clocks) computes them once.
        """
        key = context_signature(config)
        cached = self._context_cache.get(key)
        if cached is not None:
            return cached
        per_frame = [context_for_frame(fp, config) for fp in self.frames]
        self._context_cache[key] = per_frame
        return per_frame


def context_signature(config: GpuConfig) -> tuple:
    """The config fields that influence the order-dependent context."""
    return (
        config.tex_cache_kb,
        config.l2_cache_kb,
        config.shader_switch_cycles,
        config.state_switch_cycles,
        config.rt_switch_cycles,
    )


class _Fenwick:
    """Fenwick (binary-indexed) tree over texture-touch timestamps.

    Position t holds the byte size of the texture whose *latest* touch
    happened at time t (0 otherwise), so a suffix sum over (ts, now] is
    the total size of distinct textures touched since timestamp ts.
    """

    __slots__ = ("size", "tree")

    def __init__(self, size: int) -> None:
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        while i <= self.size:
            self.tree[i] += delta
            i += i & -i

    def prefix(self, count: int) -> int:
        """Sum of the first ``count`` positions."""
        total = 0
        i = count
        tree = self.tree
        while i > 0:
            total += tree[i]
            i -= i & -i
        return total


def _texture_reuse_arrays(
    textures_by_draw: Sequence[Sequence],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(sizes, reuse, offsets, totals) for one frame's texture bindings.

    ``reuse[s]`` is the size-weighted LRU stack distance of slot ``s``:
    the slot's own byte size plus the total size of *distinct* textures
    touched since that texture's previous touch (``np.inf`` on first
    touch).  A texture is resident in the tracker's LRU of capacity C
    exactly when ``reuse <= C`` — see DESIGN.md for the equivalence
    argument — so per-config warmth reduces to one vector comparison.
    """
    num_draws = len(textures_by_draw)
    num_slots = sum(len(textures) for textures in textures_by_draw)
    sizes = np.zeros(num_slots, dtype=np.int64)
    reuse = np.full(num_slots, np.inf)
    offsets = np.zeros(num_draws + 1, dtype=np.int64)
    fenwick = _Fenwick(num_slots)
    last_touch: Dict[int, int] = {}
    live_total = 0  # sum of sizes currently tracked in the fenwick tree
    slot = 0
    now = 0
    for d, textures in enumerate(textures_by_draw):
        offsets[d] = slot
        # Residency is checked for every slot of the draw *before* any
        # of the draw's touches land, mirroring StateTracker.observe.
        for tex in textures:
            size = tex.byte_size
            sizes[slot] = size
            prev = last_touch.get(tex.texture_id)
            if prev is not None:
                reuse[slot] = size + (live_total - fenwick.prefix(prev + 1))
            slot += 1
        for tex in textures:
            prev = last_touch.get(tex.texture_id)
            if prev is not None:
                fenwick.add(prev, -tex.byte_size)
                live_total -= tex.byte_size
            fenwick.add(now, tex.byte_size)
            live_total += tex.byte_size
            last_touch[tex.texture_id] = now
            now += 1
    offsets[num_draws] = slot
    cumulative = np.concatenate(([0], np.cumsum(sizes)))
    totals = cumulative[offsets[1:]] - cumulative[offsets[:-1]]
    return sizes, reuse, offsets, totals


def warm_fractions(fp: FramePrecomp, capacity_bytes: int) -> np.ndarray:
    """Per-draw warm fraction for an LRU capacity, from reuse distances."""
    resident = np.where(
        fp.tex_slot_reuse <= capacity_bytes, fp.tex_slot_sizes, 0
    )
    cumulative = np.concatenate(([0], np.cumsum(resident)))
    warm_bytes = (
        cumulative[fp.tex_slot_offsets[1:]] - cumulative[fp.tex_slot_offsets[:-1]]
    )
    return np.divide(
        warm_bytes,
        fp.tex_totals,
        out=np.zeros(fp.num_draws),
        where=fp.tex_totals > 0,
    )


def switch_cycles(
    fp: FramePrecomp,
    shader_cost: float,
    state_cost: float,
    rt_cost: float,
) -> np.ndarray:
    """Per-draw switch penalty: event flags times per-config costs."""
    return (
        fp.shader_switch * shader_cost
        + fp.state_switch * state_cost
        + fp.rt_switch * rt_cost
    )


def context_for_frame(
    fp: FramePrecomp, config: GpuConfig
) -> Tuple[np.ndarray, np.ndarray]:
    """(warm_fraction, switch_cycles) for one frame's draws on ``config``.

    Pure array arithmetic over the frame's precomputed event streams;
    agrees bit-for-bit with walking a fresh
    :class:`~repro.simgpu.state_tracker.StateTracker` over the frame.
    """
    warm = warm_fractions(fp, config.warm_capacity_bytes)
    switch = switch_cycles(
        fp,
        config.shader_switch_cycles,
        config.state_switch_cycles,
        config.rt_switch_cycles,
    )
    return warm, switch


def precompute_frame(trace: Trace, frame) -> FramePrecomp:
    """Resolve tables and build the per-draw arrays for one frame."""
    draws = frame.draw_list
    n = len(draws)
    fp = FramePrecomp(
        frame_index=frame.index,
        verts=np.empty(n),
        prims=np.empty(n),
        cull_none=np.empty(n, dtype=bool),
        pix_rast=np.empty(n),
        pix_shaded=np.empty(n),
        stride=np.empty(n),
        vs_alu=np.empty(n),
        vs_tex=np.empty(n),
        vs_branch=np.empty(n),
        vs_regs=np.empty(n),
        ps_alu=np.empty(n),
        ps_tex=np.empty(n),
        ps_branch=np.empty(n),
        ps_regs=np.empty(n),
        footprint=np.empty(n),
        color_bpp=np.empty(n),
        n_color=np.empty(n),
        blend_dest=np.empty(n, dtype=bool),
        depth_reads=np.empty(n, dtype=bool),
        depth_writes=np.empty(n, dtype=bool),
        depth_bpp=np.empty(n),
        noise_units=np.empty(n),
        pass_spans=[],
        draws=draws,
        shader_switch=np.empty(n, dtype=bool),
        state_switch=np.empty(n, dtype=bool),
        rt_switch=np.empty(n, dtype=bool),
    )
    textures_by_draw: List[list] = []
    prev_shader = None
    prev_state_key = None
    prev_rt_key = None
    position = 0
    for render_pass in frame.passes:
        start = position
        for draw in render_pass.draws:
            shader = trace.shader(draw.shader_id)
            textures = [trace.texture(tid) for tid in draw.texture_ids]
            textures_by_draw.append(textures)
            color_targets = [
                trace.render_target(rid) for rid in draw.render_target_ids
            ]
            i = position
            fp.verts[i] = draw.total_vertices
            fp.prims[i] = draw.primitive_count
            fp.cull_none[i] = draw.state.cull.value == "none"
            fp.pix_rast[i] = draw.pixels_rasterized
            fp.pix_shaded[i] = draw.pixels_shaded
            fp.stride[i] = draw.vertex_stride_bytes
            fp.vs_alu[i] = shader.vertex.alu_ops
            fp.vs_tex[i] = shader.vertex.tex_ops
            fp.vs_branch[i] = shader.vertex.branch_ops
            fp.vs_regs[i] = shader.vertex.registers
            fp.ps_alu[i] = shader.pixel.alu_ops
            fp.ps_tex[i] = shader.pixel.tex_ops
            fp.ps_branch[i] = shader.pixel.branch_ops
            fp.ps_regs[i] = shader.pixel.registers
            fp.footprint[i] = texture.texture_footprint_bytes(textures)
            fp.color_bpp[i] = sum(rt.bytes_per_pixel for rt in color_targets)
            fp.n_color[i] = max(1, len(color_targets))
            fp.blend_dest[i] = draw.state.blend.reads_destination
            fp.depth_reads[i] = draw.state.depth.reads_depth
            fp.depth_writes[i] = draw.state.depth.writes_depth
            if draw.depth_target_id is not None:
                depth_rt = trace.render_target(draw.depth_target_id)
                fp.depth_bpp[i] = depth_rt.bytes_per_pixel
            else:
                fp.depth_bpp[i] = 0.0
            fp.noise_units[i] = stable_unit(
                "simgpu-noise", frame.index, position
            )
            fp.shader_switch[i] = draw.shader_id != prev_shader
            fp.state_switch[i] = draw.state.state_key != prev_state_key
            rt_key = (draw.render_target_ids, draw.depth_target_id)
            fp.rt_switch[i] = rt_key != prev_rt_key
            prev_shader = draw.shader_id
            prev_state_key = draw.state.state_key
            prev_rt_key = rt_key
            position += 1
        fp.pass_spans.append((render_pass.pass_type.value, start, position))
    (
        fp.tex_slot_sizes,
        fp.tex_slot_reuse,
        fp.tex_slot_offsets,
        fp.tex_totals,
    ) = _texture_reuse_arrays(textures_by_draw)
    return fp


def precompute_trace(trace: Trace) -> TracePrecomp:
    """Resolve tables and build the per-draw arrays for every frame."""
    frames = [precompute_frame(trace, frame) for frame in trace.frames]
    return TracePrecomp(trace=trace, frames=frames)


# ---------------------------------------------------------------------------
# Worker-side precompute memo
# ---------------------------------------------------------------------------

#: Per-process FramePrecomp cache: trace content digest -> frame index ->
#: precomputed arrays.  Keyed by digest (not object identity) so a trace
#: deserialized anew in each task of a sweep still shares the work, and
#: bounded so long-lived workers touring many traces don't accumulate.
_FRAME_PRECOMP_MEMO: "OrderedDict[str, Dict[int, FramePrecomp]]" = OrderedDict()
_FRAME_PRECOMP_TRACE_LIMIT = 2


def frame_precomp_cached(trace: Trace, frame) -> FramePrecomp:
    """Per-frame precompute, memoized per process by trace content digest.

    The digest comes from :func:`repro.runtime.keys.trace_digest` — the
    same identity the artifact cache uses — so identical traces share
    entries regardless of which task (or object) asks.
    """
    from repro.runtime.keys import trace_digest

    digest = trace_digest(trace)
    frames = _FRAME_PRECOMP_MEMO.get(digest)
    if frames is None:
        while len(_FRAME_PRECOMP_MEMO) >= _FRAME_PRECOMP_TRACE_LIMIT:
            _FRAME_PRECOMP_MEMO.popitem(last=False)
        frames = {}
        _FRAME_PRECOMP_MEMO[digest] = frames
    else:
        _FRAME_PRECOMP_MEMO.move_to_end(digest)
    fp = frames.get(frame.index)
    if fp is None:
        fp = precompute_frame(trace, frame)
        frames[frame.index] = fp
    return fp


def clear_precomp_cache() -> None:
    """Drop the per-process precompute memo (tests, memory pressure)."""
    _FRAME_PRECOMP_MEMO.clear()


# ---------------------------------------------------------------------------
# Single-config evaluation (the historical batch path)
# ---------------------------------------------------------------------------


def _throughput(regs: np.ndarray, config: GpuConfig) -> np.ndarray:
    occ = np.minimum(1.0, config.max_full_occupancy_registers / regs)
    return shadercore.MIN_THROUGHPUT_FACTOR + (
        1.0 - shadercore.MIN_THROUGHPUT_FACTOR
    ) * occ


@dataclass(frozen=True)
class BatchFrameOutput:
    """Vectorized per-frame result with per-draw detail arrays.

    ``stage_cycles`` (summed shader/texture/rop/... cycles per pipeline
    stage) is only populated when the frame was simulated under an
    enabled tracer — the extra reductions are skipped on the hot path.
    """

    frame_index: int
    time_ns: float
    core_cycles: float
    dram_cycles: float
    draw_times_ns: np.ndarray
    draw_core_cycles: np.ndarray
    pass_times_ns: Dict[str, float]
    stage_cycles: Optional[Dict[str, float]] = field(default=None, compare=False)


def simulate_frame_arrays(
    fp: FramePrecomp,
    warm: np.ndarray,
    switch: np.ndarray,
    config: GpuConfig,
    collect_stages: bool = False,
) -> BatchFrameOutput:
    """Evaluate the cost model over one frame's arrays."""
    vs_ops = (
        fp.vs_alu
        + shadercore.TEX_OP_ALU_COST * fp.vs_tex
        + shadercore.BRANCH_OP_ALU_COST * fp.vs_branch
    )
    ps_ops = (
        fp.ps_alu
        + shadercore.TEX_OP_ALU_COST * fp.ps_tex
        + shadercore.BRANCH_OP_ALU_COST * fp.ps_branch
    )
    lanes = config.alu_lanes
    vertex_cycles = fp.verts * vs_ops / (lanes * _throughput(fp.vs_regs, config))
    pixel_cycles = fp.pix_shaded * ps_ops / (lanes * _throughput(fp.ps_regs, config))

    vertex_bytes = fp.verts * fp.stride
    fetch_cycles = vertex_bytes / config.vertex_fetch_bytes_per_cycle

    setup_prims = np.where(fp.cull_none, fp.prims, fp.prims * raster.CULL_SURVIVAL)
    raster_cycles = (
        setup_prims / config.raster_prims_per_cycle
        + fp.pix_rast / config.raster_pixels_per_cycle
    )

    samples = fp.pix_shaded * fp.ps_tex + fp.verts * fp.vs_tex
    tex_cycles = samples / (config.tex_units_total * config.tex_rate_per_unit)
    pressure = fp.footprint / (config.tex_cache_kb * 1024)
    cold = np.minimum(
        texture.MAX_MISS, texture.BASE_MISS + texture.CAPACITY_MISS_SCALE * pressure
    )
    miss = np.where(
        fp.footprint == 0,
        0.0,
        cold * (warm * texture.WARM_MISS_MULTIPLIER + (1.0 - warm)),
    )
    tex_bytes = np.minimum(
        samples * miss * config.cacheline_bytes,
        texture.FOOTPRINT_OVERFETCH_CAP * fp.footprint,
    )

    writes = fp.pix_shaded * fp.n_color
    rop_rate = config.rop_pixels_total_per_cycle * np.where(
        fp.blend_dest, rop.BLEND_THROUGHPUT_FACTOR, 1.0
    )
    depth_tests = np.where(fp.depth_reads, fp.pix_rast, 0.0)
    rop_cycles = (writes + 0.25 * depth_tests) / rop_rate

    color_write = fp.pix_shaded * fp.color_bpp
    rt_bytes = color_write + np.where(fp.blend_dest, color_write, 0.0)
    depth_pp = fp.depth_bpp * config.depth_compression
    rt_bytes = rt_bytes + np.where(fp.depth_reads, fp.pix_rast * depth_pp, 0.0)
    rt_bytes = rt_bytes + np.where(fp.depth_writes, fp.pix_shaded * depth_pp, 0.0)

    stages = np.stack(
        [vertex_cycles, fetch_cycles, raster_cycles, pixel_cycles, tex_cycles, rop_cycles]
    )
    slowest = stages.max(axis=0)
    residual = config.serial_fraction * (stages.sum(axis=0) - slowest)
    core = slowest + residual + switch + config.draw_overhead_cycles
    core = core * (1.0 + config.noise_amplitude * (2.0 * fp.noise_units - 1.0))

    dram_bytes = (
        vertex_bytes * (1.0 - config.l2_hit_vertex)
        + tex_bytes * (1.0 - config.l2_hit_tex)
        + rt_bytes * (1.0 - config.l2_hit_rt)
    )
    dram = dram_bytes / config.dram_bytes_per_mem_cycle

    core_ns = 1e3 * core / config.core_clock_mhz
    mem_ns = 1e3 * dram / config.memory_clock_mhz
    times = np.maximum(core_ns, mem_ns) + config.mem_overlap_residual * np.minimum(
        core_ns, mem_ns
    )

    pass_times = {}
    for pass_name, start, end in fp.pass_spans:
        total = float(times[start:end].sum())
        pass_times[pass_name] = pass_times.get(pass_name, 0.0) + total

    stage_cycles: Optional[Dict[str, float]] = None
    if collect_stages:
        # Where the simulated cycles went, summed over the frame's draws
        # — "shader" is the unified-ALU time (vertex + pixel work).
        stage_cycles = {
            "shader": float(vertex_cycles.sum() + pixel_cycles.sum()),
            "fetch": float(fetch_cycles.sum()),
            "raster": float(raster_cycles.sum()),
            "texture": float(tex_cycles.sum()),
            "rop": float(rop_cycles.sum()),
            "memory": float(dram.sum()),
        }

    return BatchFrameOutput(
        frame_index=fp.frame_index,
        time_ns=float(times.sum()),
        core_cycles=float(core.sum()),
        dram_cycles=float(dram.sum()),
        draw_times_ns=times,
        draw_core_cycles=core,
        pass_times_ns=pass_times,
        stage_cycles=stage_cycles,
    )


# ---------------------------------------------------------------------------
# Config-vectorized evaluation (all candidates in one pass)
# ---------------------------------------------------------------------------


class ConfigTable:
    """Struct-of-arrays view of N candidate configs for broadcasting.

    Every model parameter becomes a ``(N, 1)`` float column so the cost
    model can evaluate ``(num_configs, num_draws)`` in one numpy pass.
    Context inputs (warm capacities, switch costs) stay exact Python
    scalars because warmth needs integer-exact capacity comparisons and
    both are shared across configs that agree on them.
    """

    def __init__(self, configs: Sequence[GpuConfig]) -> None:
        if not configs:
            raise SimulationError("ConfigTable needs at least one config")
        for config in configs:
            if not isinstance(config, GpuConfig):
                raise SimulationError(
                    f"config must be GpuConfig, got {type(config).__name__}"
                )
        self.configs: Tuple[GpuConfig, ...] = tuple(configs)

        def col(get) -> np.ndarray:
            return np.array(
                [float(get(c)) for c in self.configs]
            ).reshape(-1, 1)

        self.alu_lanes = col(lambda c: c.alu_lanes)
        self.max_occ_regs = col(lambda c: c.max_full_occupancy_registers)
        self.vertex_fetch_bpc = col(lambda c: c.vertex_fetch_bytes_per_cycle)
        self.raster_prims_pc = col(lambda c: c.raster_prims_per_cycle)
        self.raster_pixels_pc = col(lambda c: c.raster_pixels_per_cycle)
        self.tex_rate = col(lambda c: c.tex_units_total * c.tex_rate_per_unit)
        self.tex_capacity = col(lambda c: c.tex_cache_kb * 1024)
        self.cacheline = col(lambda c: c.cacheline_bytes)
        self.rop_rate = col(lambda c: c.rop_pixels_total_per_cycle)
        self.depth_compression = col(lambda c: c.depth_compression)
        self.serial_fraction = col(lambda c: c.serial_fraction)
        self.draw_overhead = col(lambda c: c.draw_overhead_cycles)
        self.noise_amplitude = col(lambda c: c.noise_amplitude)
        self.l2_miss_vertex = col(lambda c: 1.0 - c.l2_hit_vertex)
        self.l2_miss_tex = col(lambda c: 1.0 - c.l2_hit_tex)
        self.l2_miss_rt = col(lambda c: 1.0 - c.l2_hit_rt)
        self.dram_bpc = col(lambda c: c.dram_bytes_per_mem_cycle)
        self.core_clock = col(lambda c: c.core_clock_mhz)
        self.memory_clock = col(lambda c: c.memory_clock_mhz)
        self.mem_overlap = col(lambda c: c.mem_overlap_residual)
        self.warm_capacities: Tuple[int, ...] = tuple(
            c.warm_capacity_bytes for c in self.configs
        )
        self.switch_costs: Tuple[Tuple[float, float, float], ...] = tuple(
            (c.shader_switch_cycles, c.state_switch_cycles, c.rt_switch_cycles)
            for c in self.configs
        )

    def __len__(self) -> int:
        return len(self.configs)


def _context_matrix(
    fp: FramePrecomp, table: ConfigTable
) -> Tuple[np.ndarray, np.ndarray]:
    """(warm, switch) as ``(num_configs, num_draws)``, shared per value.

    Rows are computed once per *distinct* warm capacity / switch-cost
    triple, so a DVFS sweep (identical caches and penalties at every
    clock) pays for exactly one row each.
    """
    num_configs = len(table)
    n = fp.num_draws
    warm = np.empty((num_configs, n))
    switch = np.empty((num_configs, n))
    warm_rows: Dict[int, np.ndarray] = {}
    switch_rows: Dict[Tuple[float, float, float], np.ndarray] = {}
    for ci in range(num_configs):
        capacity = table.warm_capacities[ci]
        row = warm_rows.get(capacity)
        if row is None:
            row = warm_fractions(fp, capacity)
            warm_rows[capacity] = row
        warm[ci] = row
        costs = table.switch_costs[ci]
        srow = switch_rows.get(costs)
        if srow is None:
            srow = switch_cycles(fp, *costs)
            switch_rows[costs] = srow
        switch[ci] = srow
    return warm, switch


def _throughput_multi(regs: np.ndarray, max_occ_regs: np.ndarray) -> np.ndarray:
    occ = np.minimum(1.0, max_occ_regs / regs)
    return shadercore.MIN_THROUGHPUT_FACTOR + (
        1.0 - shadercore.MIN_THROUGHPUT_FACTOR
    ) * occ


def simulate_frame_multi(
    fp: FramePrecomp,
    table: ConfigTable,
    collect_stages: bool = False,
) -> List[BatchFrameOutput]:
    """Evaluate one frame on every config as a ``(C, N)`` numpy pass.

    Returns one :class:`BatchFrameOutput` per config, in table order —
    row ``i`` of every intermediate is numerically identical to running
    :func:`simulate_frame_arrays` with ``table.configs[i]``.
    """
    warm, switch = _context_matrix(fp, table)

    vs_ops = (
        fp.vs_alu
        + shadercore.TEX_OP_ALU_COST * fp.vs_tex
        + shadercore.BRANCH_OP_ALU_COST * fp.vs_branch
    )
    ps_ops = (
        fp.ps_alu
        + shadercore.TEX_OP_ALU_COST * fp.ps_tex
        + shadercore.BRANCH_OP_ALU_COST * fp.ps_branch
    )
    vertex_cycles = (
        fp.verts * vs_ops
        / (table.alu_lanes * _throughput_multi(fp.vs_regs, table.max_occ_regs))
    )
    pixel_cycles = (
        fp.pix_shaded * ps_ops
        / (table.alu_lanes * _throughput_multi(fp.ps_regs, table.max_occ_regs))
    )

    vertex_bytes = fp.verts * fp.stride
    fetch_cycles = vertex_bytes / table.vertex_fetch_bpc

    setup_prims = np.where(fp.cull_none, fp.prims, fp.prims * raster.CULL_SURVIVAL)
    raster_cycles = (
        setup_prims / table.raster_prims_pc + fp.pix_rast / table.raster_pixels_pc
    )

    samples = fp.pix_shaded * fp.ps_tex + fp.verts * fp.vs_tex
    tex_cycles = samples / table.tex_rate
    pressure = fp.footprint / table.tex_capacity
    cold = np.minimum(
        texture.MAX_MISS, texture.BASE_MISS + texture.CAPACITY_MISS_SCALE * pressure
    )
    miss = np.where(
        fp.footprint == 0,
        0.0,
        cold * (warm * texture.WARM_MISS_MULTIPLIER + (1.0 - warm)),
    )
    tex_bytes = np.minimum(
        samples * miss * table.cacheline,
        texture.FOOTPRINT_OVERFETCH_CAP * fp.footprint,
    )

    writes = fp.pix_shaded * fp.n_color
    rop_rate = table.rop_rate * np.where(
        fp.blend_dest, rop.BLEND_THROUGHPUT_FACTOR, 1.0
    )
    depth_tests = np.where(fp.depth_reads, fp.pix_rast, 0.0)
    rop_cycles = (writes + 0.25 * depth_tests) / rop_rate

    color_write = fp.pix_shaded * fp.color_bpp
    rt_base = color_write + np.where(fp.blend_dest, color_write, 0.0)
    depth_pp = fp.depth_bpp * table.depth_compression
    rt_bytes = rt_base + np.where(fp.depth_reads, fp.pix_rast * depth_pp, 0.0)
    rt_bytes = rt_bytes + np.where(fp.depth_writes, fp.pix_shaded * depth_pp, 0.0)

    stages = np.stack(
        [vertex_cycles, fetch_cycles, raster_cycles, pixel_cycles, tex_cycles, rop_cycles]
    )
    slowest = stages.max(axis=0)
    residual = table.serial_fraction * (stages.sum(axis=0) - slowest)
    core = slowest + residual + switch + table.draw_overhead
    core = core * (1.0 + table.noise_amplitude * (2.0 * fp.noise_units - 1.0))

    dram_bytes = (
        vertex_bytes * table.l2_miss_vertex
        + tex_bytes * table.l2_miss_tex
        + rt_bytes * table.l2_miss_rt
    )
    dram = dram_bytes / table.dram_bpc

    core_ns = 1e3 * core / table.core_clock
    mem_ns = 1e3 * dram / table.memory_clock
    times = np.maximum(core_ns, mem_ns) + table.mem_overlap * np.minimum(
        core_ns, mem_ns
    )

    time_totals = times.sum(axis=1)
    core_totals = core.sum(axis=1)
    dram_totals = dram.sum(axis=1)

    outputs: List[BatchFrameOutput] = []
    for ci in range(len(table)):
        pass_times: Dict[str, float] = {}
        for pass_name, start, end in fp.pass_spans:
            total = float(times[ci, start:end].sum())
            pass_times[pass_name] = pass_times.get(pass_name, 0.0) + total
        stage_cycles: Optional[Dict[str, float]] = None
        if collect_stages:
            stage_cycles = {
                "shader": float(
                    vertex_cycles[ci].sum() + pixel_cycles[ci].sum()
                ),
                "fetch": float(fetch_cycles[ci].sum()),
                "raster": float(raster_cycles[ci].sum()),
                "texture": float(tex_cycles[ci].sum()),
                "rop": float(rop_cycles[ci].sum()),
                "memory": float(dram[ci].sum()),
            }
        outputs.append(
            BatchFrameOutput(
                frame_index=fp.frame_index,
                time_ns=float(time_totals[ci]),
                core_cycles=float(core_totals[ci]),
                dram_cycles=float(dram_totals[ci]),
                draw_times_ns=times[ci],
                draw_core_cycles=core[ci],
                pass_times_ns=pass_times,
                stage_cycles=stage_cycles,
            )
        )
    return outputs


# ---------------------------------------------------------------------------
# Trace-level drivers
# ---------------------------------------------------------------------------


def simulate_frames_batch(
    trace: Trace, config: GpuConfig, precomp: Optional[TracePrecomp] = None
) -> List[BatchFrameOutput]:
    """Vectorized simulation of every frame; returns per-draw detail."""
    if precomp is None:
        precomp = precompute_trace(trace)
    contexts = precomp.context_arrays(config)
    return [
        simulate_frame_arrays(fp, warm, switch, config)
        for fp, (warm, switch) in zip(precomp.frames, contexts)
    ]


def simulate_frame_range_multi(
    trace: Trace,
    configs: Sequence[GpuConfig],
    start: int,
    stop: int,
) -> List[List[BatchFrameOutput]]:
    """Simulate frames ``[start, stop)`` on every config, config-vectorized.

    One ``(num_configs, num_draws)`` numpy pass per frame; per-frame
    precompute comes from the per-process digest-keyed memo, so repeated
    sweep/validate tasks on the same trace skip it entirely.  Frames are
    mutually independent, which makes this the unit of work the parallel
    runtime distributes — any partition of ``[0, num_frames)``
    concatenates to exactly the full-trace result.
    """
    if not 0 <= start <= stop <= trace.num_frames:
        raise SimulationError(
            f"frame range [{start}, {stop}) invalid for "
            f"{trace.num_frames}-frame trace"
        )
    configs = tuple(configs)
    if not configs:
        return []
    obs = current_obs()
    tracer = obs.tracer
    table = ConfigTable(configs)
    per_config: List[List[BatchFrameOutput]] = [[] for _ in configs]
    for frame in trace.frames[start:stop]:
        fp = frame_precomp_cached(trace, frame)
        if tracer.enabled:
            # A span per simulated frame, carrying where the cycles went
            # (summed over the candidate configs): the trace answers
            # "which stage dominated".
            with tracer.span(
                "simulate_frame",
                category="simgpu",
                frame=fp.frame_index,
                draws=fp.num_draws,
                configs=len(configs),
            ) as span:
                outputs = simulate_frame_multi(fp, table, collect_stages=True)
                totals: Dict[str, float] = {}
                for out in outputs:
                    for stage, cycles in (out.stage_cycles or {}).items():
                        totals[stage] = totals.get(stage, 0.0) + cycles
                span.set(
                    time_ns=sum(out.time_ns for out in outputs),
                    **{
                        f"{stage}_cycles": cycles
                        for stage, cycles in totals.items()
                    },
                )
        else:
            outputs = simulate_frame_multi(fp, table)
        for slot, out in enumerate(outputs):
            obs.metrics.observe("frame_core_cycles", out.core_cycles)
            per_config[slot].append(out)
    return per_config


def simulate_frame_range(
    trace: Trace, config: GpuConfig, start: int, stop: int
) -> List[BatchFrameOutput]:
    """Simulate frames ``[start, stop)`` of ``trace`` on one config."""
    return simulate_frame_range_multi(trace, (config,), start, stop)[0]


def trace_result_from_outputs(
    trace_name: str, config_name: str, outputs: Sequence[BatchFrameOutput]
) -> TraceResult:
    """Package per-frame batch outputs as a :class:`TraceResult`."""
    frame_results = tuple(
        FrameResult(
            frame_index=out.frame_index,
            num_draws=len(out.draw_times_ns),
            time_ns=out.time_ns,
            core_cycles=out.core_cycles,
            dram_cycles=out.dram_cycles,
            pass_times_ns=out.pass_times_ns,
            draw_costs=None,
        )
        for out in outputs
    )
    return TraceResult(
        trace_name=trace_name,
        config_name=config_name,
        frame_results=frame_results,
    )


def simulate_trace_batch(
    trace: Trace, config: GpuConfig, precomp: Optional[TracePrecomp] = None
) -> TraceResult:
    """Vectorized equivalent of :meth:`GpuSimulator.simulate_trace`."""
    outputs = simulate_frames_batch(trace, config, precomp)
    return trace_result_from_outputs(trace.name, config.name, outputs)


def simulate_trace_multi(
    trace: Trace,
    configs: Sequence[GpuConfig],
    precomp: Optional[TracePrecomp] = None,
) -> List[TraceResult]:
    """Config-vectorized: the whole trace on every candidate, one pass.

    The fast path for architecture sweeps: per-frame precompute happens
    once, and every frame is evaluated on all configs as a single
    ``(num_configs, num_draws)`` broadcast.
    """
    configs = tuple(configs)
    if not configs:
        return []
    table = ConfigTable(configs)
    if precomp is None:
        precomp = precompute_trace(trace)
    per_config: List[List[BatchFrameOutput]] = [[] for _ in configs]
    for fp in precomp.frames:
        for slot, out in enumerate(simulate_frame_multi(fp, table)):
            per_config[slot].append(out)
    return [
        trace_result_from_outputs(trace.name, config.name, outputs)
        for config, outputs in zip(configs, per_config)
    ]
