"""Vectorized simulation path for paper-scale corpora.

Reimplements exactly the model in :mod:`repro.simgpu.cost` over numpy
arrays, one frame at a time.  The order-dependent context (texture
warmth, switch penalties) is *also* array-valued: per-draw switch events
and texture reuse distances are config-independent, so they are computed
once per trace (:func:`precompute_frame`) and combined with any
architecture point by cheap numpy arithmetic — warmth is a reuse-distance
vs. cache-capacity comparison, switch penalties are event flags times the
per-config costs.  See ``DESIGN.md`` ("Reuse-distance warmth") for why
this reformulation is exact for the tracker's size-weighted LRU, not an
approximation.

Two evaluation shapes exist on top of the shared precompute:

- :func:`simulate_frame_arrays` — one config, ``(num_draws,)`` arrays
  (the historical batch path, kept as a bridge and for parity tests);
- :func:`simulate_frame_multi` — **all** candidate configs at once as a
  ``(num_configs, num_draws)`` broadcast against a :class:`ConfigTable`,
  which is what makes architecture sweeps over 828K-draw corpora
  tractable: the per-config Python draw loop is gone entirely.

Worker processes memoize per-frame precompute keyed by the trace's
content digest (:func:`frame_precomp_cached`), so consecutive sweep /
validate tasks on the same trace never redo table resolution or
reuse-distance analysis.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.gfx.trace import Trace
from repro.obs.context import current_obs
from repro.simgpu import _kernels, precomp_store, raster, rop, shadercore, texture
from repro.gfx.enums import PrimitiveTopology
from repro.simgpu.config import GpuConfig
from repro.simgpu.simulator import FrameResult, TraceResult


@dataclass
class FramePrecomp:
    """Config-independent per-draw arrays for one frame.

    Beyond the resolved cost-model inputs, this carries the two
    order-dependent event streams the state tracker used to rebuild per
    config: binding-switch flags (``*_switch``) and the texture-slot
    reuse distances (``tex_slot_*``), from which any config's warmth and
    switch-penalty arrays follow by pure arithmetic.
    """

    frame_index: int
    verts: np.ndarray
    prims: np.ndarray
    cull_none: np.ndarray
    pix_rast: np.ndarray
    pix_shaded: np.ndarray
    stride: np.ndarray
    vs_alu: np.ndarray
    vs_tex: np.ndarray
    vs_branch: np.ndarray
    vs_regs: np.ndarray
    ps_alu: np.ndarray
    ps_tex: np.ndarray
    ps_branch: np.ndarray
    ps_regs: np.ndarray
    footprint: np.ndarray
    color_bpp: np.ndarray
    n_color: np.ndarray
    blend_dest: np.ndarray
    depth_reads: np.ndarray
    depth_writes: np.ndarray
    depth_bpp: np.ndarray  # 0 when no depth target bound
    noise_units: np.ndarray
    pass_spans: List[Tuple[str, int, int]]
    draws: list  # DrawCall refs (length/debugging)
    # Switch-event flags: does draw i change shader / fixed-function
    # state / render-target binding relative to draw i-1?  (Draw 0 pays
    # all three, exactly like a fresh StateTracker.)
    shader_switch: np.ndarray = field(default=None)  # type: ignore[assignment]
    state_switch: np.ndarray = field(default=None)  # type: ignore[assignment]
    rt_switch: np.ndarray = field(default=None)  # type: ignore[assignment]
    # Texture-slot arrays, flattened over each draw's bound-texture list:
    # byte sizes, LRU reuse distances (np.inf on first touch), the
    # [offsets[i], offsets[i+1]) segment of draw i, and per-draw totals.
    tex_slot_sizes: np.ndarray = field(default=None)  # type: ignore[assignment]
    tex_slot_reuse: np.ndarray = field(default=None)  # type: ignore[assignment]
    tex_slot_offsets: np.ndarray = field(default=None)  # type: ignore[assignment]
    tex_totals: np.ndarray = field(default=None)  # type: ignore[assignment]

    @property
    def num_draws(self) -> int:
        return len(self.draws)


@dataclass
class TracePrecomp:
    """Precomputed arrays for a whole trace, plus a context cache."""

    trace: Trace
    frames: List[FramePrecomp]
    _context_cache: Dict[tuple, List[Tuple[np.ndarray, np.ndarray]]] = field(
        default_factory=dict
    )

    def context_arrays(
        self, config: GpuConfig
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """(warm_fraction, switch_cycles) arrays per frame for ``config``.

        Cached by the config fields that influence them, so a DVFS sweep
        (same capacities/penalties, different clocks) computes them once.
        """
        key = context_signature(config)
        cached = self._context_cache.get(key)
        if cached is not None:
            return cached
        per_frame = [context_for_frame(fp, config) for fp in self.frames]
        self._context_cache[key] = per_frame
        return per_frame


def context_signature(config: GpuConfig) -> tuple:
    """The config fields that influence the order-dependent context."""
    return (
        config.tex_cache_kb,
        config.l2_cache_kb,
        config.shader_switch_cycles,
        config.state_switch_cycles,
        config.rt_switch_cycles,
    )


@dataclass
class _TraceTables:
    """Per-trace resource lookup tables, built once and memoized.

    ``byte_size`` and ``bytes_per_pixel`` are computed properties (mip
    chains, format enums); evaluating them once per *trace* instead of
    once per bound slot per frame is most of the precompute layer's
    python-side cost at paper scale.
    """

    texture_sizes: Dict[int, int]
    rt_bpp: Dict[int, float]
    shader_rows: Dict[int, int]
    #: (num_shaders, 8): vs alu/tex/branch/regs, ps alu/tex/branch/regs.
    shader_table: np.ndarray
    #: Dense id→byte_size / id→shader_table row arrays (sentinel -1 for
    #: holes), or None when the id space is too sparse for direct
    #: indexing; lets the per-frame gather use one fancy-index instead
    #: of a python dict lookup per slot/draw.
    texture_size_lookup: Optional[np.ndarray]
    shader_row_lookup: Optional[np.ndarray]


def _dense_lookup(table: Dict[int, int]) -> Optional[np.ndarray]:
    """``table`` as a direct-index int64 array, or None if too sparse.

    Resource ids in captured traces are small sequential ints, so a
    flat array with a -1 hole sentinel is almost always viable; the 4x
    density bound keeps pathological id spaces on the dict path.
    """
    if not table:
        return None
    ids = table.keys()
    top = max(ids)
    if min(ids) < 0 or top >= 4 * len(table) + 64:
        return None
    lookup = np.full(top + 1, -1, dtype=np.int64)
    for key, value in table.items():
        lookup[key] = value
    return lookup


# Keyed by id() with a liveness check, exactly like the trace-digest
# memo in repro.runtime.keys — traces are immutable, so the tables can
# never go stale while the object is alive.
_TRACE_TABLES_MEMO: Dict[int, Tuple["weakref.ReferenceType[Trace]", _TraceTables]] = {}


def trace_tables(trace: Trace) -> _TraceTables:
    """The memoized resource tables of ``trace``."""
    memo = _TRACE_TABLES_MEMO.get(id(trace))
    if memo is not None:
        ref, tables = memo
        if ref() is trace:
            return tables
    shader_rows: Dict[int, int] = {}
    rows = []
    for shader_id, shader in trace.shaders.items():
        shader_rows[shader_id] = len(rows)
        rows.append(
            (
                shader.vertex.alu_ops,
                shader.vertex.tex_ops,
                shader.vertex.branch_ops,
                shader.vertex.registers,
                shader.pixel.alu_ops,
                shader.pixel.tex_ops,
                shader.pixel.branch_ops,
                shader.pixel.registers,
            )
        )
    texture_sizes = {
        tid: tex.byte_size for tid, tex in trace.textures.items()
    }
    tables = _TraceTables(
        texture_sizes=texture_sizes,
        rt_bpp={
            rid: rt.bytes_per_pixel
            for rid, rt in trace.render_targets.items()
        },
        shader_rows=shader_rows,
        shader_table=(
            np.array(rows, dtype=np.float64) if rows else np.empty((0, 8))
        ),
        texture_size_lookup=_dense_lookup(texture_sizes),
        shader_row_lookup=_dense_lookup(shader_rows),
    )
    _TRACE_TABLES_MEMO[id(trace)] = (weakref.ref(trace), tables)
    return tables


#: ``stable_unit("simgpu-noise", frame_index, position)`` per position —
#: a pure function of (frame index, position), so the sha256-per-draw
#: cost is paid once per frame index process-wide (and runs as a
#: :func:`repro.simgpu._kernels.noise_units` kernel when compiled).
_NOISE_MEMO: Dict[int, np.ndarray] = {}


def _noise_units(frame_index: int, n: int) -> np.ndarray:
    cached = _NOISE_MEMO.get(frame_index)
    if cached is None or cached.shape[0] < n:
        cached = _kernels.noise_units(frame_index, n)
        _NOISE_MEMO[frame_index] = cached
    return cached[:n]


#: Primitives per instance = vertex_count // divisor, except the strip
#: sentinel 0 meaning ``max(0, vertex_count - 2)`` — the vectorized
#: form of :meth:`PrimitiveTopology.primitives_for_vertices`.  Keyed by
#: member identity: enum members are singletons and ``Enum.__hash__``
#: is a python-level call, measurable at one lookup per draw.
_PRIM_DIVISOR = {
    id(PrimitiveTopology.POINT_LIST): 1,
    id(PrimitiveTopology.LINE_LIST): 2,
    id(PrimitiveTopology.TRIANGLE_LIST): 3,
    id(PrimitiveTopology.TRIANGLE_STRIP): 0,
}


def _texture_reuse_arrays(
    trace: Trace, draws: Sequence
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(sizes, reuse, offsets, totals) for one frame's texture bindings.

    ``reuse[s]`` is the size-weighted LRU stack distance of slot ``s``:
    the slot's own byte size plus the total size of *distinct* textures
    touched since that texture's previous touch (``np.inf`` on first
    touch).  A texture is resident in the tracker's LRU of capacity C
    exactly when ``reuse <= C`` — see DESIGN.md for the equivalence
    argument — so per-config warmth reduces to one vector comparison.

    The Fenwick-tree pass itself runs as a :mod:`repro.simgpu._kernels`
    kernel over flat per-slot arrays (texture ids, byte sizes, draw
    offsets) — the frame's bindings are flattened here once against the
    per-trace size table, and the selected backend (numba / C / pure
    python) produces bit-identical distances (DESIGN.md, "Flat-array
    kernel form").
    """
    tables = trace_tables(trace)
    num_draws = len(draws)
    ids_list: List[int] = []
    lens_list: List[int] = []
    for draw in draws:
        tids = draw.texture_ids
        ids_list.extend(tids)
        lens_list.append(len(tids))
    offsets = np.zeros(num_draws + 1, dtype=np.int64)
    if num_draws:
        np.cumsum(np.array(lens_list, dtype=np.int64), out=offsets[1:])
    tex_ids = (
        np.array(ids_list, dtype=np.int64)
        if ids_list
        else np.zeros(0, dtype=np.int64)
    )
    lookup = tables.texture_size_lookup
    if lookup is not None and tex_ids.size:
        # One fancy-index against the dense per-trace size table; the
        # two vector checks reproduce the dict path's unknown-id error.
        bad = (tex_ids < 0) | (tex_ids >= lookup.shape[0])
        if bad.any():
            trace.texture(int(tex_ids[bad][0]))  # raises "unknown texture"
        sizes_arr = lookup[tex_ids]
        bad = sizes_arr < 0
        if bad.any():
            trace.texture(int(tex_ids[bad][0]))  # raises "unknown texture"
    else:
        size_table = tables.texture_sizes
        try:
            sizes_arr = (
                np.array(
                    [size_table[t] for t in ids_list], dtype=np.int64
                )
                if ids_list
                else np.zeros(0, dtype=np.int64)
            )
        except KeyError as missing:
            trace.texture(missing.args[0])  # raises "unknown texture"
            raise
    reuse = _kernels.reuse_distances(tex_ids, sizes_arr, offsets)
    totals = _kernels.segment_sums_i64(sizes_arr, offsets)
    return sizes_arr, reuse, offsets, totals


def warm_fractions(fp: FramePrecomp, capacity_bytes: int) -> np.ndarray:
    """Per-draw warm fraction for an LRU capacity, from reuse distances."""
    resident = np.where(
        fp.tex_slot_reuse <= capacity_bytes, fp.tex_slot_sizes, 0
    )
    cumulative = np.concatenate(([0], np.cumsum(resident)))
    warm_bytes = (
        cumulative[fp.tex_slot_offsets[1:]] - cumulative[fp.tex_slot_offsets[:-1]]
    )
    return np.divide(
        warm_bytes,
        fp.tex_totals,
        out=np.zeros(fp.num_draws),
        where=fp.tex_totals > 0,
    )


def switch_cycles(
    fp: FramePrecomp,
    shader_cost: float,
    state_cost: float,
    rt_cost: float,
) -> np.ndarray:
    """Per-draw switch penalty: event flags times per-config costs."""
    return (
        fp.shader_switch * shader_cost
        + fp.state_switch * state_cost
        + fp.rt_switch * rt_cost
    )


def context_for_frame(
    fp: FramePrecomp, config: GpuConfig
) -> Tuple[np.ndarray, np.ndarray]:
    """(warm_fraction, switch_cycles) for one frame's draws on ``config``.

    Pure array arithmetic over the frame's precomputed event streams;
    agrees bit-for-bit with walking a fresh
    :class:`~repro.simgpu.state_tracker.StateTracker` over the frame.
    """
    warm = warm_fractions(fp, config.warm_capacity_bytes)
    switch = switch_cycles(
        fp,
        config.shader_switch_cycles,
        config.state_switch_cycles,
        config.rt_switch_cycles,
    )
    return warm, switch


def precompute_frame(trace: Trace, frame) -> FramePrecomp:
    """Resolve tables and build the per-draw arrays for one frame.

    Column-vectorized like :meth:`FeatureExtractor.draws_matrix`: scalar
    draw attributes are gathered in bulk, shader columns come from the
    per-trace table by fancy indexing, and the texture reuse pass plus
    the noise stream run through :mod:`repro.simgpu._kernels`.  Every
    column is bit-identical to the historical per-draw scalar loop —
    render-target totals are the same sequential python sums (cached
    per distinct binding), and the integer columns convert to float64
    exactly once, like the old ``float(int)`` assignments.
    """
    tables = trace_tables(trace)

    # Flatten the pass structure once (tuple extends, no generator hop
    # per draw) and record the span of each pass as we go.
    draws: List = []
    pass_spans: List[Tuple[str, int, int]] = []
    position = 0
    for render_pass in frame.passes:
        pass_draws = render_pass.draws
        draws.extend(pass_draws)
        span = (render_pass.pass_type.value, position, position + len(pass_draws))
        pass_spans.append(span)
        position += len(pass_draws)
    n = len(draws)

    # Geometry columns from raw fields; primitive assembly vectorized
    # (integer arithmetic, exactly primitives_for_vertices per draw).
    if n:
        raw = np.array(
            [
                (
                    d.vertex_count,
                    d.instance_count,
                    d.pixels_rasterized,
                    d.pixels_shaded,
                    d.vertex_stride_bytes,
                    _PRIM_DIVISOR[id(d.topology)],
                )
                for d in draws
            ],
            dtype=np.int64,
        )
    else:
        raw = np.empty((0, 6), dtype=np.int64)
    divisor = raw[:, 5]
    per_instance = np.where(
        divisor > 0,
        raw[:, 0] // np.maximum(divisor, 1),
        np.maximum(0, raw[:, 0] - 2),
    )
    verts = (raw[:, 0] * raw[:, 1]).astype(np.float64)
    prims = (per_instance * raw[:, 1]).astype(np.float64)

    # One fused per-draw pass for everything state/binding-derived: each
    # draw contributes a *row index* into two small per-frame tables
    # (distinct pipeline states, distinct attachment bindings), and every
    # per-draw column follows by fancy indexing.  Fixed-function flags
    # and the state key are evaluated once per distinct live state;
    # render-target totals are python sums identical to the historical
    # per-draw loop, computed once per distinct binding tuple (engine
    # traces reuse a handful of states and attachments across draws).
    rt_table = tables.rt_bpp
    state_rows: List[Tuple[bool, bool, bool, bool]] = []
    state_canon: List[int] = []  # row of the first state with this key
    state_key_row: Dict[tuple, int] = {}
    state_row_of: Dict[int, int] = {}
    state_index: List[int] = []
    binding_rows: List[Tuple[float, float, float]] = []
    binding_row_of: Dict[tuple, int] = {}
    binding_index: List[int] = []
    shader_list: List[int] = []
    try:
        for d in draws:
            s = d.state
            row = state_row_of.get(id(s))
            if row is None:
                row = len(state_rows)
                state_row_of[id(s)] = row
                state_rows.append(
                    (
                        s.cull.value == "none",
                        s.blend.reads_destination,
                        s.depth.reads_depth,
                        s.depth.writes_depth,
                    )
                )
                state_canon.append(state_key_row.setdefault(s.state_key, row))
            state_index.append(row)
            binding = (d.render_target_ids, d.depth_target_id)
            brow = binding_row_of.get(binding)
            if brow is None:
                brow = len(binding_rows)
                binding_row_of[binding] = brow
                rids, did = binding
                binding_rows.append(
                    (
                        sum(rt_table[r] for r in rids),
                        float(max(1, len(rids))),
                        rt_table[did] if did is not None else 0.0,
                    )
                )
            binding_index.append(brow)
            shader_list.append(d.shader_id)
    except KeyError as missing:
        trace.render_target(missing.args[0])  # raises "unknown RT"
        raise
    state_table = (
        np.array(state_rows, dtype=bool)
        if state_rows
        else np.empty((0, 4), dtype=bool)
    )
    state_idx = np.array(state_index, dtype=np.intp)
    flags = state_table[state_idx]
    binding_table = (
        np.array(binding_rows, dtype=np.float64)
        if binding_rows
        else np.empty((0, 3))
    )
    binding_idx = np.array(binding_index, dtype=np.intp)
    binding_cols = binding_table[binding_idx]
    color_bpp = np.ascontiguousarray(binding_cols[:, 0])
    n_color = np.ascontiguousarray(binding_cols[:, 1])
    depth_bpp = np.ascontiguousarray(binding_cols[:, 2])
    shader_ids = np.array(shader_list, dtype=np.int64)

    # Switch events: does draw i change shader / fixed-function state /
    # render-target binding relative to draw i-1?  (Draw 0 pays all
    # three, exactly like a fresh StateTracker.)  Binding rows are keyed
    # by the exact (render_target_ids, depth_target_id) tuple, so a row
    # change IS a binding change; state rows are first mapped through
    # ``state_canon`` so distinct state objects with equal keys compare
    # equal, exactly like the historical ``state_key`` comparison.
    shader_switch = np.empty(n, dtype=bool)
    state_switch = np.empty(n, dtype=bool)
    rt_switch = np.empty(n, dtype=bool)
    if n:
        shader_switch[0] = True
        shader_switch[1:] = shader_ids[1:] != shader_ids[:-1]
        canon = np.array(state_canon, dtype=np.intp)[state_idx]
        state_switch[0] = True
        state_switch[1:] = canon[1:] != canon[:-1]
        rt_switch[0] = True
        rt_switch[1:] = binding_idx[1:] != binding_idx[:-1]

    lookup = tables.shader_row_lookup
    if lookup is not None and n:
        bad = (shader_ids < 0) | (shader_ids >= lookup.shape[0])
        if bad.any():
            trace.shader(int(shader_ids[bad][0]))  # raises "unknown shader"
        rows = lookup[shader_ids]
        bad = rows < 0
        if bad.any():
            trace.shader(int(shader_ids[bad][0]))  # raises "unknown shader"
    else:
        try:
            rows = np.array(
                [tables.shader_rows[sid] for sid in shader_list],
                dtype=np.intp,
            )
        except KeyError as missing:
            trace.shader(missing.args[0])  # raises "unknown shader"
            raise
    shader_cols = tables.shader_table[rows]

    sizes, reuse, tex_offsets, totals = _texture_reuse_arrays(trace, draws)

    return FramePrecomp(
        frame_index=frame.index,
        verts=verts,
        prims=prims,
        cull_none=np.ascontiguousarray(flags[:, 0]),
        pix_rast=raw[:, 2].astype(np.float64),
        pix_shaded=raw[:, 3].astype(np.float64),
        stride=raw[:, 4].astype(np.float64),
        vs_alu=np.ascontiguousarray(shader_cols[:, 0]),
        vs_tex=np.ascontiguousarray(shader_cols[:, 1]),
        vs_branch=np.ascontiguousarray(shader_cols[:, 2]),
        vs_regs=np.ascontiguousarray(shader_cols[:, 3]),
        ps_alu=np.ascontiguousarray(shader_cols[:, 4]),
        ps_tex=np.ascontiguousarray(shader_cols[:, 5]),
        ps_branch=np.ascontiguousarray(shader_cols[:, 6]),
        ps_regs=np.ascontiguousarray(shader_cols[:, 7]),
        # The per-draw texture footprint is exactly the per-draw total
        # of bound-texture byte sizes, which the reuse pass already
        # reduced; int64 -> float64 matches the historical per-draw
        # ``float(int)`` assignment bit for bit.
        footprint=totals.astype(np.float64),
        color_bpp=color_bpp,
        n_color=n_color,
        blend_dest=np.ascontiguousarray(flags[:, 1]),
        depth_reads=np.ascontiguousarray(flags[:, 2]),
        depth_writes=np.ascontiguousarray(flags[:, 3]),
        depth_bpp=depth_bpp,
        noise_units=_noise_units(frame.index, n),
        pass_spans=pass_spans,
        draws=draws,
        shader_switch=shader_switch,
        state_switch=state_switch,
        rt_switch=rt_switch,
        tex_slot_sizes=sizes,
        tex_slot_reuse=reuse,
        tex_slot_offsets=tex_offsets,
        tex_totals=totals,
    )


def precompute_trace(trace: Trace) -> TracePrecomp:
    """Resolve tables and build the per-draw arrays for every frame."""
    frames = [precompute_frame(trace, frame) for frame in trace.frames]
    return TracePrecomp(trace=trace, frames=frames)


# ---------------------------------------------------------------------------
# Worker-side precompute memo
# ---------------------------------------------------------------------------

#: Per-process FramePrecomp cache: trace content digest -> frame index ->
#: precomputed arrays.  Keyed by digest (not object identity) so a trace
#: deserialized anew in each task of a sweep still shares the work, and
#: bounded (``$REPRO_PRECOMP_MEMO_TRACES``, default 2) so long-lived
#: workers touring many traces don't accumulate.
_FRAME_PRECOMP_MEMO: "OrderedDict[str, Dict[int, FramePrecomp]]" = OrderedDict()


def _memo_frames(digest: str) -> Dict[int, FramePrecomp]:
    """The memo's per-trace frame dict, evicting LRU traces over limit."""
    frames = _FRAME_PRECOMP_MEMO.get(digest)
    if frames is None:
        limit = precomp_store.memo_trace_limit()
        while len(_FRAME_PRECOMP_MEMO) >= limit:
            _FRAME_PRECOMP_MEMO.popitem(last=False)
        frames = {}
        _FRAME_PRECOMP_MEMO[digest] = frames
    else:
        _FRAME_PRECOMP_MEMO.move_to_end(digest)
    return frames


def frame_precomp_cached(trace: Trace, frame) -> FramePrecomp:
    """Per-frame precompute: memo -> shared store -> compute-and-publish.

    Three levels, cheapest first.  The in-process memo is keyed by
    :func:`repro.runtime.keys.trace_digest` — the same identity the
    artifact cache uses — so identical traces share entries regardless
    of which task (or object) asks.  On a memo miss, the machine-wide
    precompute store (:mod:`repro.simgpu.precomp_store`) is mapped
    read-only (``precomp_store_hits``); only if that also misses is the
    frame computed, and the result is published for every other worker
    on the machine (``precomp_store_misses`` / ``_publishes``).
    """
    from repro.runtime.keys import trace_digest

    digest = trace_digest(trace)
    frames = _memo_frames(digest)
    fp = frames.get(frame.index)
    if fp is not None:
        return fp
    metrics = current_obs().metrics
    store = precomp_store.active_store()
    if store is not None:
        fp = store.load(digest, frame.index)
        if fp is not None:
            metrics.inc("precomp_store_hits")
            frames[frame.index] = fp
            return fp
        metrics.inc("precomp_store_misses")
    fp = precompute_frame(trace, frame)
    if store is not None:
        try:
            if store.publish(digest, fp):
                metrics.inc("precomp_store_publishes")
        except OSError:
            # A read-only or full store directory must never fail the
            # simulation — the computed frame is still returned.
            pass
    frames[frame.index] = fp
    return fp


def prepublish_precomp(trace: Trace) -> int:
    """Publish every frame of ``trace`` to the shared store; returns count.

    Called by the runtime before fanning a sweep out to worker
    processes, so each frame is precomputed exactly once machine-wide
    and workers mmap it instead of recomputing.  No-op (0) when the
    store is disabled.
    """
    store = precomp_store.active_store()
    if store is None:
        return 0
    from repro.runtime.keys import trace_digest

    digest = trace_digest(trace)
    published = 0
    metrics = current_obs().metrics
    frames = _memo_frames(digest)
    for frame in trace.frames:
        if store.has(digest, frame.index):
            continue
        fp = frames.get(frame.index)
        if fp is None:
            fp = precompute_frame(trace, frame)
            frames[frame.index] = fp
        try:
            if store.publish(digest, fp):
                published += 1
                metrics.inc("precomp_store_publishes")
        except OSError:
            break
    return published


def clear_precomp_cache() -> None:
    """Drop the per-process precompute memo and any store mmap handles.

    Long-lived service executors call this under memory pressure; the
    store handles are released too so deleted/replaced ``.fpc`` files
    aren't pinned by a forgotten mapping (live views keep their own
    reference and stay valid).
    """
    _FRAME_PRECOMP_MEMO.clear()
    _TRACE_TABLES_MEMO.clear()
    _NOISE_MEMO.clear()
    precomp_store.reset_active_store()


# ---------------------------------------------------------------------------
# Single-config evaluation (the historical batch path)
# ---------------------------------------------------------------------------


def _throughput(regs: np.ndarray, config: GpuConfig) -> np.ndarray:
    occ = np.minimum(1.0, config.max_full_occupancy_registers / regs)
    return shadercore.MIN_THROUGHPUT_FACTOR + (
        1.0 - shadercore.MIN_THROUGHPUT_FACTOR
    ) * occ


@dataclass(frozen=True)
class BatchFrameOutput:
    """Vectorized per-frame result with per-draw detail arrays.

    ``stage_cycles`` (summed shader/texture/rop/... cycles per pipeline
    stage) is only populated when the frame was simulated under an
    enabled tracer — the extra reductions are skipped on the hot path.
    """

    frame_index: int
    time_ns: float
    core_cycles: float
    dram_cycles: float
    draw_times_ns: np.ndarray
    draw_core_cycles: np.ndarray
    pass_times_ns: Dict[str, float]
    stage_cycles: Optional[Dict[str, float]] = field(default=None, compare=False)


def simulate_frame_arrays(
    fp: FramePrecomp,
    warm: np.ndarray,
    switch: np.ndarray,
    config: GpuConfig,
    collect_stages: bool = False,
) -> BatchFrameOutput:
    """Evaluate the cost model over one frame's arrays."""
    vs_ops = (
        fp.vs_alu
        + shadercore.TEX_OP_ALU_COST * fp.vs_tex
        + shadercore.BRANCH_OP_ALU_COST * fp.vs_branch
    )
    ps_ops = (
        fp.ps_alu
        + shadercore.TEX_OP_ALU_COST * fp.ps_tex
        + shadercore.BRANCH_OP_ALU_COST * fp.ps_branch
    )
    lanes = config.alu_lanes
    vertex_cycles = fp.verts * vs_ops / (lanes * _throughput(fp.vs_regs, config))
    pixel_cycles = fp.pix_shaded * ps_ops / (lanes * _throughput(fp.ps_regs, config))

    vertex_bytes = fp.verts * fp.stride
    fetch_cycles = vertex_bytes / config.vertex_fetch_bytes_per_cycle

    setup_prims = np.where(fp.cull_none, fp.prims, fp.prims * raster.CULL_SURVIVAL)
    raster_cycles = (
        setup_prims / config.raster_prims_per_cycle
        + fp.pix_rast / config.raster_pixels_per_cycle
    )

    samples = fp.pix_shaded * fp.ps_tex + fp.verts * fp.vs_tex
    tex_cycles = samples / (config.tex_units_total * config.tex_rate_per_unit)
    pressure = fp.footprint / (config.tex_cache_kb * 1024)
    cold = np.minimum(
        texture.MAX_MISS, texture.BASE_MISS + texture.CAPACITY_MISS_SCALE * pressure
    )
    miss = np.where(
        fp.footprint == 0,
        0.0,
        cold * (warm * texture.WARM_MISS_MULTIPLIER + (1.0 - warm)),
    )
    tex_bytes = np.minimum(
        samples * miss * config.cacheline_bytes,
        texture.FOOTPRINT_OVERFETCH_CAP * fp.footprint,
    )

    writes = fp.pix_shaded * fp.n_color
    rop_rate = config.rop_pixels_total_per_cycle * np.where(
        fp.blend_dest, rop.BLEND_THROUGHPUT_FACTOR, 1.0
    )
    depth_tests = np.where(fp.depth_reads, fp.pix_rast, 0.0)
    rop_cycles = (writes + 0.25 * depth_tests) / rop_rate

    color_write = fp.pix_shaded * fp.color_bpp
    rt_bytes = color_write + np.where(fp.blend_dest, color_write, 0.0)
    depth_pp = fp.depth_bpp * config.depth_compression
    rt_bytes = rt_bytes + np.where(fp.depth_reads, fp.pix_rast * depth_pp, 0.0)
    rt_bytes = rt_bytes + np.where(fp.depth_writes, fp.pix_shaded * depth_pp, 0.0)

    stages = np.stack(
        [vertex_cycles, fetch_cycles, raster_cycles, pixel_cycles, tex_cycles, rop_cycles]
    )
    slowest = stages.max(axis=0)
    residual = config.serial_fraction * (stages.sum(axis=0) - slowest)
    core = slowest + residual + switch + config.draw_overhead_cycles
    core = core * (1.0 + config.noise_amplitude * (2.0 * fp.noise_units - 1.0))

    dram_bytes = (
        vertex_bytes * (1.0 - config.l2_hit_vertex)
        + tex_bytes * (1.0 - config.l2_hit_tex)
        + rt_bytes * (1.0 - config.l2_hit_rt)
    )
    dram = dram_bytes / config.dram_bytes_per_mem_cycle

    core_ns = 1e3 * core / config.core_clock_mhz
    mem_ns = 1e3 * dram / config.memory_clock_mhz
    times = np.maximum(core_ns, mem_ns) + config.mem_overlap_residual * np.minimum(
        core_ns, mem_ns
    )

    pass_times = {}
    for pass_name, start, end in fp.pass_spans:
        total = float(times[start:end].sum())
        pass_times[pass_name] = pass_times.get(pass_name, 0.0) + total

    stage_cycles: Optional[Dict[str, float]] = None
    if collect_stages:
        # Where the simulated cycles went, summed over the frame's draws
        # — "shader" is the unified-ALU time (vertex + pixel work).
        stage_cycles = {
            "shader": float(vertex_cycles.sum() + pixel_cycles.sum()),
            "fetch": float(fetch_cycles.sum()),
            "raster": float(raster_cycles.sum()),
            "texture": float(tex_cycles.sum()),
            "rop": float(rop_cycles.sum()),
            "memory": float(dram.sum()),
        }

    return BatchFrameOutput(
        frame_index=fp.frame_index,
        time_ns=float(times.sum()),
        core_cycles=float(core.sum()),
        dram_cycles=float(dram.sum()),
        draw_times_ns=times,
        draw_core_cycles=core,
        pass_times_ns=pass_times,
        stage_cycles=stage_cycles,
    )


# ---------------------------------------------------------------------------
# Config-vectorized evaluation (all candidates in one pass)
# ---------------------------------------------------------------------------


class ConfigTable:
    """Struct-of-arrays view of N candidate configs for broadcasting.

    Every model parameter becomes a ``(N, 1)`` float column so the cost
    model can evaluate ``(num_configs, num_draws)`` in one numpy pass.
    Context inputs (warm capacities, switch costs) stay exact Python
    scalars because warmth needs integer-exact capacity comparisons and
    both are shared across configs that agree on them.
    """

    def __init__(self, configs: Sequence[GpuConfig]) -> None:
        if not configs:
            raise SimulationError("ConfigTable needs at least one config")
        for config in configs:
            if not isinstance(config, GpuConfig):
                raise SimulationError(
                    f"config must be GpuConfig, got {type(config).__name__}"
                )
        self.configs: Tuple[GpuConfig, ...] = tuple(configs)

        def col(get) -> np.ndarray:
            return np.array(
                [float(get(c)) for c in self.configs]
            ).reshape(-1, 1)

        self.alu_lanes = col(lambda c: c.alu_lanes)
        self.max_occ_regs = col(lambda c: c.max_full_occupancy_registers)
        self.vertex_fetch_bpc = col(lambda c: c.vertex_fetch_bytes_per_cycle)
        self.raster_prims_pc = col(lambda c: c.raster_prims_per_cycle)
        self.raster_pixels_pc = col(lambda c: c.raster_pixels_per_cycle)
        self.tex_rate = col(lambda c: c.tex_units_total * c.tex_rate_per_unit)
        self.tex_capacity = col(lambda c: c.tex_cache_kb * 1024)
        self.cacheline = col(lambda c: c.cacheline_bytes)
        self.rop_rate = col(lambda c: c.rop_pixels_total_per_cycle)
        self.depth_compression = col(lambda c: c.depth_compression)
        self.serial_fraction = col(lambda c: c.serial_fraction)
        self.draw_overhead = col(lambda c: c.draw_overhead_cycles)
        self.noise_amplitude = col(lambda c: c.noise_amplitude)
        self.l2_miss_vertex = col(lambda c: 1.0 - c.l2_hit_vertex)
        self.l2_miss_tex = col(lambda c: 1.0 - c.l2_hit_tex)
        self.l2_miss_rt = col(lambda c: 1.0 - c.l2_hit_rt)
        self.dram_bpc = col(lambda c: c.dram_bytes_per_mem_cycle)
        self.core_clock = col(lambda c: c.core_clock_mhz)
        self.memory_clock = col(lambda c: c.memory_clock_mhz)
        self.mem_overlap = col(lambda c: c.mem_overlap_residual)
        self.warm_capacities: Tuple[int, ...] = tuple(
            c.warm_capacity_bytes for c in self.configs
        )
        self.switch_costs: Tuple[Tuple[float, float, float], ...] = tuple(
            (c.shader_switch_cycles, c.state_switch_cycles, c.rt_switch_cycles)
            for c in self.configs
        )

    def __len__(self) -> int:
        return len(self.configs)


def _context_matrix(
    fp: FramePrecomp, table: ConfigTable
) -> Tuple[np.ndarray, np.ndarray]:
    """(warm, switch) as ``(num_configs, num_draws)``, shared per value.

    Rows are computed once per *distinct* warm capacity / switch-cost
    triple, so a DVFS sweep (identical caches and penalties at every
    clock) pays for exactly one row each.
    """
    num_configs = len(table)
    n = fp.num_draws
    warm = np.empty((num_configs, n))
    switch = np.empty((num_configs, n))
    warm_rows: Dict[int, np.ndarray] = {}
    switch_rows: Dict[Tuple[float, float, float], np.ndarray] = {}
    for ci in range(num_configs):
        capacity = table.warm_capacities[ci]
        row = warm_rows.get(capacity)
        if row is None:
            row = warm_fractions(fp, capacity)
            warm_rows[capacity] = row
        warm[ci] = row
        costs = table.switch_costs[ci]
        srow = switch_rows.get(costs)
        if srow is None:
            srow = switch_cycles(fp, *costs)
            switch_rows[costs] = srow
        switch[ci] = srow
    return warm, switch


def _throughput_multi(regs: np.ndarray, max_occ_regs: np.ndarray) -> np.ndarray:
    occ = np.minimum(1.0, max_occ_regs / regs)
    return shadercore.MIN_THROUGHPUT_FACTOR + (
        1.0 - shadercore.MIN_THROUGHPUT_FACTOR
    ) * occ


def simulate_frame_multi(
    fp: FramePrecomp,
    table: ConfigTable,
    collect_stages: bool = False,
) -> List[BatchFrameOutput]:
    """Evaluate one frame on every config as a ``(C, N)`` numpy pass.

    Returns one :class:`BatchFrameOutput` per config, in table order —
    row ``i`` of every intermediate is numerically identical to running
    :func:`simulate_frame_arrays` with ``table.configs[i]``.
    """
    warm, switch = _context_matrix(fp, table)

    vs_ops = (
        fp.vs_alu
        + shadercore.TEX_OP_ALU_COST * fp.vs_tex
        + shadercore.BRANCH_OP_ALU_COST * fp.vs_branch
    )
    ps_ops = (
        fp.ps_alu
        + shadercore.TEX_OP_ALU_COST * fp.ps_tex
        + shadercore.BRANCH_OP_ALU_COST * fp.ps_branch
    )
    vertex_cycles = (
        fp.verts * vs_ops
        / (table.alu_lanes * _throughput_multi(fp.vs_regs, table.max_occ_regs))
    )
    pixel_cycles = (
        fp.pix_shaded * ps_ops
        / (table.alu_lanes * _throughput_multi(fp.ps_regs, table.max_occ_regs))
    )

    vertex_bytes = fp.verts * fp.stride
    fetch_cycles = vertex_bytes / table.vertex_fetch_bpc

    setup_prims = np.where(fp.cull_none, fp.prims, fp.prims * raster.CULL_SURVIVAL)
    raster_cycles = (
        setup_prims / table.raster_prims_pc + fp.pix_rast / table.raster_pixels_pc
    )

    samples = fp.pix_shaded * fp.ps_tex + fp.verts * fp.vs_tex
    tex_cycles = samples / table.tex_rate
    pressure = fp.footprint / table.tex_capacity
    cold = np.minimum(
        texture.MAX_MISS, texture.BASE_MISS + texture.CAPACITY_MISS_SCALE * pressure
    )
    miss = np.where(
        fp.footprint == 0,
        0.0,
        cold * (warm * texture.WARM_MISS_MULTIPLIER + (1.0 - warm)),
    )
    tex_bytes = np.minimum(
        samples * miss * table.cacheline,
        texture.FOOTPRINT_OVERFETCH_CAP * fp.footprint,
    )

    writes = fp.pix_shaded * fp.n_color
    rop_rate = table.rop_rate * np.where(
        fp.blend_dest, rop.BLEND_THROUGHPUT_FACTOR, 1.0
    )
    depth_tests = np.where(fp.depth_reads, fp.pix_rast, 0.0)
    rop_cycles = (writes + 0.25 * depth_tests) / rop_rate

    color_write = fp.pix_shaded * fp.color_bpp
    rt_base = color_write + np.where(fp.blend_dest, color_write, 0.0)
    depth_pp = fp.depth_bpp * table.depth_compression
    rt_bytes = rt_base + np.where(fp.depth_reads, fp.pix_rast * depth_pp, 0.0)
    rt_bytes = rt_bytes + np.where(fp.depth_writes, fp.pix_shaded * depth_pp, 0.0)

    stages = np.stack(
        [vertex_cycles, fetch_cycles, raster_cycles, pixel_cycles, tex_cycles, rop_cycles]
    )
    slowest = stages.max(axis=0)
    residual = table.serial_fraction * (stages.sum(axis=0) - slowest)
    core = slowest + residual + switch + table.draw_overhead
    core = core * (1.0 + table.noise_amplitude * (2.0 * fp.noise_units - 1.0))

    dram_bytes = (
        vertex_bytes * table.l2_miss_vertex
        + tex_bytes * table.l2_miss_tex
        + rt_bytes * table.l2_miss_rt
    )
    dram = dram_bytes / table.dram_bpc

    core_ns = 1e3 * core / table.core_clock
    mem_ns = 1e3 * dram / table.memory_clock
    times = np.maximum(core_ns, mem_ns) + table.mem_overlap * np.minimum(
        core_ns, mem_ns
    )

    time_totals = times.sum(axis=1)
    core_totals = core.sum(axis=1)
    dram_totals = dram.sum(axis=1)

    outputs: List[BatchFrameOutput] = []
    for ci in range(len(table)):
        pass_times: Dict[str, float] = {}
        for pass_name, start, end in fp.pass_spans:
            total = float(times[ci, start:end].sum())
            pass_times[pass_name] = pass_times.get(pass_name, 0.0) + total
        stage_cycles: Optional[Dict[str, float]] = None
        if collect_stages:
            stage_cycles = {
                "shader": float(
                    vertex_cycles[ci].sum() + pixel_cycles[ci].sum()
                ),
                "fetch": float(fetch_cycles[ci].sum()),
                "raster": float(raster_cycles[ci].sum()),
                "texture": float(tex_cycles[ci].sum()),
                "rop": float(rop_cycles[ci].sum()),
                "memory": float(dram[ci].sum()),
            }
        outputs.append(
            BatchFrameOutput(
                frame_index=fp.frame_index,
                time_ns=float(time_totals[ci]),
                core_cycles=float(core_totals[ci]),
                dram_cycles=float(dram_totals[ci]),
                draw_times_ns=times[ci],
                draw_core_cycles=core[ci],
                pass_times_ns=pass_times,
                stage_cycles=stage_cycles,
            )
        )
    return outputs


# ---------------------------------------------------------------------------
# Trace-level drivers
# ---------------------------------------------------------------------------


def simulate_frames_batch(
    trace: Trace, config: GpuConfig, precomp: Optional[TracePrecomp] = None
) -> List[BatchFrameOutput]:
    """Vectorized simulation of every frame; returns per-draw detail."""
    if precomp is None:
        precomp = precompute_trace(trace)
    contexts = precomp.context_arrays(config)
    return [
        simulate_frame_arrays(fp, warm, switch, config)
        for fp, (warm, switch) in zip(precomp.frames, contexts)
    ]


def simulate_frame_range_multi(
    trace: Trace,
    configs: Sequence[GpuConfig],
    start: int,
    stop: int,
) -> List[List[BatchFrameOutput]]:
    """Simulate frames ``[start, stop)`` on every config, config-vectorized.

    One ``(num_configs, num_draws)`` numpy pass per frame; per-frame
    precompute comes from the per-process digest-keyed memo, so repeated
    sweep/validate tasks on the same trace skip it entirely.  Frames are
    mutually independent, which makes this the unit of work the parallel
    runtime distributes — any partition of ``[0, num_frames)``
    concatenates to exactly the full-trace result.
    """
    if not 0 <= start <= stop <= trace.num_frames:
        raise SimulationError(
            f"frame range [{start}, {stop}) invalid for "
            f"{trace.num_frames}-frame trace"
        )
    configs = tuple(configs)
    if not configs:
        return []
    obs = current_obs()
    tracer = obs.tracer
    table = ConfigTable(configs)
    per_config: List[List[BatchFrameOutput]] = [[] for _ in configs]
    for frame in trace.frames[start:stop]:
        fp = frame_precomp_cached(trace, frame)
        if tracer.enabled:
            # A span per simulated frame, carrying where the cycles went
            # (summed over the candidate configs): the trace answers
            # "which stage dominated".
            with tracer.span(
                "simulate_frame",
                category="simgpu",
                frame=fp.frame_index,
                draws=fp.num_draws,
                configs=len(configs),
            ) as span:
                outputs = simulate_frame_multi(fp, table, collect_stages=True)
                totals: Dict[str, float] = {}
                for out in outputs:
                    for stage, cycles in (out.stage_cycles or {}).items():
                        totals[stage] = totals.get(stage, 0.0) + cycles
                span.set(
                    time_ns=sum(out.time_ns for out in outputs),
                    **{
                        f"{stage}_cycles": cycles
                        for stage, cycles in totals.items()
                    },
                )
        else:
            outputs = simulate_frame_multi(fp, table)
        for slot, out in enumerate(outputs):
            obs.metrics.observe("frame_core_cycles", out.core_cycles)
            per_config[slot].append(out)
    return per_config


def simulate_frame_range(
    trace: Trace, config: GpuConfig, start: int, stop: int
) -> List[BatchFrameOutput]:
    """Simulate frames ``[start, stop)`` of ``trace`` on one config."""
    return simulate_frame_range_multi(trace, (config,), start, stop)[0]


def trace_result_from_outputs(
    trace_name: str, config_name: str, outputs: Sequence[BatchFrameOutput]
) -> TraceResult:
    """Package per-frame batch outputs as a :class:`TraceResult`."""
    frame_results = tuple(
        FrameResult(
            frame_index=out.frame_index,
            num_draws=len(out.draw_times_ns),
            time_ns=out.time_ns,
            core_cycles=out.core_cycles,
            dram_cycles=out.dram_cycles,
            pass_times_ns=out.pass_times_ns,
            draw_costs=None,
        )
        for out in outputs
    )
    return TraceResult(
        trace_name=trace_name,
        config_name=config_name,
        frame_results=frame_results,
    )


def simulate_trace_batch(
    trace: Trace, config: GpuConfig, precomp: Optional[TracePrecomp] = None
) -> TraceResult:
    """Vectorized equivalent of :meth:`GpuSimulator.simulate_trace`."""
    outputs = simulate_frames_batch(trace, config, precomp)
    return trace_result_from_outputs(trace.name, config.name, outputs)


def simulate_trace_multi(
    trace: Trace,
    configs: Sequence[GpuConfig],
    precomp: Optional[TracePrecomp] = None,
) -> List[TraceResult]:
    """Config-vectorized: the whole trace on every candidate, one pass.

    The fast path for architecture sweeps: per-frame precompute happens
    once, and every frame is evaluated on all configs as a single
    ``(num_configs, num_draws)`` broadcast.
    """
    configs = tuple(configs)
    if not configs:
        return []
    table = ConfigTable(configs)
    if precomp is None:
        precomp = precompute_trace(trace)
    per_config: List[List[BatchFrameOutput]] = [[] for _ in configs]
    for fp in precomp.frames:
        for slot, out in enumerate(simulate_frame_multi(fp, table)):
            per_config[slot].append(out)
    return [
        trace_result_from_outputs(trace.name, config.name, outputs)
        for config, outputs in zip(configs, per_config)
    ]
