"""Vectorized simulation path for paper-scale corpora.

Reimplements exactly the model in :mod:`repro.simgpu.cost` over numpy
arrays, one frame at a time.  Only the order-dependent context (texture
warmth, switch penalties) runs as a light per-draw loop via the same
:class:`~repro.simgpu.state_tracker.StateTracker` the sequential
simulator uses, so the two paths agree bit-for-bit up to float rounding.

The config-independent per-draw arrays are precomputed once per trace
(:func:`precompute_trace`) and reused across architecture points, which
is what makes DVFS sweeps over 828K-draw corpora tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.gfx.trace import Trace
from repro.obs.context import current_obs
from repro.simgpu import raster, rop, shadercore, texture
from repro.simgpu.config import GpuConfig
from repro.simgpu.simulator import FrameResult, TraceResult
from repro.simgpu.state_tracker import StateTracker
from repro.util.rng import stable_unit


@dataclass
class FramePrecomp:
    """Config-independent per-draw arrays for one frame."""

    frame_index: int
    verts: np.ndarray
    prims: np.ndarray
    cull_none: np.ndarray
    pix_rast: np.ndarray
    pix_shaded: np.ndarray
    stride: np.ndarray
    vs_alu: np.ndarray
    vs_tex: np.ndarray
    vs_branch: np.ndarray
    vs_regs: np.ndarray
    ps_alu: np.ndarray
    ps_tex: np.ndarray
    ps_branch: np.ndarray
    ps_regs: np.ndarray
    footprint: np.ndarray
    color_bpp: np.ndarray
    n_color: np.ndarray
    blend_dest: np.ndarray
    depth_reads: np.ndarray
    depth_writes: np.ndarray
    depth_bpp: np.ndarray  # 0 when no depth target bound
    noise_units: np.ndarray
    pass_spans: List[Tuple[str, int, int]]
    draws: list  # DrawCall refs, for the tracker loop
    textures_by_draw: list  # resolved TextureDesc lists, for the tracker loop


@dataclass
class TracePrecomp:
    """Precomputed arrays for a whole trace, plus a context cache."""

    trace: Trace
    frames: List[FramePrecomp]
    _context_cache: Dict[tuple, List[Tuple[np.ndarray, np.ndarray]]] = field(
        default_factory=dict
    )

    def context_arrays(
        self, config: GpuConfig
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """(warm_fraction, switch_cycles) arrays per frame for ``config``.

        Cached by the config fields that influence them, so a DVFS sweep
        (same capacities/penalties, different clocks) computes them once.
        """
        key = context_signature(config)
        cached = self._context_cache.get(key)
        if cached is not None:
            return cached
        per_frame = [context_for_frame(fp, config) for fp in self.frames]
        self._context_cache[key] = per_frame
        return per_frame


def context_signature(config: GpuConfig) -> tuple:
    """The config fields that influence the order-dependent context."""
    return (
        config.tex_cache_kb,
        config.l2_cache_kb,
        config.shader_switch_cycles,
        config.state_switch_cycles,
        config.rt_switch_cycles,
    )


def context_for_frame(
    fp: FramePrecomp, config: GpuConfig
) -> Tuple[np.ndarray, np.ndarray]:
    """(warm_fraction, switch_cycles) for one frame's draws on ``config``.

    Each frame starts from a fresh :class:`StateTracker`, so frames are
    independent — the property the parallel runtime relies on.
    """
    tracker = StateTracker(config)
    tracker.begin_frame()
    warm = np.empty(len(fp.draws))
    switch = np.empty(len(fp.draws))
    for i, (draw, textures) in enumerate(zip(fp.draws, fp.textures_by_draw)):
        effects = tracker.observe(draw, textures)
        warm[i] = effects.warm_fraction
        switch[i] = effects.switch_cycles
    return warm, switch


def precompute_frame(trace: Trace, frame) -> FramePrecomp:
    """Resolve tables and build the per-draw arrays for one frame."""
    draws = frame.draw_list
    n = len(draws)
    fp = FramePrecomp(
        frame_index=frame.index,
        verts=np.empty(n),
        prims=np.empty(n),
        cull_none=np.empty(n, dtype=bool),
        pix_rast=np.empty(n),
        pix_shaded=np.empty(n),
        stride=np.empty(n),
        vs_alu=np.empty(n),
        vs_tex=np.empty(n),
        vs_branch=np.empty(n),
        vs_regs=np.empty(n),
        ps_alu=np.empty(n),
        ps_tex=np.empty(n),
        ps_branch=np.empty(n),
        ps_regs=np.empty(n),
        footprint=np.empty(n),
        color_bpp=np.empty(n),
        n_color=np.empty(n),
        blend_dest=np.empty(n, dtype=bool),
        depth_reads=np.empty(n, dtype=bool),
        depth_writes=np.empty(n, dtype=bool),
        depth_bpp=np.empty(n),
        noise_units=np.empty(n),
        pass_spans=[],
        draws=draws,
        textures_by_draw=[],
    )
    position = 0
    for render_pass in frame.passes:
        start = position
        for draw in render_pass.draws:
            shader = trace.shader(draw.shader_id)
            textures = [trace.texture(tid) for tid in draw.texture_ids]
            fp.textures_by_draw.append(textures)
            color_targets = [
                trace.render_target(rid) for rid in draw.render_target_ids
            ]
            i = position
            fp.verts[i] = draw.total_vertices
            fp.prims[i] = draw.primitive_count
            fp.cull_none[i] = draw.state.cull.value == "none"
            fp.pix_rast[i] = draw.pixels_rasterized
            fp.pix_shaded[i] = draw.pixels_shaded
            fp.stride[i] = draw.vertex_stride_bytes
            fp.vs_alu[i] = shader.vertex.alu_ops
            fp.vs_tex[i] = shader.vertex.tex_ops
            fp.vs_branch[i] = shader.vertex.branch_ops
            fp.vs_regs[i] = shader.vertex.registers
            fp.ps_alu[i] = shader.pixel.alu_ops
            fp.ps_tex[i] = shader.pixel.tex_ops
            fp.ps_branch[i] = shader.pixel.branch_ops
            fp.ps_regs[i] = shader.pixel.registers
            fp.footprint[i] = texture.texture_footprint_bytes(textures)
            fp.color_bpp[i] = sum(rt.bytes_per_pixel for rt in color_targets)
            fp.n_color[i] = max(1, len(color_targets))
            fp.blend_dest[i] = draw.state.blend.reads_destination
            fp.depth_reads[i] = draw.state.depth.reads_depth
            fp.depth_writes[i] = draw.state.depth.writes_depth
            if draw.depth_target_id is not None:
                depth_rt = trace.render_target(draw.depth_target_id)
                fp.depth_bpp[i] = depth_rt.bytes_per_pixel
            else:
                fp.depth_bpp[i] = 0.0
            fp.noise_units[i] = stable_unit(
                "simgpu-noise", frame.index, position
            )
            position += 1
        fp.pass_spans.append((render_pass.pass_type.value, start, position))
    return fp


def precompute_trace(trace: Trace) -> TracePrecomp:
    """Resolve tables and build the per-draw arrays for every frame."""
    frames = [precompute_frame(trace, frame) for frame in trace.frames]
    return TracePrecomp(trace=trace, frames=frames)


def _throughput(regs: np.ndarray, config: GpuConfig) -> np.ndarray:
    occ = np.minimum(1.0, config.max_full_occupancy_registers / regs)
    return shadercore.MIN_THROUGHPUT_FACTOR + (
        1.0 - shadercore.MIN_THROUGHPUT_FACTOR
    ) * occ


@dataclass(frozen=True)
class BatchFrameOutput:
    """Vectorized per-frame result with per-draw detail arrays.

    ``stage_cycles`` (summed shader/texture/rop/... cycles per pipeline
    stage) is only populated when the frame was simulated under an
    enabled tracer — the extra reductions are skipped on the hot path.
    """

    frame_index: int
    time_ns: float
    core_cycles: float
    dram_cycles: float
    draw_times_ns: np.ndarray
    draw_core_cycles: np.ndarray
    pass_times_ns: Dict[str, float]
    stage_cycles: Optional[Dict[str, float]] = field(default=None, compare=False)


def simulate_frame_arrays(
    fp: FramePrecomp,
    warm: np.ndarray,
    switch: np.ndarray,
    config: GpuConfig,
    collect_stages: bool = False,
) -> BatchFrameOutput:
    """Evaluate the cost model over one frame's arrays."""
    vs_ops = (
        fp.vs_alu
        + shadercore.TEX_OP_ALU_COST * fp.vs_tex
        + shadercore.BRANCH_OP_ALU_COST * fp.vs_branch
    )
    ps_ops = (
        fp.ps_alu
        + shadercore.TEX_OP_ALU_COST * fp.ps_tex
        + shadercore.BRANCH_OP_ALU_COST * fp.ps_branch
    )
    lanes = config.alu_lanes
    vertex_cycles = fp.verts * vs_ops / (lanes * _throughput(fp.vs_regs, config))
    pixel_cycles = fp.pix_shaded * ps_ops / (lanes * _throughput(fp.ps_regs, config))

    vertex_bytes = fp.verts * fp.stride
    fetch_cycles = vertex_bytes / config.vertex_fetch_bytes_per_cycle

    setup_prims = np.where(fp.cull_none, fp.prims, fp.prims * raster.CULL_SURVIVAL)
    raster_cycles = (
        setup_prims / config.raster_prims_per_cycle
        + fp.pix_rast / config.raster_pixels_per_cycle
    )

    samples = fp.pix_shaded * fp.ps_tex + fp.verts * fp.vs_tex
    tex_cycles = samples / (config.tex_units_total * config.tex_rate_per_unit)
    pressure = fp.footprint / (config.tex_cache_kb * 1024)
    cold = np.minimum(
        texture.MAX_MISS, texture.BASE_MISS + texture.CAPACITY_MISS_SCALE * pressure
    )
    miss = np.where(
        fp.footprint == 0,
        0.0,
        cold * (warm * texture.WARM_MISS_MULTIPLIER + (1.0 - warm)),
    )
    tex_bytes = np.minimum(
        samples * miss * config.cacheline_bytes,
        texture.FOOTPRINT_OVERFETCH_CAP * fp.footprint,
    )

    writes = fp.pix_shaded * fp.n_color
    rop_rate = config.rop_pixels_total_per_cycle * np.where(
        fp.blend_dest, rop.BLEND_THROUGHPUT_FACTOR, 1.0
    )
    depth_tests = np.where(fp.depth_reads, fp.pix_rast, 0.0)
    rop_cycles = (writes + 0.25 * depth_tests) / rop_rate

    color_write = fp.pix_shaded * fp.color_bpp
    rt_bytes = color_write + np.where(fp.blend_dest, color_write, 0.0)
    depth_pp = fp.depth_bpp * config.depth_compression
    rt_bytes = rt_bytes + np.where(fp.depth_reads, fp.pix_rast * depth_pp, 0.0)
    rt_bytes = rt_bytes + np.where(fp.depth_writes, fp.pix_shaded * depth_pp, 0.0)

    stages = np.stack(
        [vertex_cycles, fetch_cycles, raster_cycles, pixel_cycles, tex_cycles, rop_cycles]
    )
    slowest = stages.max(axis=0)
    residual = config.serial_fraction * (stages.sum(axis=0) - slowest)
    core = slowest + residual + switch + config.draw_overhead_cycles
    core = core * (1.0 + config.noise_amplitude * (2.0 * fp.noise_units - 1.0))

    dram_bytes = (
        vertex_bytes * (1.0 - config.l2_hit_vertex)
        + tex_bytes * (1.0 - config.l2_hit_tex)
        + rt_bytes * (1.0 - config.l2_hit_rt)
    )
    dram = dram_bytes / config.dram_bytes_per_mem_cycle

    core_ns = 1e3 * core / config.core_clock_mhz
    mem_ns = 1e3 * dram / config.memory_clock_mhz
    times = np.maximum(core_ns, mem_ns) + config.mem_overlap_residual * np.minimum(
        core_ns, mem_ns
    )

    pass_times = {}
    for pass_name, start, end in fp.pass_spans:
        total = float(times[start:end].sum())
        pass_times[pass_name] = pass_times.get(pass_name, 0.0) + total

    stage_cycles: Optional[Dict[str, float]] = None
    if collect_stages:
        # Where the simulated cycles went, summed over the frame's draws
        # — "shader" is the unified-ALU time (vertex + pixel work).
        stage_cycles = {
            "shader": float(vertex_cycles.sum() + pixel_cycles.sum()),
            "fetch": float(fetch_cycles.sum()),
            "raster": float(raster_cycles.sum()),
            "texture": float(tex_cycles.sum()),
            "rop": float(rop_cycles.sum()),
            "memory": float(dram.sum()),
        }

    return BatchFrameOutput(
        frame_index=fp.frame_index,
        time_ns=float(times.sum()),
        core_cycles=float(core.sum()),
        dram_cycles=float(dram.sum()),
        draw_times_ns=times,
        draw_core_cycles=core,
        pass_times_ns=pass_times,
        stage_cycles=stage_cycles,
    )


def simulate_frames_batch(
    trace: Trace, config: GpuConfig, precomp: Optional[TracePrecomp] = None
) -> List[BatchFrameOutput]:
    """Vectorized simulation of every frame; returns per-draw detail."""
    if precomp is None:
        precomp = precompute_trace(trace)
    contexts = precomp.context_arrays(config)
    return [
        simulate_frame_arrays(fp, warm, switch, config)
        for fp, (warm, switch) in zip(precomp.frames, contexts)
    ]


def simulate_frame_range_multi(
    trace: Trace,
    configs: Sequence[GpuConfig],
    start: int,
    stop: int,
) -> List[List[BatchFrameOutput]]:
    """Simulate frames ``[start, stop)`` on every config, one frame at a time.

    Per-frame precompute happens once per frame; the order-dependent
    context arrays are computed once per distinct context signature (so
    a DVFS sweep over N clocks walks each frame's draws once, matching
    :meth:`TracePrecomp.context_arrays` sharing).  Frames are mutually
    independent, which makes this the unit of work the parallel runtime
    distributes — any partition of ``[0, num_frames)`` concatenates to
    exactly the full-trace result.
    """
    if not 0 <= start <= stop <= trace.num_frames:
        raise SimulationError(
            f"frame range [{start}, {stop}) invalid for "
            f"{trace.num_frames}-frame trace"
        )
    obs = current_obs()
    tracer = obs.tracer
    per_config: List[List[BatchFrameOutput]] = [[] for _ in configs]
    for frame in trace.frames[start:stop]:
        fp = precompute_frame(trace, frame)
        contexts: Dict[tuple, Tuple[np.ndarray, np.ndarray]] = {}
        for slot, config in enumerate(configs):
            signature = context_signature(config)
            if signature not in contexts:
                contexts[signature] = context_for_frame(fp, config)
            warm, switch = contexts[signature]
            if tracer.enabled:
                # A span per simulated frame, carrying where the cycles
                # went: the trace answers "which stage dominated".
                with tracer.span(
                    "simulate_frame",
                    category="simgpu",
                    frame=fp.frame_index,
                    config=config.name,
                    draws=len(fp.draws),
                ) as span:
                    out = simulate_frame_arrays(
                        fp, warm, switch, config, collect_stages=True
                    )
                    span.set(
                        time_ns=out.time_ns,
                        **{
                            f"{stage}_cycles": cycles
                            for stage, cycles in (out.stage_cycles or {}).items()
                        },
                    )
            else:
                out = simulate_frame_arrays(fp, warm, switch, config)
            obs.metrics.observe("frame_core_cycles", out.core_cycles)
            per_config[slot].append(out)
    return per_config


def simulate_frame_range(
    trace: Trace, config: GpuConfig, start: int, stop: int
) -> List[BatchFrameOutput]:
    """Simulate frames ``[start, stop)`` of ``trace`` on one config."""
    return simulate_frame_range_multi(trace, (config,), start, stop)[0]


def trace_result_from_outputs(
    trace_name: str, config_name: str, outputs: Sequence[BatchFrameOutput]
) -> TraceResult:
    """Package per-frame batch outputs as a :class:`TraceResult`."""
    frame_results = tuple(
        FrameResult(
            frame_index=out.frame_index,
            num_draws=len(out.draw_times_ns),
            time_ns=out.time_ns,
            core_cycles=out.core_cycles,
            dram_cycles=out.dram_cycles,
            pass_times_ns=out.pass_times_ns,
            draw_costs=None,
        )
        for out in outputs
    )
    return TraceResult(
        trace_name=trace_name,
        config_name=config_name,
        frame_results=frame_results,
    )


def simulate_trace_batch(
    trace: Trace, config: GpuConfig, precomp: Optional[TracePrecomp] = None
) -> TraceResult:
    """Vectorized equivalent of :meth:`GpuSimulator.simulate_trace`."""
    outputs = simulate_frames_batch(trace, config, precomp)
    return trace_result_from_outputs(trace.name, config.name, outputs)
