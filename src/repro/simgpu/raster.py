"""Rasterizer model: primitive setup plus coarse pixel coverage."""

from __future__ import annotations

from repro.gfx.enums import CullMode
from repro.simgpu.config import GpuConfig

# Fraction of primitives surviving back-face culling for typical closed
# meshes; applied only to setup (coverage counts are API-observed).
CULL_SURVIVAL = 0.55


def primitives_after_cull(primitive_count: int, cull: CullMode) -> float:
    """Primitives reaching triangle setup after the cull stage."""
    if primitive_count < 0:
        raise ValueError(f"primitive_count must be >= 0, got {primitive_count}")
    if cull is CullMode.NONE:
        return float(primitive_count)
    return primitive_count * CULL_SURVIVAL


def raster_cycles(
    primitive_count: int,
    pixels_rasterized: int,
    cull: CullMode,
    config: GpuConfig,
) -> float:
    """Core cycles spent in triangle setup and coverage generation."""
    setup = primitives_after_cull(primitive_count, cull) / config.raster_prims_per_cycle
    coverage = pixels_rasterized / config.raster_pixels_per_cycle
    return setup + coverage
