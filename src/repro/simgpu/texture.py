"""Texture subsystem: sample throughput and cache-miss traffic.

The miss-rate model is a capacity curve: the larger the bound texture
footprint relative to cache capacity, the more samples miss.  Warmth —
whether previous draws already streamed the same textures — halves the
cold compulsory component.  Warmth is order-dependent and therefore part
of the micro-architecture-dependent residual the clustering cannot see.
"""

from __future__ import annotations

from typing import Sequence

from repro.gfx.resources import TextureDesc
from repro.simgpu.config import GpuConfig

# Compulsory floor: even an infinitely large cache misses on first touch.
BASE_MISS = 0.02
# Capacity slope: how fast misses grow as footprint exceeds cache.
CAPACITY_MISS_SCALE = 0.35
MAX_MISS = 0.90
# Warm textures keep their hot mip levels resident.
WARM_MISS_MULTIPLIER = 0.45
# Spatial locality bound: one draw's streaming read cannot fetch much
# more than the bound textures' contents (adjacent samples share
# cachelines), however many samples it issues.  The headroom covers
# partial-line waste and boundary overfetch.
FOOTPRINT_OVERFETCH_CAP = 1.5


def texture_footprint_bytes(textures: Sequence[TextureDesc]) -> int:
    """Total byte footprint of the bound texture set."""
    return sum(tex.byte_size for tex in textures)


def miss_rate(
    footprint_bytes: int, warm_fraction: float, config: GpuConfig
) -> float:
    """Per-sample miss probability for a draw.

    ``warm_fraction`` is the fraction of the footprint already resident
    from earlier draws (0 = cold, 1 = fully warm).
    """
    if footprint_bytes < 0:
        raise ValueError(f"footprint_bytes must be >= 0, got {footprint_bytes}")
    if not 0.0 <= warm_fraction <= 1.0:
        raise ValueError(f"warm_fraction must be in [0, 1], got {warm_fraction}")
    if footprint_bytes == 0:
        return 0.0
    capacity = config.tex_cache_kb * 1024
    pressure = footprint_bytes / capacity
    cold = min(MAX_MISS, BASE_MISS + CAPACITY_MISS_SCALE * pressure)
    warm = cold * WARM_MISS_MULTIPLIER
    return warm * warm_fraction + cold * (1.0 - warm_fraction)


def texture_cycles(samples: int, config: GpuConfig) -> float:
    """Core cycles of texture-unit throughput for ``samples`` lookups."""
    if samples == 0:
        return 0.0
    rate = config.tex_units_total * config.tex_rate_per_unit
    return samples / rate


def texture_miss_bytes(
    samples: int,
    sample_miss_rate: float,
    footprint_bytes: float,
    config: GpuConfig,
) -> float:
    """Bytes fetched from beyond the texture cache for a draw's samples.

    Per-sample misses each pull a cacheline, but spatial locality bounds
    the total at :data:`FOOTPRINT_OVERFETCH_CAP` times the bound
    footprint — a full-screen pass over a texture streams the texture,
    not cacheline-per-pixel.
    """
    demand = samples * sample_miss_rate * config.cacheline_bytes
    return min(demand, FOOTPRINT_OVERFETCH_CAP * footprint_bytes)
