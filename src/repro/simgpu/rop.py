"""ROP (raster output / output-merger) model: fill-rate and RT traffic."""

from __future__ import annotations

from typing import Sequence

from repro.gfx.drawcall import DrawCall
from repro.gfx.resources import RenderTargetDesc
from repro.simgpu.config import GpuConfig

# Blending is read-modify-write; it halves effective ROP throughput.
BLEND_THROUGHPUT_FACTOR = 0.5


def rop_cycles(draw: DrawCall, num_color_targets: int, config: GpuConfig) -> float:
    """Core cycles of output-merger throughput for one draw."""
    writes = draw.pixels_shaded * max(1, num_color_targets)
    rate = config.rop_pixels_total_per_cycle
    if draw.state.blend.reads_destination:
        rate *= BLEND_THROUGHPUT_FACTOR
    # Depth-tested-but-killed pixels still occupy the depth ROP.
    depth_tests = draw.pixels_rasterized if draw.state.depth.reads_depth else 0
    return (writes + 0.25 * depth_tests) / rate


def color_traffic_bytes(
    draw: DrawCall, color_targets: Sequence[RenderTargetDesc]
) -> float:
    """Color read+write bytes at the output merger."""
    bytes_per_pixel = sum(rt.bytes_per_pixel for rt in color_targets)
    write = draw.pixels_shaded * bytes_per_pixel
    read = write if draw.state.blend.reads_destination else 0.0
    return write + read


def depth_traffic_bytes(
    draw: DrawCall,
    depth_target: RenderTargetDesc,
    config: GpuConfig,
) -> float:
    """Depth read+write bytes, after on-chip depth compression."""
    bytes_per_pixel = depth_target.bytes_per_pixel * config.depth_compression
    read = draw.pixels_rasterized * bytes_per_pixel if draw.state.depth.reads_depth else 0.0
    write = draw.pixels_shaded * bytes_per_pixel if draw.state.depth.writes_depth else 0.0
    return read + write
