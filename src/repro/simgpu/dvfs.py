"""Frequency-scaling (DVFS) sweeps.

The paper validates subsets by scaling GPU core frequency and checking
that the subset's performance-improvement curve tracks the parent's
(correlation coefficient >= 0.997).  This module runs the sweep for any
trace and packages the normalized improvement curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import SimulationError
from repro.gfx.trace import Trace
from repro.simgpu.config import GpuConfig
from repro.simgpu.simulator import GpuSimulator

DEFAULT_CLOCKS_MHZ = (600.0, 800.0, 1000.0, 1200.0, 1400.0, 1600.0)


@dataclass(frozen=True)
class FrequencySweepResult:
    """Trace performance across core clocks, normalized to the first clock."""

    trace_name: str
    base_config_name: str
    clocks_mhz: Tuple[float, ...]
    total_times_ns: Tuple[float, ...]

    @property
    def speedups(self) -> Tuple[float, ...]:
        """Performance improvement relative to the lowest clock."""
        base = self.total_times_ns[0]
        return tuple(base / t for t in self.total_times_ns)

    @property
    def improvements_percent(self) -> Tuple[float, ...]:
        """Speedup expressed as percent improvement over the base clock."""
        return tuple(100.0 * (s - 1.0) for s in self.speedups)

    @property
    def scaling_efficiency(self) -> Tuple[float, ...]:
        """Achieved speedup divided by ideal (clock-ratio) speedup.

        1.0 means perfectly compute-bound; the shortfall is the memory-
        bound fraction the paper's experiment exposes.
        """
        base_clock = self.clocks_mhz[0]
        return tuple(
            speedup / (clock / base_clock)
            for speedup, clock in zip(self.speedups, self.clocks_mhz)
        )


def frequency_sweep(
    trace: Trace,
    base_config: GpuConfig,
    clocks_mhz: Sequence[float] = DEFAULT_CLOCKS_MHZ,
    use_batch: bool = True,
    domain: str = "core",
) -> FrequencySweepResult:
    """Simulate ``trace`` at each clock point and collect total times.

    ``domain`` selects which clock is swept: ``"core"`` (the paper's
    experiment) or ``"memory"`` (the complementary sweep, exposing how
    memory-bound the workload is).  ``use_batch`` routes through the
    vectorized path (identical numbers, much faster on large traces);
    pass False to force the sequential reference simulator.
    """
    if domain not in ("core", "memory"):
        raise SimulationError(f"domain must be 'core' or 'memory', got {domain!r}")
    if len(clocks_mhz) < 2:
        raise SimulationError("a frequency sweep needs at least two clock points")
    if sorted(clocks_mhz) != list(clocks_mhz):
        raise SimulationError("clocks_mhz must be sorted ascending")
    if domain == "core":
        configs = [base_config.with_core_clock(clock) for clock in clocks_mhz]
    else:
        configs = [base_config.with_memory_clock(clock) for clock in clocks_mhz]
    if use_batch:
        from repro.simgpu.batch import simulate_trace_multi

        # Config-vectorized: the trace's precompute and context arrays
        # are shared across every clock point (capacities and switch
        # costs are clock-independent), so the whole sweep is one pass.
        results = simulate_trace_multi(trace, configs)
        times = [result.total_time_ns for result in results]
    else:
        # Sequential reference: intentionally simulates per config so
        # the sweep can be cross-checked against the scalar simulator.
        times = [
            GpuSimulator(config).simulate_trace(trace).total_time_ns  # repro: noqa[PERF001]
            for config in configs
        ]
    return FrequencySweepResult(
        trace_name=trace.name,
        base_config_name=base_config.name,
        clocks_mhz=tuple(clocks_mhz),
        total_times_ns=tuple(times),
    )
