"""The GPU simulator: drives the cost model over frames and traces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.gfx.drawcall import DrawCall
from repro.gfx.frame import Frame
from repro.gfx.trace import Trace
from repro.simgpu.config import GpuConfig
from repro.simgpu.cost import DrawCost, draw_cost
from repro.simgpu.state_tracker import StateTracker


@dataclass(frozen=True)
class FrameResult:
    """Simulation result for one frame."""

    frame_index: int
    num_draws: int
    time_ns: float
    core_cycles: float
    dram_cycles: float
    pass_times_ns: Dict[str, float] = field(default_factory=dict)
    draw_costs: Optional[Tuple[DrawCost, ...]] = None

    @property
    def time_ms(self) -> float:
        return self.time_ns / 1e6

    def draw_times_ns(self) -> Tuple[float, ...]:
        """Per-draw wall times; requires the frame was simulated with detail."""
        if self.draw_costs is None:
            raise SimulationError(
                "frame was simulated without keep_draw_costs=True"
            )
        return tuple(cost.time_ns for cost in self.draw_costs)


@dataclass(frozen=True)
class TraceResult:
    """Simulation result for a whole trace."""

    trace_name: str
    config_name: str
    frame_results: Tuple[FrameResult, ...]

    @property
    def total_time_ns(self) -> float:
        return sum(fr.time_ns for fr in self.frame_results)

    @property
    def total_time_ms(self) -> float:
        return self.total_time_ns / 1e6

    @property
    def frame_times_ns(self) -> Tuple[float, ...]:
        return tuple(fr.time_ns for fr in self.frame_results)

    @property
    def mean_fps(self) -> float:
        mean_frame_s = self.total_time_ns / len(self.frame_results) / 1e9
        return 1.0 / mean_frame_s


class GpuSimulator:
    """Simulates traces on one architecture configuration.

    The simulator is stateless between calls; each frame gets a fresh
    :class:`StateTracker`, making frames independent and per-frame
    prediction well defined.
    """

    def __init__(self, config: GpuConfig) -> None:
        if not isinstance(config, GpuConfig):
            raise SimulationError(
                f"config must be GpuConfig, got {type(config).__name__}"
            )
        self.config = config

    # -- draws ---------------------------------------------------------------

    def simulate_draws(
        self,
        draws: Sequence[DrawCall],
        trace: Trace,
        frame_index: int = 0,
    ) -> List[DrawCost]:
        """Simulate an ordered draw sequence with a fresh execution context.

        This is the primitive the subsetting methodology uses: simulating
        a frame's representative subset means running exactly this on the
        subset sequence.  Context (warmth, switches) is rebuilt from the
        sequence itself, so a subset's costs legitimately differ from the
        same draws' in-context costs within the full frame.
        """
        tracker = StateTracker(self.config)
        tracker.begin_frame()
        costs: List[DrawCost] = []
        for position, draw in enumerate(draws):
            costs.append(self._one_draw(draw, trace, tracker, frame_index, position))
        return costs

    # -- frames ----------------------------------------------------------------

    def simulate_frame(
        self, frame: Frame, trace: Trace, keep_draw_costs: bool = False
    ) -> FrameResult:
        """Simulate one frame in submission order."""
        if frame.num_draws == 0:
            raise SimulationError(f"frame {frame.index} has no draws")
        tracker = StateTracker(self.config)
        tracker.begin_frame()
        costs: List[DrawCost] = []
        pass_times: Dict[str, float] = {}
        position = 0
        for render_pass in frame.passes:
            pass_ns = 0.0
            for draw in render_pass.draws:
                cost = self._one_draw(draw, trace, tracker, frame.index, position)
                costs.append(cost)
                pass_ns += cost.time_ns
                position += 1
            key = render_pass.pass_type.value
            pass_times[key] = pass_times.get(key, 0.0) + pass_ns
        return FrameResult(
            frame_index=frame.index,
            num_draws=frame.num_draws,
            time_ns=sum(c.time_ns for c in costs),
            core_cycles=sum(c.core_cycles for c in costs),
            dram_cycles=sum(c.dram_cycles for c in costs),
            pass_times_ns=pass_times,
            draw_costs=tuple(costs) if keep_draw_costs else None,
        )

    # -- traces ----------------------------------------------------------------

    def simulate_trace(
        self, trace: Trace, keep_draw_costs: bool = False
    ) -> TraceResult:
        """Simulate every frame of a trace."""
        frame_results = tuple(
            self.simulate_frame(frame, trace, keep_draw_costs=keep_draw_costs)
            for frame in trace.frames
        )
        return TraceResult(
            trace_name=trace.name,
            config_name=self.config.name,
            frame_results=frame_results,
        )

    # -- internals ---------------------------------------------------------------

    def _one_draw(
        self,
        draw: DrawCall,
        trace: Trace,
        tracker: StateTracker,
        frame_index: int,
        position: int,
    ) -> DrawCost:
        shader = trace.shader(draw.shader_id)
        textures = [trace.texture(tid) for tid in draw.texture_ids]
        color_targets = [trace.render_target(rid) for rid in draw.render_target_ids]
        depth_target = (
            trace.render_target(draw.depth_target_id)
            if draw.depth_target_id is not None
            else None
        )
        effects = tracker.observe(draw, textures)
        return draw_cost(
            draw=draw,
            shader=shader,
            textures=textures,
            color_targets=color_targets,
            depth_target=depth_target,
            config=self.config,
            effects=effects,
            noise_key=(frame_index, position),
        )
