"""Shader-array model: SIMD throughput with occupancy-limited latency hiding.

A shader stage's cycle count is its total instruction work divided by the
array's lane throughput, derated when register pressure limits the number
of threads in flight (poor latency hiding).  Register pressure is a
compiler/micro-architecture interaction, so it is deliberately *not* part
of the clustering feature vector — it contributes intra-cluster variance.
"""

from __future__ import annotations

from repro.simgpu.config import GpuConfig

# A stage with zero occupancy headroom still streams instructions; the
# floor models in-order issue with no latency hiding at all.
MIN_THROUGHPUT_FACTOR = 0.55

# Texture-sample instructions occupy the ALU pipe for address generation
# before the texture unit takes over; this is their ALU-visible cost.
TEX_OP_ALU_COST = 4.0

# Dynamic branches serialize a SIMD batch briefly.
BRANCH_OP_ALU_COST = 2.0


def occupancy(registers: int, config: GpuConfig) -> float:
    """Fraction of maximum threads in flight given register allocation.

    Full occupancy at or below ``max_full_occupancy_registers``; inverse
    scaling beyond it (doubling registers halves resident threads).
    """
    if registers <= 0:
        raise ValueError(f"registers must be >= 1, got {registers}")
    if registers <= config.max_full_occupancy_registers:
        return 1.0
    return config.max_full_occupancy_registers / registers


def throughput_factor(occupancy_fraction: float) -> float:
    """Effective issue-rate multiplier achieved at a given occupancy.

    Latency hiding degrades sub-linearly: halving occupancy does not halve
    throughput because some latency is still covered.
    """
    occ = min(1.0, max(0.0, occupancy_fraction))
    return MIN_THROUGHPUT_FACTOR + (1.0 - MIN_THROUGHPUT_FACTOR) * occ


def stage_ops(alu_ops: int, tex_ops: int, branch_ops: int) -> float:
    """ALU-visible instruction cost of one shader invocation."""
    return alu_ops + TEX_OP_ALU_COST * tex_ops + BRANCH_OP_ALU_COST * branch_ops


def shader_stage_cycles(
    invocations: int,
    alu_ops: int,
    tex_ops: int,
    branch_ops: int,
    registers: int,
    config: GpuConfig,
) -> float:
    """Core cycles to execute ``invocations`` of a shader stage."""
    if invocations == 0:
        return 0.0
    work = invocations * stage_ops(alu_ops, tex_ops, branch_ops)
    effective_lanes = config.alu_lanes * throughput_factor(
        occupancy(registers, config)
    )
    return work / effective_lanes
