"""GPU architecture configuration.

A :class:`GpuConfig` pins every throughput, capacity, and penalty the cost
model uses.  Named presets span the pathfinding design space the paper
targets (low-power through high-end); :meth:`GpuConfig.with_core_clock`
produces the DVFS points for the frequency-scaling experiment.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.util.validation import check_fraction, check_positive, check_type


@dataclass(frozen=True)
class GpuConfig:
    """A point in the GPU architecture design space.

    Clock rates are in MHz; capacities in KiB; throughputs in units per
    clock cycle of the relevant domain (core or memory).
    """

    name: str = "mainstream"

    # Shader array
    num_shader_cores: int = 8
    simd_width: int = 32
    core_clock_mhz: float = 1000.0
    max_full_occupancy_registers: int = 32

    # Fixed function
    raster_prims_per_cycle: float = 2.0
    raster_pixels_per_cycle: float = 64.0
    rop_units: int = 4
    rop_pixels_per_cycle: float = 4.0
    vertex_fetch_bytes_per_cycle: float = 64.0

    # Texture subsystem
    tex_units_per_core: int = 4
    tex_rate_per_unit: float = 1.0
    tex_cache_kb: int = 128
    l2_cache_kb: int = 2048
    cacheline_bytes: int = 64

    # Memory system
    memory_clock_mhz: float = 1600.0
    dram_bytes_per_mem_cycle: float = 64.0
    l2_hit_tex: float = 0.45
    l2_hit_rt: float = 0.35
    l2_hit_vertex: float = 0.25
    depth_compression: float = 0.5

    # Pipelining / overheads
    serial_fraction: float = 0.12
    mem_overlap_residual: float = 0.25
    draw_overhead_cycles: float = 150.0
    shader_switch_cycles: float = 200.0
    state_switch_cycles: float = 80.0
    rt_switch_cycles: float = 1000.0

    # Unmodeled micro-architecture variance (deterministic, per draw slot)
    noise_amplitude: float = 0.02

    def __post_init__(self) -> None:
        check_type("GpuConfig.name", self.name, str)
        if not self.name:
            raise ConfigError("GpuConfig.name must be non-empty")
        for field_name in (
            "num_shader_cores",
            "simd_width",
            "max_full_occupancy_registers",
            "rop_units",
            "tex_units_per_core",
            "tex_cache_kb",
            "l2_cache_kb",
            "cacheline_bytes",
        ):
            value = getattr(self, field_name)
            check_type(f"GpuConfig.{field_name}", value, int)
            check_positive(f"GpuConfig.{field_name}", value)
        for field_name in (
            "core_clock_mhz",
            "memory_clock_mhz",
            "raster_prims_per_cycle",
            "raster_pixels_per_cycle",
            "rop_pixels_per_cycle",
            "vertex_fetch_bytes_per_cycle",
            "tex_rate_per_unit",
            "dram_bytes_per_mem_cycle",
        ):
            check_positive(f"GpuConfig.{field_name}", getattr(self, field_name))
        for field_name in (
            "l2_hit_tex",
            "l2_hit_rt",
            "l2_hit_vertex",
            "depth_compression",
            "serial_fraction",
            "mem_overlap_residual",
            "noise_amplitude",
        ):
            check_fraction(f"GpuConfig.{field_name}", getattr(self, field_name))
        for field_name in (
            "draw_overhead_cycles",
            "shader_switch_cycles",
            "state_switch_cycles",
            "rt_switch_cycles",
        ):
            value = getattr(self, field_name)
            if value < 0:
                raise ConfigError(f"GpuConfig.{field_name} must be >= 0, got {value}")

    # -- derived quantities ------------------------------------------------

    @property
    def alu_lanes(self) -> int:
        """Total SIMD lanes across the shader array."""
        return self.num_shader_cores * self.simd_width

    @property
    def tex_units_total(self) -> int:
        return self.num_shader_cores * self.tex_units_per_core

    @property
    def rop_pixels_total_per_cycle(self) -> float:
        return self.rop_units * self.rop_pixels_per_cycle

    @property
    def dram_bandwidth_gbps(self) -> float:
        """Peak DRAM bandwidth in GB/s."""
        return self.memory_clock_mhz * 1e6 * self.dram_bytes_per_mem_cycle / 1e9

    @property
    def warm_capacity_bytes(self) -> int:
        """Bytes of texture working set that can stay resident (tex + L2)."""
        return (self.tex_cache_kb + self.l2_cache_kb) * 1024

    # -- variants ------------------------------------------------------------

    def with_core_clock(self, core_clock_mhz: float) -> "GpuConfig":
        """This configuration at a different core clock (DVFS point)."""
        check_positive("core_clock_mhz", core_clock_mhz)
        return dataclasses.replace(
            self,
            core_clock_mhz=core_clock_mhz,
            name=f"{self.name}@{core_clock_mhz:g}MHz",
        )

    def with_memory_clock(self, memory_clock_mhz: float) -> "GpuConfig":
        """This configuration at a different memory clock."""
        check_positive("memory_clock_mhz", memory_clock_mhz)
        return dataclasses.replace(
            self,
            memory_clock_mhz=memory_clock_mhz,
            name=f"{self.name}@mem{memory_clock_mhz:g}MHz",
        )

    def scaled(self, **overrides) -> "GpuConfig":
        """A variant with arbitrary field overrides (pathfinding sweeps)."""
        try:
            return dataclasses.replace(self, **overrides)
        except TypeError as exc:
            raise ConfigError(f"unknown GpuConfig field in overrides: {exc}") from exc

    # -- presets -------------------------------------------------------------

    @classmethod
    def preset(cls, name: str) -> "GpuConfig":
        """A named architecture preset.

        ``lowpower``  — tablet/phone class (the paper's new-device motivation)
        ``mainstream`` — desktop midrange (default)
        ``highend``   — enthusiast discrete GPU
        """
        try:
            return _PRESETS[name]
        except KeyError:
            choices = ", ".join(sorted(_PRESETS))
            raise ConfigError(f"unknown preset {name!r}; choose from: {choices}") from None

    @classmethod
    def preset_names(cls) -> tuple:
        return tuple(sorted(_PRESETS))


_PRESETS = {
    "lowpower": GpuConfig(
        name="lowpower",
        num_shader_cores=2,
        simd_width=16,
        core_clock_mhz=600.0,
        memory_clock_mhz=800.0,
        dram_bytes_per_mem_cycle=32.0,
        tex_units_per_core=2,
        tex_cache_kb=64,
        l2_cache_kb=512,
        rop_units=2,
        raster_pixels_per_cycle=16.0,
    ),
    "mainstream": GpuConfig(name="mainstream"),
    "highend": GpuConfig(
        name="highend",
        num_shader_cores=24,
        simd_width=32,
        core_clock_mhz=1200.0,
        memory_clock_mhz=2000.0,
        dram_bytes_per_mem_cycle=128.0,
        tex_units_per_core=4,
        tex_cache_kb=256,
        l2_cache_kb=4096,
        rop_units=8,
        raster_prims_per_cycle=4.0,
        raster_pixels_per_cycle=128.0,
    ),
}
