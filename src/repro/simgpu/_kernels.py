"""Compiled kernels for the precompute hot path, behind a dispatch layer.

``BENCH_sweep.json`` showed the config-vectorized sweep is dominated by
per-frame *precompute* — above all the Fenwick-tree LRU reuse-distance
pass (:mod:`repro.simgpu.batch`) and the per-draw texture/render-target
reductions of :mod:`repro.core.features`.  Both are inherently
sequential inner loops that numpy cannot vectorize, so this module
compiles them, keeping numpy as the only *hard* dependency:

- **numba** — ``@njit(cache=True)`` implementations
  (:mod:`repro.simgpu._kernels_numba`), used when numba is importable;
- **cext** — the same loops as a small C library compiled on demand
  with the host toolchain (``cc -O2 -shared``) into a content-addressed
  cache under ``<cache-dir>/kernels/`` and loaded via ``ctypes``; the
  build is attempted once per process and at most once per source
  digest per machine;
- **python** — the original pure-Python loops, bit-identical to the
  pre-kernel code and always available.

Backend selection is ``$REPRO_KERNELS`` (or the CLI ``--kernels``
flag): ``auto`` (default; numba, then cext, then python), or one of the
explicit names — requesting an unavailable backend is a
:class:`~repro.errors.ConfigError`, never a silent fallback.  The
resolved backend is reported in run manifests and the environment
fingerprint (:func:`kernel_info`) so run records stay comparable.

**Exactness contract.** Every kernel is defined so all three backends
produce *bit-identical* outputs (the property tests assert ``==``, not
approx):

- :func:`reuse_distances` works in int64 arithmetic and converts to
  float64 only on assignment — exact below 2**53 bytes of tracked
  texture;
- :func:`segment_sums` is *defined* as running-prefix differences
  (``S[end] - S[start]`` over one sequential left-to-right
  accumulation), which is what ``np.cumsum`` + subtraction, the C loop,
  and the numba loop all compute — identical bits for any input, and
  equal to a direct per-segment sum whenever the additions are exact
  (integer-valued byte sizes, dyadic bytes-per-pixel — true for every
  value the trace schema can produce).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.util.rng import stable_unit

#: Environment override for the kernel backend.
KERNELS_ENV = "REPRO_KERNELS"

#: Valid ``$REPRO_KERNELS`` / ``--kernels`` values.
KERNEL_BACKENDS = ("auto", "numba", "cext", "python")

#: Bump when a kernel's semantics change: participates in the compiled
#: library's content address, so stale ``.so`` files are never reloaded.
#: v2: added the ``repro_noise_units`` sha256-based draw-noise kernel.
KERNEL_ABI_VERSION = 2


class KernelBackend:
    """One resolved backend: a name plus the kernel entry points.

    ``reuse`` takes ``(dense_ids, sizes, offsets, num_ids)`` — texture
    ids already remapped to ``[0, num_ids)`` — and returns per-slot
    float64 reuse distances (``inf`` on first touch).  The segment-sum
    kernels take ``(values, offsets)`` and return per-segment totals
    under the running-prefix-difference contract above.  ``noise``
    takes ``(frame_index, n)`` and returns the per-position draw-noise
    units (``stable_unit("simgpu-noise", frame_index, i)``); backends
    without a compiled sha256 (numba) fall back to the python loop.
    """

    def __init__(
        self,
        name: str,
        reuse: Callable[[np.ndarray, np.ndarray, np.ndarray, int], np.ndarray],
        seg_f64: Callable[[np.ndarray, np.ndarray], np.ndarray],
        seg_i64: Callable[[np.ndarray, np.ndarray], np.ndarray],
        noise: Optional[Callable[[int, int], np.ndarray]] = None,
    ) -> None:
        self.name = name
        self._reuse = reuse
        self._seg_f64 = seg_f64
        self._seg_i64 = seg_i64
        self._noise = noise if noise is not None else _noise_python


# ---------------------------------------------------------------------------
# Pure-python kernels (the reference implementations)
# ---------------------------------------------------------------------------


def _reuse_python(
    dense_ids: np.ndarray,
    sizes: np.ndarray,
    offsets: np.ndarray,
    num_ids: int,
) -> np.ndarray:
    """Fenwick LRU stack-distance pass over flat per-slot arrays.

    The flat-array form of the slot loop that used to live in
    ``batch._texture_reuse_arrays`` (see DESIGN.md for why it equals
    walking the tracker's size-weighted LRU): position ``t`` of the
    Fenwick tree holds the byte size of the texture whose *latest*
    touch happened at timestamp ``t``, so a suffix sum over
    ``(prev, now]`` is the total size of distinct textures touched
    since a texture's previous touch.  Residency is checked for every
    slot of a draw *before* any of the draw's touches land.
    """
    num_slots = len(sizes)
    reuse = np.full(num_slots, np.inf)
    ids: List[int] = dense_ids.tolist()
    szs: List[int] = sizes.tolist()
    offs: List[int] = offsets.tolist()
    tree = [0] * (num_slots + 1)
    last_touch = [-1] * num_ids
    live_total = 0
    now = 0
    for d in range(len(offs) - 1):
        for s in range(offs[d], offs[d + 1]):
            prev = last_touch[ids[s]]
            if prev >= 0:
                total = 0
                i = prev + 1
                while i > 0:
                    total += tree[i]
                    i -= i & -i
                reuse[s] = szs[s] + (live_total - total)
        for s in range(offs[d], offs[d + 1]):
            tid = ids[s]
            size = szs[s]
            prev = last_touch[tid]
            if prev >= 0:
                i = prev + 1
                while i <= num_slots:
                    tree[i] -= size
                    i += i & -i
                live_total -= size
            i = now + 1
            while i <= num_slots:
                tree[i] += size
                i += i & -i
            live_total += size
            last_touch[tid] = now
            now += 1
    return reuse


def _seg_f64_python(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment totals as running-prefix differences (float64)."""
    cumulative = np.concatenate(([0.0], np.cumsum(values, dtype=np.float64)))
    return np.asarray(cumulative[offsets[1:]] - cumulative[offsets[:-1]])


def _seg_i64_python(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment totals as running-prefix differences (int64, exact)."""
    cumulative = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(values, dtype=np.int64))
    )
    return np.asarray(cumulative[offsets[1:]] - cumulative[offsets[:-1]])


def _noise_python(frame_index: int, n: int) -> np.ndarray:
    """The reference draw-noise loop: one sha256 per position."""
    return np.array(
        [stable_unit("simgpu-noise", frame_index, i) for i in range(n)]
    )


_PYTHON_BACKEND = KernelBackend(
    "python", _reuse_python, _seg_f64_python, _seg_i64_python, _noise_python
)


# ---------------------------------------------------------------------------
# C backend: compiled on demand with the host toolchain, loaded via ctypes
# ---------------------------------------------------------------------------

_C_SOURCE = r"""
#include <stdint.h>
#include <math.h>
#include <stdio.h>
#include <string.h>

static void fen_add(int64_t *tree, int64_t size, int64_t index, int64_t delta)
{
    for (int64_t i = index + 1; i <= size; i += i & (-i))
        tree[i] += delta;
}

static int64_t fen_prefix(const int64_t *tree, int64_t count)
{
    int64_t total = 0;
    for (int64_t i = count; i > 0; i -= i & (-i))
        total += tree[i];
    return total;
}

void repro_reuse_distances(
    const int64_t *dense_ids, const int64_t *sizes, const int64_t *offsets,
    int64_t num_draws, int64_t num_slots, int64_t num_ids,
    int64_t *tree, int64_t *last_touch, double *reuse)
{
    for (int64_t i = 0; i <= num_slots; i++) tree[i] = 0;
    for (int64_t i = 0; i < num_ids; i++) last_touch[i] = -1;
    for (int64_t s = 0; s < num_slots; s++) reuse[s] = INFINITY;
    int64_t live_total = 0;
    int64_t now = 0;
    for (int64_t d = 0; d < num_draws; d++) {
        for (int64_t s = offsets[d]; s < offsets[d + 1]; s++) {
            int64_t prev = last_touch[dense_ids[s]];
            if (prev >= 0)
                reuse[s] = (double)(sizes[s]
                    + (live_total - fen_prefix(tree, prev + 1)));
        }
        for (int64_t s = offsets[d]; s < offsets[d + 1]; s++) {
            int64_t tid = dense_ids[s];
            int64_t prev = last_touch[tid];
            if (prev >= 0) {
                fen_add(tree, num_slots, prev, -sizes[s]);
                live_total -= sizes[s];
            }
            fen_add(tree, num_slots, now, sizes[s]);
            live_total += sizes[s];
            last_touch[tid] = now;
            now++;
        }
    }
}

void repro_segment_sums_f64(
    const double *values, const int64_t *offsets, int64_t num_segments,
    double *out)
{
    double run = 0.0;
    int64_t i = 0;
    for (; i < offsets[0]; i++)
        run += values[i];
    for (int64_t d = 0; d < num_segments; d++) {
        double start = run;
        for (; i < offsets[d + 1]; i++)
            run += values[i];
        out[d] = run - start;
    }
}

void repro_segment_sums_i64(
    const int64_t *values, const int64_t *offsets, int64_t num_segments,
    int64_t *out)
{
    int64_t run = 0;
    int64_t i = 0;
    for (; i < offsets[0]; i++)
        run += values[i];
    for (int64_t d = 0; d < num_segments; d++) {
        int64_t start = run;
        for (; i < offsets[d + 1]; i++)
            run += values[i];
        out[d] = run - start;
    }
}

/* SHA-256 (FIPS 180-4), needed so the per-draw noise stream
 * stable_unit("simgpu-noise", frame, pos) can run compiled while
 * remaining bit-identical to hashlib: same digest, same first-8-bytes
 * big-endian integer, same mod / divide in double precision. */

static const uint32_t SHA_K[64] = {
    0x428a2f98u,0x71374491u,0xb5c0fbcfu,0xe9b5dba5u,
    0x3956c25bu,0x59f111f1u,0x923f82a4u,0xab1c5ed5u,
    0xd807aa98u,0x12835b01u,0x243185beu,0x550c7dc3u,
    0x72be5d74u,0x80deb1feu,0x9bdc06a7u,0xc19bf174u,
    0xe49b69c1u,0xefbe4786u,0x0fc19dc6u,0x240ca1ccu,
    0x2de92c6fu,0x4a7484aau,0x5cb0a9dcu,0x76f988dau,
    0x983e5152u,0xa831c66du,0xb00327c8u,0xbf597fc7u,
    0xc6e00bf3u,0xd5a79147u,0x06ca6351u,0x14292967u,
    0x27b70a85u,0x2e1b2138u,0x4d2c6dfcu,0x53380d13u,
    0x650a7354u,0x766a0abbu,0x81c2c92eu,0x92722c85u,
    0xa2bfe8a1u,0xa81a664bu,0xc24b8b70u,0xc76c51a3u,
    0xd192e819u,0xd6990624u,0xf40e3585u,0x106aa070u,
    0x19a4c116u,0x1e376c08u,0x2748774cu,0x34b0bcb5u,
    0x391c0cb3u,0x4ed8aa4au,0x5b9cca4fu,0x682e6ff3u,
    0x748f82eeu,0x78a5636fu,0x84c87814u,0x8cc70208u,
    0x90befffau,0xa4506cebu,0xbef9a3f7u,0xc67178f2u
};

#define ROTR32(x, n) (((x) >> (n)) | ((x) << (32 - (n))))

static void sha256_block(uint32_t state[8], const unsigned char block[64])
{
    uint32_t w[64];
    for (int t = 0; t < 16; t++)
        w[t] = ((uint32_t)block[4 * t] << 24)
             | ((uint32_t)block[4 * t + 1] << 16)
             | ((uint32_t)block[4 * t + 2] << 8)
             | (uint32_t)block[4 * t + 3];
    for (int t = 16; t < 64; t++) {
        uint32_t s0 = ROTR32(w[t - 15], 7) ^ ROTR32(w[t - 15], 18)
                    ^ (w[t - 15] >> 3);
        uint32_t s1 = ROTR32(w[t - 2], 17) ^ ROTR32(w[t - 2], 19)
                    ^ (w[t - 2] >> 10);
        w[t] = w[t - 16] + s0 + w[t - 7] + s1;
    }
    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int t = 0; t < 64; t++) {
        uint32_t S1 = ROTR32(e, 6) ^ ROTR32(e, 11) ^ ROTR32(e, 25);
        uint32_t ch = (e & f) ^ ((~e) & g);
        uint32_t t1 = h + S1 + ch + SHA_K[t] + w[t];
        uint32_t S0 = ROTR32(a, 2) ^ ROTR32(a, 13) ^ ROTR32(a, 22);
        uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        uint32_t t2 = S0 + maj;
        h = g; g = f; f = e; e = d + t1;
        d = c; c = b; b = a; a = t1 + t2;
    }
    state[0] += a; state[1] += b; state[2] += c; state[3] += d;
    state[4] += e; state[5] += f; state[6] += g; state[7] += h;
}

/* First 8 digest bytes as a big-endian unsigned 64-bit integer
 * (int.from_bytes(sha256(msg).digest()[:8], "big")). */
static uint64_t sha256_prefix64(const unsigned char *msg, uint64_t len)
{
    uint32_t state[8] = {
        0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
        0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u
    };
    unsigned char block[64];
    uint64_t done = 0;
    while (len - done >= 64) {
        sha256_block(state, msg + done);
        done += 64;
    }
    uint64_t rem = len - done;
    memcpy(block, msg + done, rem);
    block[rem++] = 0x80;
    if (rem > 56) {
        memset(block + rem, 0, 64 - rem);
        sha256_block(state, block);
        rem = 0;
    }
    memset(block + rem, 0, 56 - rem);
    uint64_t bits = len * 8;
    for (int j = 0; j < 8; j++)
        block[56 + j] = (unsigned char)(bits >> (56 - 8 * j));
    sha256_block(state, block);
    return ((uint64_t)state[0] << 32) | (uint64_t)state[1];
}

/* out[i] = stable_unit("simgpu-noise", frame_index, i): the hashed
 * text is the python repr of the stringified component tuple, e.g.
 * ('simgpu-noise', '3', '17') -- plain ASCII, so utf-8 == bytes. */
void repro_noise_units(int64_t frame_index, int64_t n, double *out)
{
    const uint64_t modulus = 0x7fffffffffffffffULL; /* 2**63 - 1 */
    char text[96];
    /* The frame part is loop-invariant: format the prefix once and
     * append the position digits + closing quote/paren by hand. */
    int prefix = snprintf(text, sizeof text, "('simgpu-noise', '%lld', '",
                          (long long)frame_index);
    for (int64_t pos = 0; pos < n; pos++) {
        char digits[24];
        int nd = 0;
        uint64_t v = (uint64_t)pos;
        do {
            digits[nd++] = (char)('0' + (v % 10));
            v /= 10;
        } while (v);
        char *p = text + prefix;
        while (nd)
            *p++ = digits[--nd];
        *p++ = '\'';
        *p++ = ')';
        uint64_t h = sha256_prefix64((const unsigned char *)text,
                                     (uint64_t)(p - text)) % modulus;
        out[pos] = (double)h / (double)modulus;
    }
}
"""

_I64_P = ctypes.POINTER(ctypes.c_int64)
_F64_P = ctypes.POINTER(ctypes.c_double)


def _c_source_digest() -> str:
    payload = f"abi={KERNEL_ABI_VERSION}\n{_C_SOURCE}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        found = shutil.which(name)
        if found:
            return found
    return None


def _kernel_build_dir() -> Path:
    # Imported lazily: runtime.cache pulls in telemetry/obs, which the
    # kernels themselves never need at import time.
    from repro.runtime.cache import default_cache_dir

    return default_cache_dir() / "kernels"


def _compile_c_library() -> Path:
    """Compile (or reuse) the kernel library; returns the ``.so`` path.

    The library is content-addressed by source + ABI version, so a
    machine compiles each kernel revision exactly once; concurrent
    builders race benignly through the temp-file + ``os.replace``
    pattern (both produce identical bytes, last writer wins).
    """
    build_dir = _kernel_build_dir()
    so_path = build_dir / f"reprokern-{_c_source_digest()}.so"
    if so_path.exists():
        return so_path
    compiler = _find_compiler()
    if compiler is None:
        raise ConfigError("no C compiler (cc/gcc/clang) on PATH")
    build_dir.mkdir(parents=True, exist_ok=True)
    src_path = build_dir / f"reprokern-{_c_source_digest()}.c"
    if not src_path.exists():
        src_path.write_text(_C_SOURCE, encoding="utf-8")
    handle, tmp_name = tempfile.mkstemp(
        dir=build_dir, prefix=f".{so_path.name}.", suffix=".tmp"
    )
    os.close(handle)
    try:
        proc = subprocess.run(
            [compiler, "-O2", "-fPIC", "-shared", "-o", tmp_name, str(src_path)],
            capture_output=True,
            text=True,
            timeout=120,
            check=False,
        )
        if proc.returncode != 0:
            raise ConfigError(
                f"kernel compile failed ({compiler}): {proc.stderr.strip()[:500]}"
            )
        os.replace(tmp_name, so_path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return so_path


def _load_cext_backend() -> KernelBackend:
    lib = ctypes.CDLL(str(_compile_c_library()))
    lib.repro_reuse_distances.restype = None
    lib.repro_reuse_distances.argtypes = [
        _I64_P, _I64_P, _I64_P,
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        _I64_P, _I64_P, _F64_P,
    ]
    lib.repro_segment_sums_f64.restype = None
    lib.repro_segment_sums_f64.argtypes = [_F64_P, _I64_P, ctypes.c_int64, _F64_P]
    lib.repro_segment_sums_i64.restype = None
    lib.repro_segment_sums_i64.argtypes = [_I64_P, _I64_P, ctypes.c_int64, _I64_P]
    lib.repro_noise_units.restype = None
    lib.repro_noise_units.argtypes = [ctypes.c_int64, ctypes.c_int64, _F64_P]

    def i64p(array: np.ndarray) -> "ctypes._Pointer":
        return array.ctypes.data_as(_I64_P)

    def f64p(array: np.ndarray) -> "ctypes._Pointer":
        return array.ctypes.data_as(_F64_P)

    def reuse(
        dense_ids: np.ndarray, sizes: np.ndarray, offsets: np.ndarray, num_ids: int
    ) -> np.ndarray:
        num_slots = len(sizes)
        num_draws = len(offsets) - 1
        out = np.empty(num_slots, dtype=np.float64)
        tree = np.empty(num_slots + 1, dtype=np.int64)
        last_touch = np.empty(max(1, num_ids), dtype=np.int64)
        lib.repro_reuse_distances(
            i64p(dense_ids), i64p(sizes), i64p(offsets),
            num_draws, num_slots, num_ids,
            i64p(tree), i64p(last_touch), f64p(out),
        )
        return out

    def seg_f64(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        out = np.empty(len(offsets) - 1, dtype=np.float64)
        lib.repro_segment_sums_f64(f64p(values), i64p(offsets), len(out), out.ctypes.data_as(_F64_P))
        return out

    def seg_i64(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        out = np.empty(len(offsets) - 1, dtype=np.int64)
        lib.repro_segment_sums_i64(i64p(values), i64p(offsets), len(out), i64p(out))
        return out

    def noise(frame_index: int, n: int) -> np.ndarray:
        out = np.empty(n, dtype=np.float64)
        lib.repro_noise_units(frame_index, n, f64p(out))
        return out

    return KernelBackend("cext", reuse, seg_f64, seg_i64, noise)


def _load_numba_backend() -> KernelBackend:
    from repro.simgpu import _kernels_numba as nb

    # No noise kernel: hashlib is not nopython-compilable, so numba
    # keeps the python reference loop for the (memoized) noise stream.
    return KernelBackend(
        "numba", nb.reuse_distances, nb.segment_sums_f64, nb.segment_sums_i64
    )


# ---------------------------------------------------------------------------
# Backend resolution
# ---------------------------------------------------------------------------

#: Resolved backends by requested name (and failures, so an unavailable
#: backend is probed at most once per process).
_RESOLVED: Dict[str, KernelBackend] = {}
_FAILED: Dict[str, str] = {}

_LOADERS: Dict[str, Callable[[], KernelBackend]] = {
    "numba": _load_numba_backend,
    "cext": _load_cext_backend,
    "python": lambda: _PYTHON_BACKEND,
}


def requested_backend() -> str:
    """The requested backend name (``$REPRO_KERNELS``, default auto)."""
    value = os.environ.get(KERNELS_ENV, "auto").strip().lower()
    return value or "auto"


def _try_load(name: str) -> Optional[KernelBackend]:
    if name in _RESOLVED:
        return _RESOLVED[name]
    if name in _FAILED:
        return None
    try:
        loaded = _LOADERS[name]()
    except ConfigError as exc:
        _FAILED[name] = str(exc)
        return None
    except Exception as exc:  # ImportError, OSError, numba typing errors
        _FAILED[name] = f"{type(exc).__name__}: {exc}"
        return None
    _RESOLVED[name] = loaded
    return loaded


def backend() -> KernelBackend:
    """The active kernel backend, resolved lazily from ``$REPRO_KERNELS``.

    ``auto`` tries numba, then the C extension, then pure python; an
    *explicitly* requested backend that cannot load raises
    :class:`ConfigError` carrying the underlying failure.
    """
    name = requested_backend()
    if name == "auto":
        if "auto" in _RESOLVED:
            return _RESOLVED["auto"]
        for candidate in ("numba", "cext", "python"):
            loaded = _try_load(candidate)
            if loaded is not None:
                _RESOLVED["auto"] = loaded
                return loaded
        raise ConfigError("no kernel backend available")  # pragma: no cover
    if name not in _LOADERS:
        raise ConfigError(
            f"unknown kernel backend {name!r}; valid values: "
            f"{', '.join(KERNEL_BACKENDS)}"
        )
    loaded = _try_load(name)
    if loaded is None:
        raise ConfigError(
            f"kernel backend {name!r} is unavailable: {_FAILED.get(name)}"
        )
    return loaded


def set_backend(name: str) -> str:
    """Select the kernel backend process-wide (and for worker children).

    Validates ``name``, exports it via ``$REPRO_KERNELS`` (worker
    processes inherit the environment, so pool workers resolve the same
    backend), and eagerly resolves it so misconfiguration fails at the
    CLI boundary instead of mid-sweep.  Returns the resolved name.
    """
    cleaned = name.strip().lower()
    if cleaned not in KERNEL_BACKENDS:
        raise ConfigError(
            f"unknown kernel backend {name!r}; valid values: "
            f"{', '.join(KERNEL_BACKENDS)}"
        )
    os.environ[KERNELS_ENV] = cleaned
    return backend().name


def resolved_backend_name() -> Optional[str]:
    """The active backend's name if already resolved, else ``None``.

    Reporting surfaces (manifest, environment fingerprint) use this so
    that *recording* a run never forces a compile/import as a side
    effect: simulating commands resolve the backend while simulating,
    and non-simulating commands honestly report ``None``.
    """
    name = requested_backend()
    resolved = _RESOLVED.get(name)
    return resolved.name if resolved is not None else None


def kernel_info(resolve: bool = False) -> Dict[str, Optional[str]]:
    """Requested + resolved backend names, for manifests and benches."""
    if resolve:
        backend()
    return {"requested": requested_backend(), "backend": resolved_backend_name()}


def _reset_backend_cache() -> None:
    """Forget resolved/failed backends (tests poking at availability)."""
    _RESOLVED.clear()
    _FAILED.clear()


# ---------------------------------------------------------------------------
# Public kernel entry points
# ---------------------------------------------------------------------------


def reuse_distances(
    tex_ids: np.ndarray, sizes: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    """Size-weighted LRU stack distances for flat per-slot texture arrays.

    ``tex_ids``/``sizes`` hold one entry per bound-texture slot in draw
    order, ``offsets`` the ``[offsets[d], offsets[d+1])`` slot segment
    of draw ``d``.  Returns float64 distances (``inf`` on first touch);
    a texture is resident in an LRU of capacity ``C`` exactly when its
    distance is ``<= C``.
    """
    num_slots = int(tex_ids.shape[0])
    if num_slots == 0:
        return np.full(0, np.inf)
    uniques, inverse = np.unique(tex_ids, return_inverse=True)
    dense = np.ascontiguousarray(inverse, dtype=np.int64)
    sizes = np.ascontiguousarray(sizes, dtype=np.int64)
    offsets = np.ascontiguousarray(offsets, dtype=np.int64)
    return backend()._reuse(dense, sizes, offsets, int(len(uniques)))


def segment_sums(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Float64 per-segment totals (running-prefix-difference contract)."""
    values = np.ascontiguousarray(values, dtype=np.float64)
    offsets = np.ascontiguousarray(offsets, dtype=np.int64)
    if len(values) == 0:
        return np.zeros(len(offsets) - 1, dtype=np.float64)
    return backend()._seg_f64(values, offsets)


def segment_sums_i64(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Int64 per-segment totals (exact integer arithmetic)."""
    values = np.ascontiguousarray(values, dtype=np.int64)
    offsets = np.ascontiguousarray(offsets, dtype=np.int64)
    if len(values) == 0:
        return np.zeros(len(offsets) - 1, dtype=np.int64)
    return backend()._seg_i64(values, offsets)


def noise_units(frame_index: int, n: int) -> np.ndarray:
    """The per-draw noise stream of one frame, as a float64 array.

    ``out[i] == stable_unit("simgpu-noise", frame_index, i)`` exactly:
    the compiled backend reproduces hashlib's sha256 and the identical
    integer-to-double conversions, so the bits match the python loop.
    """
    if n <= 0:
        return np.zeros(0)
    return backend()._noise(int(frame_index), int(n))


__all__: Tuple[str, ...] = (
    "KERNELS_ENV",
    "KERNEL_BACKENDS",
    "KernelBackend",
    "backend",
    "kernel_info",
    "noise_units",
    "requested_backend",
    "resolved_backend_name",
    "reuse_distances",
    "segment_sums",
    "segment_sums_i64",
    "set_backend",
)
