"""Machine-wide shared precompute store (content-addressed, mmap-loaded).

Per-frame precompute (:class:`~repro.simgpu.batch.FramePrecomp`) is
config-independent and keyed purely by trace content, yet before this
store every *worker process* of a sweep rebuilt it from scratch —
BENCH_sweep.json put precompute at ~93% of sweep cost.  This module
serializes each frame's arrays into one file under
``.repro/precomp/`` so a machine precomputes each frame exactly once:

``<root>/v<CACHE_FORMAT_VERSION>.<PRECOMP_FORMAT_VERSION>/<d2>/<digest>/<frame>.fpc``

- keyed by the trace content digest (:func:`repro.runtime.keys
  .trace_digest` — the same identity the artifact cache uses) plus both
  format versions, so any change to cache semantics or file layout
  starts a fresh namespace instead of corrupting readers;
- published crash-safely (temp file in the destination directory +
  ``os.replace``), the same pattern as the run/job stores; concurrent
  publishers of the same frame race benignly — content-addressed means
  both write identical bytes and the last rename wins atomically;
- loaded **zero-copy** via ``np.memmap``: workers map the arrays
  read-only straight out of the page cache instead of recomputing or
  unpickling them, and frames of the same trace share one mapping per
  file.

File format (``.fpc``): a magic line, an 8-byte little-endian header
length, a JSON header (frame index, draw count, pass spans, and per
array name/dtype/shape/offset), then the raw array blobs, each aligned
to 64 bytes.  Anything unreadable — truncated write from a crash,
foreign bytes — is evicted and recomputed, never trusted.

Store location: ``$REPRO_PRECOMP_DIR`` (CLI ``--precomp-dir``); unset
means the default ``.repro/precomp``, an *empty* value disables the
store entirely (mirroring ``$REPRO_RUN_STORE``).
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Environment override for the store root ("" disables the store).
PRECOMP_DIR_ENV = "REPRO_PRECOMP_DIR"

#: Environment override for the in-process memo's trace capacity.
PRECOMP_MEMO_ENV = "REPRO_PRECOMP_MEMO_TRACES"

#: Default in-process memo capacity (traces), when the env is unset.
DEFAULT_MEMO_TRACES = 2

#: Bump on any .fpc layout change; pairs with CACHE_FORMAT_VERSION in
#: the versioned directory name so stale files are never read.
PRECOMP_FORMAT_VERSION = 1

_MAGIC = b"RPPC01\n"
_ALIGN = 64

#: FramePrecomp array fields serialized into the blob section, in file
#: order.  (``pass_spans`` rides in the JSON header; ``draws`` holds
#: only length information and is reconstructed as placeholders.)
ARRAY_FIELDS: Tuple[str, ...] = (
    "verts",
    "prims",
    "cull_none",
    "pix_rast",
    "pix_shaded",
    "stride",
    "vs_alu",
    "vs_tex",
    "vs_branch",
    "vs_regs",
    "ps_alu",
    "ps_tex",
    "ps_branch",
    "ps_regs",
    "footprint",
    "color_bpp",
    "n_color",
    "blend_dest",
    "depth_reads",
    "depth_writes",
    "depth_bpp",
    "noise_units",
    "shader_switch",
    "state_switch",
    "rt_switch",
    "tex_slot_sizes",
    "tex_slot_reuse",
    "tex_slot_offsets",
    "tex_totals",
)


def default_precomp_dir() -> Optional[Path]:
    """The store root: env override, ``.repro/precomp``, or ``None`` (off)."""
    raw = os.environ.get(PRECOMP_DIR_ENV)
    if raw is None:
        return Path(".repro") / "precomp"
    raw = raw.strip()
    if not raw:
        return None
    return Path(raw).expanduser()


def set_precomp_dir(value: str) -> None:
    """Point the store at ``value`` process-wide (workers inherit it).

    An empty string disables the store.  Also resets the active-store
    singleton so the change takes effect immediately in this process.
    """
    os.environ[PRECOMP_DIR_ENV] = value
    reset_active_store()


def memo_trace_limit() -> int:
    """In-process precompute memo capacity, in traces (min 1)."""
    raw = os.environ.get(PRECOMP_MEMO_ENV, "").strip()
    if not raw:
        return DEFAULT_MEMO_TRACES
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_MEMO_TRACES


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _version_dirname() -> str:
    from repro.runtime.keys import CACHE_FORMAT_VERSION

    return f"v{CACHE_FORMAT_VERSION}.{PRECOMP_FORMAT_VERSION}"


def _serialize_frame(fp: "FramePrecomp") -> bytes:  # noqa: F821
    """One frame's arrays as the on-disk ``.fpc`` byte string."""
    blobs: List[bytes] = []
    arrays_meta: Dict[str, Dict[str, object]] = {}
    relative = 0
    for name in ARRAY_FIELDS:
        array = np.ascontiguousarray(getattr(fp, name))
        blob = array.tobytes()
        relative = _align(relative)
        arrays_meta[name] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": relative,
        }
        blobs.append(blob)
        relative += len(blob)
    header = {
        "format": PRECOMP_FORMAT_VERSION,
        "frame_index": fp.frame_index,
        "num_draws": fp.num_draws,
        "pass_spans": [list(span) for span in fp.pass_spans],
        "arrays": arrays_meta,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    data_start = _align(len(_MAGIC) + 8 + len(header_bytes))
    parts = [_MAGIC, struct.pack("<Q", len(header_bytes)), header_bytes]
    position = len(_MAGIC) + 8 + len(header_bytes)
    for name, blob in zip(ARRAY_FIELDS, blobs):
        absolute = data_start + int(arrays_meta[name]["offset"])  # type: ignore[arg-type]
        parts.append(b"\0" * (absolute - position))
        parts.append(blob)
        position = absolute + len(blob)
    return b"".join(parts)


class PrecompStoreError(Exception):
    """Internal: an ``.fpc`` file failed validation (evict + recompute)."""


class PrecompStore:
    """Content-addressed per-frame precompute files with mmap loads.

    Thread-safe: the mmap-handle registry is guarded by ``self._lock``;
    all file I/O (publish writes, memmap opens) happens *outside* the
    lock, so a slow disk never serializes readers (CONC002 discipline).
    Publishing needs no lock at all — ``os.replace`` is atomic and
    content-addressing makes double-publish idempotent.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self._lock = threading.Lock()
        # One read-only mapping per loaded file; dropped (not hard-
        # closed) by close_handles so live FramePrecomp views stay
        # valid while letting the OS reclaim replaced/deleted files.
        self._mmaps: Dict[Path, np.memmap] = {}

    # -- paths ------------------------------------------------------------

    def trace_dir(self, digest: str) -> Path:
        return self.root / _version_dirname() / digest[:2] / digest

    def frame_path(self, digest: str, frame_index: int) -> Path:
        return self.trace_dir(digest) / f"{frame_index:06d}.fpc"

    # -- publishing -------------------------------------------------------

    def has(self, digest: str, frame_index: int) -> bool:
        return self.frame_path(digest, frame_index).exists()

    def publish(self, digest: str, fp: "FramePrecomp") -> bool:  # noqa: F821
        """Write one frame's arrays; returns False if already present.

        Crash-safe and race-safe: the payload lands in a temp file in
        the destination directory and is atomically renamed into place;
        concurrent publishers write identical bytes, so whichever
        rename lands last leaves the same content.
        """
        path = self.frame_path(digest, fp.frame_index)
        if path.exists():
            return False
        payload = _serialize_frame(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return True

    # -- loading ----------------------------------------------------------

    def _mapping(self, path: Path) -> np.memmap:
        with self._lock:
            cached = self._mmaps.get(path)
        if cached is not None:
            return cached
        mapping = np.memmap(path, dtype=np.uint8, mode="r")
        with self._lock:
            # Another thread may have mapped the same file concurrently;
            # keep the first mapping so views share pages.
            return self._mmaps.setdefault(path, mapping)

    def load(self, digest: str, frame_index: int) -> Optional["FramePrecomp"]:  # noqa: F821
        """Map one frame read-only, or ``None`` (missing / evicted).

        Array fields are zero-copy views into the file's mapping; any
        structural problem evicts the file so the caller recomputes and
        republishes instead of failing the sweep.
        """
        path = self.frame_path(digest, frame_index)
        if not path.exists():
            return None
        try:
            return self._load_frame(path, frame_index)
        except Exception:
            self._evict(path)
            return None

    def _load_frame(self, path: Path, frame_index: int) -> "FramePrecomp":  # noqa: F821
        from repro.simgpu.batch import FramePrecomp

        mapping = self._mapping(path)
        if bytes(mapping[: len(_MAGIC)]) != _MAGIC:
            raise PrecompStoreError(f"bad magic in {path}")
        (header_len,) = struct.unpack(
            "<Q", bytes(mapping[len(_MAGIC) : len(_MAGIC) + 8])
        )
        header_end = len(_MAGIC) + 8 + header_len
        header = json.loads(bytes(mapping[len(_MAGIC) + 8 : header_end]))
        if header["format"] != PRECOMP_FORMAT_VERSION:
            raise PrecompStoreError(f"format {header['format']} in {path}")
        if header["frame_index"] != frame_index:
            raise PrecompStoreError(f"frame index mismatch in {path}")
        data_start = _align(header_end)
        arrays: Dict[str, np.ndarray] = {}
        for name in ARRAY_FIELDS:
            meta = header["arrays"][name]
            dtype = np.dtype(meta["dtype"])
            shape = tuple(meta["shape"])
            count = int(np.prod(shape)) if shape else 1
            start = data_start + meta["offset"]
            end = start + count * dtype.itemsize
            if end > mapping.shape[0]:
                raise PrecompStoreError(f"truncated blob {name!r} in {path}")
            arrays[name] = mapping[start:end].view(dtype).reshape(shape)
        num_draws = int(header["num_draws"])
        return FramePrecomp(
            frame_index=int(header["frame_index"]),
            pass_spans=[
                (str(span[0]), int(span[1]), int(span[2]))
                for span in header["pass_spans"]
            ],
            draws=[None] * num_draws,
            **arrays,
        )

    def _evict(self, path: Path) -> None:
        with self._lock:
            self._mmaps.pop(path, None)
        try:
            os.unlink(path)
        except OSError:
            pass

    def close_handles(self) -> None:
        """Drop all cached mappings (long-lived executors, tests).

        References are released rather than hard-closed: mappings whose
        views are still held by live ``FramePrecomp`` objects survive
        until those views go away, everything else is reclaimed — so a
        service executor that clears caches never pins deleted files.
        """
        with self._lock:
            self._mmaps.clear()

    def open_handle_count(self) -> int:
        with self._lock:
            return len(self._mmaps)


# ---------------------------------------------------------------------------
# Active-store singleton (env-keyed, shared with the runtime + CLI)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tuple[Optional[str], Optional[PrecompStore]]] = None
_ACTIVE_LOCK = threading.Lock()


def active_store() -> Optional[PrecompStore]:
    """The process's store for the current ``$REPRO_PRECOMP_DIR``.

    Re-resolved whenever the env value changes (tests, ``--precomp-dir``)
    and ``None`` when the store is disabled.
    """
    global _ACTIVE
    key = os.environ.get(PRECOMP_DIR_ENV)
    with _ACTIVE_LOCK:
        if _ACTIVE is not None and _ACTIVE[0] == key:
            return _ACTIVE[1]
        root = default_precomp_dir()
        store = PrecompStore(root) if root is not None else None
        _ACTIVE = (key, store)
        return store


def reset_active_store() -> None:
    """Drop the singleton and its mmap handles (tests, cache clears)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        active = _ACTIVE
        _ACTIVE = None
    if active is not None and active[1] is not None:
        active[1].close_handles()
