"""Numba implementations of the precompute kernels.

Imported lazily by :mod:`repro.simgpu._kernels` only when the ``numba``
backend is requested (or probed by ``auto``); importing this module
without numba installed raises ``ImportError``, which the dispatch
layer converts into an unavailability record.  The loop bodies mirror
the C source in ``_kernels.py`` statement for statement — integer-exact
Fenwick arithmetic and running-prefix-difference segment sums — so the
bit-parity contract holds (see the module docstring there).
"""

from __future__ import annotations

import numpy as np
from numba import njit  # noqa: F401  (hard import: module is the gate)


@njit(cache=True)
def _reuse_jit(dense_ids, sizes, offsets, num_ids, tree, last_touch, reuse):
    num_slots = sizes.shape[0]
    live_total = np.int64(0)
    now = np.int64(0)
    for d in range(offsets.shape[0] - 1):
        for s in range(offsets[d], offsets[d + 1]):
            prev = last_touch[dense_ids[s]]
            if prev >= 0:
                total = np.int64(0)
                i = prev + 1
                while i > 0:
                    total += tree[i]
                    i -= i & (-i)
                reuse[s] = np.float64(sizes[s] + (live_total - total))
        for s in range(offsets[d], offsets[d + 1]):
            tid = dense_ids[s]
            size = sizes[s]
            prev = last_touch[tid]
            if prev >= 0:
                i = prev + 1
                while i <= num_slots:
                    tree[i] -= size
                    i += i & (-i)
                live_total -= size
            i = now + 1
            while i <= num_slots:
                tree[i] += size
                i += i & (-i)
            live_total += size
            last_touch[tid] = now
            now += 1


@njit(cache=True)
def _seg_f64_jit(values, offsets, out):
    run = 0.0
    i = np.int64(0)
    while i < offsets[0]:
        run += values[i]
        i += 1
    for d in range(out.shape[0]):
        start = run
        while i < offsets[d + 1]:
            run += values[i]
            i += 1
        out[d] = run - start


@njit(cache=True)
def _seg_i64_jit(values, offsets, out):
    run = np.int64(0)
    i = np.int64(0)
    while i < offsets[0]:
        run += values[i]
        i += 1
    for d in range(out.shape[0]):
        start = run
        while i < offsets[d + 1]:
            run += values[i]
            i += 1
        out[d] = run - start


def reuse_distances(
    dense_ids: np.ndarray, sizes: np.ndarray, offsets: np.ndarray, num_ids: int
) -> np.ndarray:
    num_slots = sizes.shape[0]
    reuse = np.full(num_slots, np.inf)
    tree = np.zeros(num_slots + 1, dtype=np.int64)
    last_touch = np.full(max(1, num_ids), -1, dtype=np.int64)
    _reuse_jit(dense_ids, sizes, offsets, np.int64(num_ids), tree, last_touch, reuse)
    return reuse


def segment_sums_f64(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    out = np.empty(offsets.shape[0] - 1, dtype=np.float64)
    _seg_f64_jit(values, offsets, out)
    return out


def segment_sums_i64(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    out = np.empty(offsets.shape[0] - 1, dtype=np.int64)
    _seg_i64_jit(values, offsets, out)
    return out
