"""GPU performance model — the paper's simulator substitute.

The model estimates per-draw-call cost on a configurable GPU by computing
the cycles each pipeline stage (vertex shading, rasterization, pixel
shading, texturing, ROP) and the memory system would need, then combining
them under a pipelined-bottleneck assumption.  Order-dependent effects
(texture-cache warmth, pipeline state changes) are tracked across the
draws of a frame, so a draw's cost depends on its context — exactly the
micro-architecture-*dependent* residual the paper's clustering features
cannot see and must tolerate.

Two execution paths produce identical numbers:

- :class:`GpuSimulator` — the authoritative per-draw sequential model.
- :mod:`repro.simgpu.batch` — a numpy-vectorized path for paper-scale
  corpora (hundreds of thousands of draws).
"""

from repro.simgpu.config import GpuConfig
from repro.simgpu.cost import DrawCost
from repro.simgpu.dvfs import FrequencySweepResult, frequency_sweep
from repro.simgpu.simulator import FrameResult, GpuSimulator, TraceResult

__all__ = [
    "GpuConfig",
    "DrawCost",
    "GpuSimulator",
    "FrameResult",
    "TraceResult",
    "frequency_sweep",
    "FrequencySweepResult",
]
