"""Memory system: L2 filtering and DRAM bandwidth.

Traffic is classified (vertex fetch, texture miss, render target) because
each class has a different L2 hit profile; what survives L2 is divided by
DRAM bytes-per-cycle to get memory-clock cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simgpu.config import GpuConfig


@dataclass(frozen=True)
class TrafficBreakdown:
    """Bytes requested per traffic class, before L2 filtering."""

    vertex_bytes: float = 0.0
    texture_bytes: float = 0.0
    rt_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return self.vertex_bytes + self.texture_bytes + self.rt_bytes


def dram_bytes(traffic: TrafficBreakdown, config: GpuConfig) -> float:
    """Bytes reaching DRAM after per-class L2 filtering."""
    return (
        traffic.vertex_bytes * (1.0 - config.l2_hit_vertex)
        + traffic.texture_bytes * (1.0 - config.l2_hit_tex)
        + traffic.rt_bytes * (1.0 - config.l2_hit_rt)
    )


def dram_cycles(traffic: TrafficBreakdown, config: GpuConfig) -> float:
    """Memory-clock cycles to move the post-L2 traffic."""
    return dram_bytes(traffic, config) / config.dram_bytes_per_mem_cycle


def vertex_fetch_cycles(vertex_bytes: float, config: GpuConfig) -> float:
    """Core cycles of vertex-fetch front-end throughput."""
    return vertex_bytes / config.vertex_fetch_bytes_per_cycle
