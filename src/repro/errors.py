"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subclasses mark which
subsystem rejected the input; the message always says *what* was wrong and,
where it helps, what would have been accepted.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError):
    """An argument or data structure failed validation."""


class TraceError(ReproError):
    """A trace is malformed: dangling references, bad ordering, etc."""


class TraceFormatError(TraceError):
    """Serialized trace data could not be parsed or has a bad version."""


class ConfigError(ReproError):
    """A simulator or pipeline configuration is invalid."""


class ClusteringError(ReproError):
    """Clustering could not be performed on the given data."""


class PhaseDetectionError(ReproError):
    """Phase detection was asked to do something impossible."""


class SubsetError(ReproError):
    """Subset construction failed (e.g. empty trace, bad budget)."""


class SimulationError(ReproError):
    """The GPU model could not simulate the given workload."""


class CheckError(ReproError):
    """The static-analysis subsystem was misconfigured or misused."""
