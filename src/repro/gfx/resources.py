"""GPU resource descriptors: textures, buffers, render targets.

Descriptors capture only what the performance model and the feature
extractor need — dimensions, formats, byte sizes — not contents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.gfx.enums import TextureFormat
from repro.util.validation import check_nonnegative, check_positive, check_type


@dataclass(frozen=True)
class TextureDesc:
    """A sampled texture (mipmapped 2D)."""

    texture_id: int
    width: int
    height: int
    format: TextureFormat
    mip_levels: int = 1

    def __post_init__(self) -> None:
        check_type("TextureDesc.texture_id", self.texture_id, int)
        check_nonnegative("TextureDesc.texture_id", self.texture_id)
        for name in ("width", "height", "mip_levels"):
            value = getattr(self, name)
            check_type(f"TextureDesc.{name}", value, int)
            check_positive(f"TextureDesc.{name}", value)
        check_type("TextureDesc.format", self.format, TextureFormat)
        max_mips = max(self.width, self.height).bit_length()
        if self.mip_levels > max_mips:
            raise ValidationError(
                f"TextureDesc.mip_levels={self.mip_levels} exceeds the "
                f"{max_mips} levels a {self.width}x{self.height} texture can have"
            )

    @property
    def byte_size(self) -> int:
        """Total bytes across all mip levels."""
        total = 0.0
        w, h = self.width, self.height
        for _ in range(self.mip_levels):
            total += w * h * self.format.bytes_per_texel
            w = max(1, w // 2)
            h = max(1, h // 2)
        return int(total)

    def __hash__(self) -> int:
        return hash(self.texture_id)


@dataclass(frozen=True)
class BufferDesc:
    """A vertex or index buffer."""

    buffer_id: int
    byte_size: int
    stride: int

    def __post_init__(self) -> None:
        check_type("BufferDesc.buffer_id", self.buffer_id, int)
        check_nonnegative("BufferDesc.buffer_id", self.buffer_id)
        check_type("BufferDesc.byte_size", self.byte_size, int)
        check_positive("BufferDesc.byte_size", self.byte_size)
        check_type("BufferDesc.stride", self.stride, int)
        check_positive("BufferDesc.stride", self.stride)
        if self.stride > self.byte_size:
            raise ValidationError(
                f"BufferDesc.stride={self.stride} exceeds byte_size={self.byte_size}"
            )

    def __hash__(self) -> int:
        return hash(self.buffer_id)


@dataclass(frozen=True)
class RenderTargetDesc:
    """A color or depth attachment."""

    target_id: int
    width: int
    height: int
    format: TextureFormat
    samples: int = 1

    def __post_init__(self) -> None:
        check_type("RenderTargetDesc.target_id", self.target_id, int)
        check_nonnegative("RenderTargetDesc.target_id", self.target_id)
        for name in ("width", "height", "samples"):
            value = getattr(self, name)
            check_type(f"RenderTargetDesc.{name}", value, int)
            check_positive(f"RenderTargetDesc.{name}", value)
        if self.samples not in (1, 2, 4, 8):
            raise ValidationError(
                f"RenderTargetDesc.samples must be 1, 2, 4 or 8, got {self.samples}"
            )
        check_type("RenderTargetDesc.format", self.format, TextureFormat)

    @property
    def pixel_count(self) -> int:
        return self.width * self.height

    @property
    def bytes_per_pixel(self) -> float:
        return self.format.bytes_per_texel * self.samples

    def __hash__(self) -> int:
        return hash(self.target_id)
