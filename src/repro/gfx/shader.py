"""Shader programs and their static instruction statistics.

A :class:`ShaderProgram` carries per-stage :class:`ShaderStats`.  The ALU,
texture-sample, and interpolant counts are micro-architecture-independent
(properties of the compiled program's instruction stream) and feed the
clustering features.  The register count is *excluded* from the features: it
influences occupancy on a concrete GPU, so it belongs to the
micro-architecture-dependent residual the clustering must tolerate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.util.validation import check_nonnegative, check_positive, check_type


@dataclass(frozen=True)
class ShaderStats:
    """Static instruction statistics for one shader stage.

    Attributes:
        alu_ops: arithmetic instructions executed per invocation.
        tex_ops: texture-sample instructions per invocation.
        interpolants: varying components consumed (pixel stage) or
            produced (vertex stage).
        registers: temporary registers allocated by the compiler.  Affects
            occupancy on a real GPU; deliberately not a clustering feature.
        branch_ops: dynamic-branch instructions per invocation.
    """

    alu_ops: int
    tex_ops: int = 0
    interpolants: int = 8
    registers: int = 16
    branch_ops: int = 0

    def __post_init__(self) -> None:
        for name in ("alu_ops", "tex_ops", "interpolants", "registers", "branch_ops"):
            value = getattr(self, name)
            check_type(f"ShaderStats.{name}", value, int)
            check_nonnegative(f"ShaderStats.{name}", value)
        if self.registers == 0:
            raise ValidationError("ShaderStats.registers must be >= 1")

    @property
    def total_ops(self) -> int:
        return self.alu_ops + self.tex_ops + self.branch_ops


@dataclass(frozen=True)
class ShaderProgram:
    """A linked vertex+pixel shader program, identified by ``shader_id``.

    ``name`` is a human label emitted by the generator (e.g.
    ``"gbuffer/metal_rough"``); equality and identity are by ``shader_id``.
    """

    shader_id: int
    name: str
    vertex: ShaderStats
    pixel: ShaderStats
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        check_type("ShaderProgram.shader_id", self.shader_id, int)
        check_nonnegative("ShaderProgram.shader_id", self.shader_id)
        check_type("ShaderProgram.name", self.name, str)
        if not self.name:
            raise ValidationError("ShaderProgram.name must be non-empty")
        check_type("ShaderProgram.vertex", self.vertex, ShaderStats)
        check_type("ShaderProgram.pixel", self.pixel, ShaderStats)

    def __hash__(self) -> int:
        return hash(self.shader_id)


def make_shader(
    shader_id: int,
    name: str,
    vs_alu: int,
    ps_alu: int,
    ps_tex: int = 0,
    vs_tex: int = 0,
    ps_registers: int = 16,
    vs_registers: int = 16,
    interpolants: int = 8,
) -> ShaderProgram:
    """Convenience constructor used heavily by the generator and tests."""
    check_positive("interpolants", interpolants)
    return ShaderProgram(
        shader_id=shader_id,
        name=name,
        vertex=ShaderStats(
            alu_ops=vs_alu,
            tex_ops=vs_tex,
            interpolants=interpolants,
            registers=vs_registers,
        ),
        pixel=ShaderStats(
            alu_ops=ps_alu,
            tex_ops=ps_tex,
            interpolants=interpolants,
            registers=ps_registers,
        ),
    )
