"""Frames and render passes: the ordered structure of a rendered image."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.errors import ValidationError
from repro.gfx.drawcall import DrawCall
from repro.gfx.enums import PassType
from repro.util.validation import check_nonnegative, check_type


@dataclass(frozen=True)
class RenderPass:
    """A contiguous group of draws rendering to the same attachments."""

    pass_type: PassType
    draws: Tuple[DrawCall, ...]
    name: str = ""

    def __post_init__(self) -> None:
        check_type("RenderPass.pass_type", self.pass_type, PassType)
        check_type("RenderPass.draws", self.draws, tuple)
        for i, draw in enumerate(self.draws):
            if not isinstance(draw, DrawCall):
                raise ValidationError(
                    f"RenderPass.draws[{i}] must be DrawCall, "
                    f"got {type(draw).__name__}"
                )

    @property
    def num_draws(self) -> int:
        return len(self.draws)


@dataclass(frozen=True)
class Frame:
    """One rendered frame: an ordered sequence of render passes."""

    index: int
    passes: Tuple[RenderPass, ...]
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        check_type("Frame.index", self.index, int)
        check_nonnegative("Frame.index", self.index)
        check_type("Frame.passes", self.passes, tuple)
        for i, rp in enumerate(self.passes):
            if not isinstance(rp, RenderPass):
                raise ValidationError(
                    f"Frame.passes[{i}] must be RenderPass, got {type(rp).__name__}"
                )

    def draws(self) -> Iterator[DrawCall]:
        """Iterate all draw-calls in submission order."""
        for render_pass in self.passes:
            yield from render_pass.draws

    @property
    def draw_list(self) -> List[DrawCall]:
        return list(self.draws())

    @property
    def num_draws(self) -> int:
        return sum(rp.num_draws for rp in self.passes)

    @property
    def shader_ids(self) -> Tuple[int, ...]:
        """Shader id of every draw, in submission order."""
        return tuple(d.shader_id for d in self.draws())

    def pass_of_type(self, pass_type: PassType) -> Tuple[RenderPass, ...]:
        """All passes with the given type (possibly several, e.g. shadows)."""
        return tuple(rp for rp in self.passes if rp.pass_type is pass_type)


def frame_from_draws(index: int, draws: List[DrawCall]) -> Frame:
    """Wrap a flat draw list into a single-pass frame (testing helper)."""
    if not draws:
        raise ValidationError("frame_from_draws requires at least one draw")
    return Frame(
        index=index,
        passes=(RenderPass(pass_type=draws[0].pass_type, draws=tuple(draws)),),
    )
