"""The trace: a complete captured workload.

A :class:`Trace` bundles the frames of a workload with the shader and
resource tables the draws reference.  It is the input to the performance
model, the feature extractor, and the subsetting pipeline, and the output
of the synthetic generator.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.errors import ValidationError
from repro.gfx.drawcall import DrawCall
from repro.gfx.frame import Frame
from repro.gfx.resources import BufferDesc, RenderTargetDesc, TextureDesc
from repro.gfx.shader import ShaderProgram
from repro.util.validation import check_type


@dataclass(frozen=True)
class TraceStats:
    """Aggregate statistics of a trace (used in reports and sanity checks)."""

    num_frames: int
    num_draws: int
    num_shaders: int
    num_textures: int
    num_render_targets: int
    draws_per_frame_mean: float
    draws_per_pass_type: Dict[str, int]

    def as_dict(self) -> dict:
        return {
            "frames": self.num_frames,
            "draws": self.num_draws,
            "shaders": self.num_shaders,
            "textures": self.num_textures,
            "render_targets": self.num_render_targets,
            "draws_per_frame_mean": self.draws_per_frame_mean,
            "draws_per_pass_type": dict(self.draws_per_pass_type),
        }


@dataclass(frozen=True)
class Trace:
    """A captured (or synthesized) 3D workload."""

    name: str
    frames: Tuple[Frame, ...]
    shaders: Dict[int, ShaderProgram]
    textures: Dict[int, TextureDesc] = field(default_factory=dict)
    render_targets: Dict[int, RenderTargetDesc] = field(default_factory=dict)
    buffers: Dict[int, BufferDesc] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        check_type("Trace.name", self.name, str)
        if not self.name:
            raise ValidationError("Trace.name must be non-empty")
        check_type("Trace.frames", self.frames, tuple)
        if not self.frames:
            raise ValidationError("Trace.frames must be non-empty")
        for key, shader in self.shaders.items():
            if key != shader.shader_id:
                raise ValidationError(
                    f"shader table key {key} != shader_id {shader.shader_id}"
                )
        for key, tex in self.textures.items():
            if key != tex.texture_id:
                raise ValidationError(
                    f"texture table key {key} != texture_id {tex.texture_id}"
                )
        for key, rt in self.render_targets.items():
            if key != rt.target_id:
                raise ValidationError(
                    f"render-target table key {key} != target_id {rt.target_id}"
                )
        for key, buf in self.buffers.items():
            if key != buf.buffer_id:
                raise ValidationError(
                    f"buffer table key {key} != buffer_id {buf.buffer_id}"
                )

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    @property
    def num_draws(self) -> int:
        return sum(frame.num_draws for frame in self.frames)

    def draws(self) -> Iterator[DrawCall]:
        """Iterate every draw-call of every frame, in order."""
        for frame in self.frames:
            yield from frame.draws()

    def shader(self, shader_id: int) -> ShaderProgram:
        try:
            return self.shaders[shader_id]
        except KeyError:
            raise ValidationError(f"unknown shader_id {shader_id}") from None

    def texture(self, texture_id: int) -> TextureDesc:
        try:
            return self.textures[texture_id]
        except KeyError:
            raise ValidationError(f"unknown texture_id {texture_id}") from None

    def render_target(self, target_id: int) -> RenderTargetDesc:
        try:
            return self.render_targets[target_id]
        except KeyError:
            raise ValidationError(f"unknown render target_id {target_id}") from None

    def stats(self) -> TraceStats:
        """Compute aggregate statistics over the whole trace."""
        pass_counts: Counter = Counter()
        for frame in self.frames:
            for render_pass in frame.passes:
                pass_counts[render_pass.pass_type.value] += render_pass.num_draws
        num_draws = self.num_draws
        return TraceStats(
            num_frames=self.num_frames,
            num_draws=num_draws,
            num_shaders=len(self.shaders),
            num_textures=len(self.textures),
            num_render_targets=len(self.render_targets),
            draws_per_frame_mean=num_draws / self.num_frames,
            draws_per_pass_type=dict(pass_counts),
        )

    def subset_frames(self, frame_indices: List[int], name_suffix: str = "subset") -> "Trace":
        """Build a new trace containing only the given frames (by position).

        Shader/resource tables are carried over whole; frame ``index``
        fields keep their original values so phase provenance is preserved.
        """
        if not frame_indices:
            raise ValidationError("frame_indices must be non-empty")
        picked = []
        for pos in frame_indices:
            if not 0 <= pos < self.num_frames:
                raise ValidationError(
                    f"frame position {pos} out of range [0, {self.num_frames})"
                )
            picked.append(self.frames[pos])
        return Trace(
            name=f"{self.name}.{name_suffix}",
            frames=tuple(picked),
            shaders=dict(self.shaders),
            textures=dict(self.textures),
            render_targets=dict(self.render_targets),
            buffers=dict(self.buffers),
            metadata={**self.metadata, "parent": self.name,
                      "parent_frames": self.num_frames},
        )
