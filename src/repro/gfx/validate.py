"""Referential-integrity validation for traces.

Dataclass constructors already enforce local invariants (non-negative
counts, shaded <= rasterized, ...).  This module checks the *cross-object*
invariants a trace must satisfy before simulation: every id a draw
references must resolve in the trace's tables.
"""

from __future__ import annotations

from typing import List

from repro.errors import TraceError
from repro.gfx.trace import Trace


def validate_trace(trace: Trace, max_errors: int = 20) -> None:
    """Raise :class:`TraceError` listing all integrity violations found.

    Collects up to ``max_errors`` problems before raising so a broken
    generator is diagnosed in one pass rather than one error at a time.
    """
    problems: List[str] = []

    def note(problem: str) -> None:
        if len(problems) < max_errors:
            problems.append(problem)

    for frame_pos, frame in enumerate(trace.frames):
        for pass_pos, render_pass in enumerate(frame.passes):
            for draw_pos, draw in enumerate(render_pass.draws):
                where = f"frame[{frame_pos}].pass[{pass_pos}].draw[{draw_pos}]"
                if draw.shader_id not in trace.shaders:
                    note(f"{where}: unknown shader_id {draw.shader_id}")
                for tid in draw.texture_ids:
                    if tid not in trace.textures:
                        note(f"{where}: unknown texture_id {tid}")
                for rid in draw.render_target_ids:
                    if rid not in trace.render_targets:
                        note(f"{where}: unknown render target_id {rid}")
                if (
                    draw.depth_target_id is not None
                    and draw.depth_target_id not in trace.render_targets
                ):
                    note(f"{where}: unknown depth target_id {draw.depth_target_id}")
                if draw.depth_target_id is not None:
                    depth_rt = trace.render_targets.get(draw.depth_target_id)
                    if depth_rt is not None and not depth_rt.format.is_depth:
                        note(
                            f"{where}: depth target {draw.depth_target_id} has "
                            f"non-depth format {depth_rt.format.value}"
                        )
                if draw.state.depth.reads_depth and draw.depth_target_id is None:
                    note(f"{where}: depth test enabled but no depth target bound")
                for rid in draw.render_target_ids:
                    rt = trace.render_targets.get(rid)
                    if rt is not None and rt.format.is_depth:
                        note(
                            f"{where}: color target {rid} has depth format "
                            f"{rt.format.value}"
                        )
                if rt_pixel_bound_exceeded(trace, draw):
                    note(
                        f"{where}: pixels_rasterized={draw.pixels_rasterized} "
                        "exceeds 16x the bound render-target area"
                    )

    if problems:
        shown = "\n  ".join(problems)
        more = "" if len(problems) < max_errors else "\n  ... (truncated)"
        raise TraceError(f"trace {trace.name!r} failed validation:\n  {shown}{more}")


def rt_pixel_bound_exceeded(trace: Trace, draw) -> bool:
    """True when a draw claims to rasterize far more pixels than its target has.

    Overdraw within a draw (a draw covering the same pixel multiple times)
    is real, so the bound is deliberately loose: 16x the target area.
    """
    areas = [
        trace.render_targets[rid].pixel_count
        for rid in draw.render_target_ids
        if rid in trace.render_targets
    ]
    if draw.depth_target_id is not None and draw.depth_target_id in trace.render_targets:
        areas.append(trace.render_targets[draw.depth_target_id].pixel_count)
    if not areas:
        return False
    return draw.pixels_rasterized > 16 * max(areas)
