"""Command-stream interpreter and builder.

:class:`CommandInterpreter` replays an API command stream through a
state machine and reconstructs :class:`~repro.gfx.frame.Frame` objects
(render passes of :class:`~repro.gfx.drawcall.DrawCall` records) — the
importer path for real captures.  :func:`frames_to_commands` is the
inverse: it flattens frames back into a minimal command stream, emitting
a state command only when the state actually changes.

Round-trip guarantee: the *draw sequence* survives exactly —
``interpret(frames_to_commands(frames))`` yields frames whose flattened
draws equal the originals draw for draw, so simulation results are
identical.  Render-pass *grouping* is reconstructed from render-target
changes (the only signal a raw stream carries), so hand-built pass
boundaries that do not coincide with target changes are re-derived.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import TraceError
from repro.gfx.commands import (
    BindShader,
    BindTextures,
    Draw,
    EndFrame,
    SetPipelineState,
    SetRenderTargets,
    SetVertexStream,
)
from repro.gfx.drawcall import DrawCall
from repro.gfx.enums import PassType, PrimitiveTopology
from repro.gfx.frame import Frame, RenderPass
from repro.gfx.state import PipelineState


class CommandInterpreter:
    """Replays commands, validating ordering, and emits frames."""

    def __init__(self) -> None:
        self._shader_id: Optional[int] = None
        self._state: Optional[PipelineState] = None
        self._textures: Tuple[int, ...] = ()
        self._color_targets: Optional[Tuple[int, ...]] = None
        self._depth_target: Optional[int] = None
        self._pass_type: PassType = PassType.FORWARD
        self._stride: int = 32
        self._topology: PrimitiveTopology = PrimitiveTopology.TRIANGLE_LIST
        self._current_pass_draws: List[DrawCall] = []
        self._passes: List[RenderPass] = []
        self._frames: List[Frame] = []
        self._position = 0

    # -- the state machine ---------------------------------------------------

    def feed(self, command) -> None:
        """Process one command."""
        self._position += 1
        if isinstance(command, BindShader):
            self._shader_id = command.shader_id
        elif isinstance(command, SetPipelineState):
            self._state = command.state
        elif isinstance(command, BindTextures):
            self._textures = command.texture_ids
        elif isinstance(command, SetVertexStream):
            self._stride = command.stride_bytes
            self._topology = command.topology
        elif isinstance(command, SetRenderTargets):
            self._close_pass()
            self._color_targets = command.color_target_ids
            self._depth_target = command.depth_target_id
            self._pass_type = command.pass_type
        elif isinstance(command, Draw):
            self._draw(command)
        elif isinstance(command, EndFrame):
            self._end_frame()
        else:
            raise TraceError(
                f"command {self._position}: unknown command "
                f"{type(command).__name__}"
            )

    def run(self, commands: Iterable) -> List[Frame]:
        """Replay a whole stream and return the completed frames."""
        for command in commands:
            self.feed(command)
        if self._current_pass_draws or self._passes:
            raise TraceError(
                "command stream ended mid-frame (missing EndFrame)"
            )
        return list(self._frames)

    @property
    def frames(self) -> List[Frame]:
        return list(self._frames)

    # -- internals -----------------------------------------------------------

    def _draw(self, command: Draw) -> None:
        where = f"command {self._position}"
        if self._shader_id is None:
            raise TraceError(f"{where}: Draw with no shader bound")
        if self._state is None:
            raise TraceError(f"{where}: Draw with no pipeline state set")
        if self._color_targets is None:
            raise TraceError(f"{where}: Draw with no render targets set")
        self._current_pass_draws.append(
            DrawCall(
                shader_id=self._shader_id,
                state=self._state,
                topology=self._topology,
                vertex_count=command.vertex_count,
                instance_count=command.instance_count,
                pixels_rasterized=command.pixels_rasterized,
                pixels_shaded=command.pixels_shaded,
                texture_ids=self._textures,
                render_target_ids=self._color_targets,
                depth_target_id=self._depth_target,
                vertex_stride_bytes=self._stride,
                pass_type=self._pass_type,
            )
        )

    def _close_pass(self) -> None:
        if self._current_pass_draws:
            self._passes.append(
                RenderPass(
                    pass_type=self._pass_type,
                    draws=tuple(self._current_pass_draws),
                )
            )
            self._current_pass_draws = []

    def _end_frame(self) -> None:
        self._close_pass()
        if not self._passes:
            raise TraceError(
                f"command {self._position}: EndFrame with no draws in frame"
            )
        self._frames.append(
            Frame(index=len(self._frames), passes=tuple(self._passes))
        )
        self._passes = []
        # Render-target binding does not survive a present.
        self._color_targets = None
        self._depth_target = None


def interpret_commands(commands: Iterable) -> List[Frame]:
    """One-call replay of a command stream into frames."""
    return CommandInterpreter().run(commands)


def frames_to_commands(frames: Sequence[Frame]) -> List:
    """Flatten frames into a minimal command stream.

    State commands are emitted only on change, mirroring how a real
    engine (and the simulator's switch-penalty model) sees redundancy.
    """
    commands: List = []
    for frame in frames:
        shader: Optional[int] = None
        state: Optional[PipelineState] = None
        textures: Optional[Tuple[int, ...]] = None
        stream: Optional[Tuple[int, PrimitiveTopology]] = None
        targets: Optional[Tuple] = None
        for render_pass in frame.passes:
            for draw in render_pass.draws:
                draw_targets = (
                    draw.render_target_ids,
                    draw.depth_target_id,
                    draw.pass_type,
                )
                if draw_targets != targets:
                    commands.append(
                        SetRenderTargets(
                            color_target_ids=draw.render_target_ids,
                            depth_target_id=draw.depth_target_id,
                            pass_type=draw.pass_type,
                        )
                    )
                    targets = draw_targets
                if draw.shader_id != shader:
                    commands.append(BindShader(draw.shader_id))
                    shader = draw.shader_id
                if draw.state != state:
                    commands.append(SetPipelineState(draw.state))
                    state = draw.state
                if draw.texture_ids != textures:
                    commands.append(BindTextures(draw.texture_ids))
                    textures = draw.texture_ids
                draw_stream = (draw.vertex_stride_bytes, draw.topology)
                if draw_stream != stream:
                    commands.append(
                        SetVertexStream(
                            stride_bytes=draw.vertex_stride_bytes,
                            topology=draw.topology,
                        )
                    )
                    stream = draw_stream
                commands.append(
                    Draw(
                        vertex_count=draw.vertex_count,
                        instance_count=draw.instance_count,
                        pixels_rasterized=draw.pixels_rasterized,
                        pixels_shaded=draw.pixels_shaded,
                    )
                )
        commands.append(EndFrame())
    return commands
