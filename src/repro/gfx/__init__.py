"""3D workload model: shaders, resources, draw-calls, frames, traces.

This subpackage models the *API stream* of a 3D game — the information a
graphics-API capture tool sees — independent of any GPU micro-architecture.
It is the substrate on which both the synthetic workload generator
(:mod:`repro.synth`) and the performance model (:mod:`repro.simgpu`) operate,
and the source of the micro-architecture-independent draw-call
characteristics the paper clusters on (:mod:`repro.core.features`).
"""

from repro.gfx.drawcall import DrawCall
from repro.gfx.enums import (
    BlendMode,
    CullMode,
    DepthMode,
    PassType,
    PrimitiveTopology,
    TextureFormat,
)
from repro.gfx.frame import Frame, RenderPass
from repro.gfx.resources import BufferDesc, RenderTargetDesc, TextureDesc
from repro.gfx.shader import ShaderProgram, ShaderStats
from repro.gfx.state import PipelineState
from repro.gfx.trace import Trace, TraceStats
from repro.gfx.traceio import load_trace, read_trace, save_trace, write_trace
from repro.gfx.validate import validate_trace

__all__ = [
    "BlendMode",
    "CullMode",
    "DepthMode",
    "PassType",
    "PrimitiveTopology",
    "TextureFormat",
    "ShaderStats",
    "ShaderProgram",
    "TextureDesc",
    "BufferDesc",
    "RenderTargetDesc",
    "PipelineState",
    "DrawCall",
    "RenderPass",
    "Frame",
    "Trace",
    "TraceStats",
    "save_trace",
    "load_trace",
    "read_trace",
    "write_trace",
    "validate_trace",
]
