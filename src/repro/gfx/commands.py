"""API-level command records — the raw form of a captured trace.

A capture tool does not see :class:`~repro.gfx.drawcall.DrawCall`
records; it sees a stream of state-setting commands punctuated by draws:

    SetRenderTargets, BindShader, SetPipelineState, BindTextures,
    SetVertexStream, Draw, Draw, BindTextures, Draw, ... EndFrame

This module defines those commands.  The interpreter in
:mod:`repro.gfx.commandstream` replays a stream through a state machine
and emits the per-draw records the rest of the library consumes, so
importing a real capture only requires translating it into these
commands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ValidationError
from repro.gfx.enums import PassType, PrimitiveTopology
from repro.gfx.state import PipelineState
from repro.util.validation import check_nonnegative, check_positive, check_type


@dataclass(frozen=True)
class BindShader:
    """Select the shader program for subsequent draws."""

    shader_id: int

    def __post_init__(self) -> None:
        check_type("BindShader.shader_id", self.shader_id, int)
        check_nonnegative("BindShader.shader_id", self.shader_id)


@dataclass(frozen=True)
class SetPipelineState:
    """Set the fixed-function (depth/blend/cull) state."""

    state: PipelineState

    def __post_init__(self) -> None:
        check_type("SetPipelineState.state", self.state, PipelineState)


@dataclass(frozen=True)
class BindTextures:
    """Bind the sampled-texture set (replaces the previous binding)."""

    texture_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        check_type("BindTextures.texture_ids", self.texture_ids, tuple)
        for tid in self.texture_ids:
            check_type("BindTextures.texture_ids[*]", tid, int)
            check_nonnegative("BindTextures.texture_ids[*]", tid)


@dataclass(frozen=True)
class SetRenderTargets:
    """Bind color attachments and the optional depth attachment.

    Opens a new render pass; ``pass_type`` tags it for reporting.
    """

    color_target_ids: Tuple[int, ...]
    depth_target_id: Optional[int] = None
    pass_type: PassType = PassType.FORWARD

    def __post_init__(self) -> None:
        check_type("SetRenderTargets.color_target_ids", self.color_target_ids, tuple)
        for rid in self.color_target_ids:
            check_type("SetRenderTargets.color_target_ids[*]", rid, int)
            check_nonnegative("SetRenderTargets.color_target_ids[*]", rid)
        if self.depth_target_id is not None:
            check_type(
                "SetRenderTargets.depth_target_id", self.depth_target_id, int
            )
            check_nonnegative(
                "SetRenderTargets.depth_target_id", self.depth_target_id
            )
        if not self.color_target_ids and self.depth_target_id is None:
            raise ValidationError(
                "SetRenderTargets needs at least one color or depth target"
            )
        check_type("SetRenderTargets.pass_type", self.pass_type, PassType)


@dataclass(frozen=True)
class SetVertexStream:
    """Configure vertex fetch for subsequent draws."""

    stride_bytes: int
    topology: PrimitiveTopology

    def __post_init__(self) -> None:
        check_type("SetVertexStream.stride_bytes", self.stride_bytes, int)
        check_positive("SetVertexStream.stride_bytes", self.stride_bytes)
        check_type("SetVertexStream.topology", self.topology, PrimitiveTopology)


@dataclass(frozen=True)
class Draw:
    """Issue a draw with the currently bound state.

    ``pixels_rasterized``/``pixels_shaded`` carry the coverage statistics
    a profiling capture records per draw (or an estimator supplies).
    """

    vertex_count: int
    pixels_rasterized: int
    pixels_shaded: int
    instance_count: int = 1

    def __post_init__(self) -> None:
        check_type("Draw.vertex_count", self.vertex_count, int)
        check_positive("Draw.vertex_count", self.vertex_count)
        check_type("Draw.instance_count", self.instance_count, int)
        check_positive("Draw.instance_count", self.instance_count)
        check_type("Draw.pixels_rasterized", self.pixels_rasterized, int)
        check_nonnegative("Draw.pixels_rasterized", self.pixels_rasterized)
        check_type("Draw.pixels_shaded", self.pixels_shaded, int)
        check_nonnegative("Draw.pixels_shaded", self.pixels_shaded)
        if self.pixels_shaded > self.pixels_rasterized:
            raise ValidationError(
                f"Draw.pixels_shaded={self.pixels_shaded} cannot exceed "
                f"pixels_rasterized={self.pixels_rasterized}"
            )


@dataclass(frozen=True)
class EndFrame:
    """Present: close the current frame."""


Command = object  # union of the classes above; kept loose for extensibility
