"""Enumerations describing the API-visible state of a draw-call.

These mirror the Direct3D 10+/OpenGL 3+ feature set the paper's workloads
use, reduced to the properties that influence performance: primitive
assembly, pixel formats (bytes moved), and the fixed-function depth/blend
configuration.
"""

from __future__ import annotations

import enum


class PrimitiveTopology(enum.Enum):
    """How vertices are assembled into primitives."""

    POINT_LIST = "point_list"
    LINE_LIST = "line_list"
    TRIANGLE_LIST = "triangle_list"
    TRIANGLE_STRIP = "triangle_strip"

    def primitives_for_vertices(self, vertex_count: int) -> int:
        """Number of primitives produced by ``vertex_count`` input vertices."""
        if vertex_count < 0:
            raise ValueError(f"vertex_count must be >= 0, got {vertex_count}")
        if self is PrimitiveTopology.POINT_LIST:
            return vertex_count
        if self is PrimitiveTopology.LINE_LIST:
            return vertex_count // 2
        if self is PrimitiveTopology.TRIANGLE_LIST:
            return vertex_count // 3
        # Triangle strip: n vertices -> n - 2 triangles (0 if degenerate).
        return max(0, vertex_count - 2)


class TextureFormat(enum.Enum):
    """Texture / render-target storage formats with their cost in bytes.

    Block-compressed formats have sub-byte per-texel cost, which is why
    ``bytes_per_texel`` is a float.
    """

    R8 = "r8"
    RG8 = "rg8"
    RGBA8 = "rgba8"
    RGB10A2 = "rgb10a2"
    R16F = "r16f"
    RG16F = "rg16f"
    RGBA16F = "rgba16f"
    R32F = "r32f"
    RGBA32F = "rgba32f"
    BC1 = "bc1"
    BC3 = "bc3"
    BC5 = "bc5"
    DEPTH24S8 = "depth24s8"
    DEPTH32F = "depth32f"

    @property
    def bytes_per_texel(self) -> float:
        return _BYTES_PER_TEXEL[self]

    @property
    def is_depth(self) -> bool:
        return self in (TextureFormat.DEPTH24S8, TextureFormat.DEPTH32F)

    @property
    def is_compressed(self) -> bool:
        return self in (TextureFormat.BC1, TextureFormat.BC3, TextureFormat.BC5)


_BYTES_PER_TEXEL = {
    TextureFormat.R8: 1.0,
    TextureFormat.RG8: 2.0,
    TextureFormat.RGBA8: 4.0,
    TextureFormat.RGB10A2: 4.0,
    TextureFormat.R16F: 2.0,
    TextureFormat.RG16F: 4.0,
    TextureFormat.RGBA16F: 8.0,
    TextureFormat.R32F: 4.0,
    TextureFormat.RGBA32F: 16.0,
    TextureFormat.BC1: 0.5,
    TextureFormat.BC3: 1.0,
    TextureFormat.BC5: 1.0,
    TextureFormat.DEPTH24S8: 4.0,
    TextureFormat.DEPTH32F: 4.0,
}


class DepthMode(enum.Enum):
    """Depth-test configuration of a draw."""

    DISABLED = "disabled"
    TEST_ONLY = "test_only"
    TEST_WRITE = "test_write"

    @property
    def reads_depth(self) -> bool:
        return self is not DepthMode.DISABLED

    @property
    def writes_depth(self) -> bool:
        return self is DepthMode.TEST_WRITE


class BlendMode(enum.Enum):
    """Output-merger blend configuration of a draw."""

    OPAQUE = "opaque"
    ALPHA = "alpha"
    ADDITIVE = "additive"
    MULTIPLY = "multiply"

    @property
    def reads_destination(self) -> bool:
        """Blended modes read the destination color before writing."""
        return self is not BlendMode.OPAQUE


class CullMode(enum.Enum):
    """Back-face culling configuration."""

    NONE = "none"
    BACK = "back"
    FRONT = "front"


class PassType(enum.Enum):
    """The role a render pass plays in the frame.

    The generator tags passes so experiments can slice statistics per pass,
    but nothing in the subsetting methodology depends on the tag — it is
    metadata, not a feature.
    """

    SHADOW = "shadow"
    DEPTH_PREPASS = "depth_prepass"
    GBUFFER = "gbuffer"
    LIGHTING = "lighting"
    FORWARD = "forward"
    TRANSPARENT = "transparent"
    POST = "post"
    UI = "ui"
