"""Workload what-if transformations.

Pathfinding studies routinely ask "what if this workload ran at 1440p?",
"what if the engine sorted by material?", "what does the frame cost
without shadows?".  These functions derive modified traces answering
such questions, keeping all referential integrity intact.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, Set

from repro.errors import ValidationError
from repro.gfx.drawcall import DrawCall
from repro.gfx.enums import PassType
from repro.gfx.frame import Frame, RenderPass
from repro.gfx.resources import RenderTargetDesc, TextureDesc
from repro.gfx.trace import Trace
from repro.util.validation import check_positive


def _shadow_target_ids(trace: Trace) -> Set[int]:
    """Render targets used only as lone depth attachments (shadow maps).

    Screen-resolution scaling must not touch shadow maps: their size is
    a quality setting independent of display resolution.
    """
    lone_depth: Set[int] = set()
    with_color: Set[int] = set()
    for draw in trace.draws():
        if draw.depth_target_id is not None:
            if draw.render_target_ids:
                with_color.add(draw.depth_target_id)
            else:
                lone_depth.add(draw.depth_target_id)
        with_color.update(draw.render_target_ids)
    return lone_depth - with_color


def scale_resolution(trace: Trace, factor: float) -> Trace:
    """The same workload rendered at ``factor`` times the linear resolution.

    Screen render targets (and their sampled aliases) scale by ``factor``
    per axis; per-draw pixel counts on those targets scale by
    ``factor**2``.  Geometry, shaders, material textures, and shadow maps
    are unchanged — exactly what changing the display mode does.
    """
    check_positive("factor", factor)
    shadow_ids = _shadow_target_ids(trace)
    area = factor * factor

    scaled_targets: Dict[int, RenderTargetDesc] = {}
    original_dims: Set[tuple] = set()
    for rid, rt in trace.render_targets.items():
        if rid in shadow_ids:
            scaled_targets[rid] = rt
            continue
        original_dims.add((rt.width, rt.height))
        scaled_targets[rid] = dataclasses.replace(
            rt,
            width=max(1, round(rt.width * factor)),
            height=max(1, round(rt.height * factor)),
        )

    # RT-alias textures (sampled copies of screen targets) track the
    # resolution; they are identified by matching a screen target's
    # dimensions exactly with an uncompressed format.
    scaled_textures: Dict[int, TextureDesc] = {}
    for tid, tex in trace.textures.items():
        if (tex.width, tex.height) in original_dims and not tex.format.is_compressed:
            scaled_textures[tid] = dataclasses.replace(
                tex,
                width=max(1, round(tex.width * factor)),
                height=max(1, round(tex.height * factor)),
                mip_levels=1,
            )
        else:
            scaled_textures[tid] = tex

    def scale_draw(draw: DrawCall) -> DrawCall:
        targets_shadow_map = (
            not draw.render_target_ids and draw.depth_target_id in shadow_ids
        )
        if targets_shadow_map:
            return draw
        rasterized = int(math.ceil(draw.pixels_rasterized * area))
        shaded = min(rasterized, int(math.ceil(draw.pixels_shaded * area)))
        return dataclasses.replace(
            draw, pixels_rasterized=rasterized, pixels_shaded=shaded
        )

    frames = tuple(
        Frame(
            index=frame.index,
            passes=tuple(
                RenderPass(
                    pass_type=rp.pass_type,
                    draws=tuple(scale_draw(d) for d in rp.draws),
                    name=rp.name,
                )
                for rp in frame.passes
            ),
            metadata=dict(frame.metadata),
        )
        for frame in trace.frames
    )
    return Trace(
        name=f"{trace.name}@{factor:g}x",
        frames=frames,
        shaders=dict(trace.shaders),
        textures=scaled_textures,
        render_targets=scaled_targets,
        buffers=dict(trace.buffers),
        metadata={**trace.metadata, "resolution_factor": factor},
    )


def sort_passes_by_material(trace: Trace) -> Trace:
    """Reorder each pass's draws by (shader, state, textures).

    The classic engine optimization: grouping equal pipeline
    configurations amortizes switch penalties and keeps caches warm.
    Applying it to an imported unsorted capture quantifies how much the
    submission order costs on a candidate architecture.
    """
    def sort_key(draw: DrawCall) -> tuple:
        return (draw.shader_id, draw.state.state_key, draw.texture_ids)

    frames = tuple(
        Frame(
            index=frame.index,
            passes=tuple(
                RenderPass(
                    pass_type=rp.pass_type,
                    draws=tuple(sorted(rp.draws, key=sort_key)),
                    name=rp.name,
                )
                for rp in frame.passes
            ),
            metadata=dict(frame.metadata),
        )
        for frame in trace.frames
    )
    return Trace(
        name=f"{trace.name}.sorted",
        frames=frames,
        shaders=dict(trace.shaders),
        textures=dict(trace.textures),
        render_targets=dict(trace.render_targets),
        buffers=dict(trace.buffers),
        metadata=dict(trace.metadata),
    )


def filter_passes(trace: Trace, keep: Iterable[PassType]) -> Trace:
    """Keep only the given pass types ("what does the frame cost without
    shadows / post / UI?").

    Raises if any frame would end up empty.
    """
    keep_set = set(keep)
    if not keep_set:
        raise ValidationError("keep must name at least one pass type")
    for pass_type in keep_set:
        if not isinstance(pass_type, PassType):
            raise ValidationError(
                f"keep entries must be PassType, got {type(pass_type).__name__}"
            )
    frames = []
    for frame in trace.frames:
        passes = tuple(
            rp for rp in frame.passes if rp.pass_type in keep_set
        )
        if not passes or sum(rp.num_draws for rp in passes) == 0:
            raise ValidationError(
                f"frame {frame.index} has no draws left after filtering to "
                f"{sorted(p.value for p in keep_set)}"
            )
        frames.append(
            Frame(index=frame.index, passes=passes, metadata=dict(frame.metadata))
        )
    kept_names = "+".join(sorted(p.value for p in keep_set))
    return Trace(
        name=f"{trace.name}[{kept_names}]",
        frames=tuple(frames),
        shaders=dict(trace.shaders),
        textures=dict(trace.textures),
        render_targets=dict(trace.render_targets),
        buffers=dict(trace.buffers),
        metadata=dict(trace.metadata),
    )
