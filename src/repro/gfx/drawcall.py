"""The draw-call record — the unit the paper clusters and subsets.

A :class:`DrawCall` captures the API-visible demand of one draw: how much
geometry it submits, which shader it runs, which textures it samples, how
many pixels it rasterizes and shades, and its fixed-function state.  All of
these are observable from an API trace without reference to any GPU, which
is exactly the paper's requirement for clustering features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ValidationError
from repro.gfx.enums import PassType, PrimitiveTopology
from repro.gfx.state import PipelineState
from repro.util.validation import check_nonnegative, check_positive, check_type


@dataclass(frozen=True)
class DrawCall:
    """One draw command in the API stream.

    Attributes:
        shader_id: the bound :class:`~repro.gfx.shader.ShaderProgram`.
        state: fixed-function pipeline state.
        topology: primitive assembly mode.
        vertex_count: vertices processed per instance (index count for
            indexed draws).
        instance_count: instancing factor.
        pixels_rasterized: pixels covered by rasterization, before the
            depth test (includes overdraw).
        pixels_shaded: pixel-shader invocations after early-Z rejection.
        texture_ids: bound sampled textures, in bind order.
        render_target_ids: bound color attachments.
        depth_target_id: bound depth attachment, if any.
        vertex_stride_bytes: bytes fetched per vertex.
        pass_type: metadata tag from the generator (not a feature).
    """

    shader_id: int
    state: PipelineState
    topology: PrimitiveTopology
    vertex_count: int
    pixels_rasterized: int
    pixels_shaded: int
    instance_count: int = 1
    texture_ids: Tuple[int, ...] = ()
    render_target_ids: Tuple[int, ...] = (0,)
    depth_target_id: Optional[int] = None
    vertex_stride_bytes: int = 32
    pass_type: PassType = PassType.FORWARD
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        check_type("DrawCall.shader_id", self.shader_id, int)
        check_nonnegative("DrawCall.shader_id", self.shader_id)
        check_type("DrawCall.state", self.state, PipelineState)
        check_type("DrawCall.topology", self.topology, PrimitiveTopology)
        check_type("DrawCall.vertex_count", self.vertex_count, int)
        check_positive("DrawCall.vertex_count", self.vertex_count)
        check_type("DrawCall.instance_count", self.instance_count, int)
        check_positive("DrawCall.instance_count", self.instance_count)
        check_type("DrawCall.pixels_rasterized", self.pixels_rasterized, int)
        check_nonnegative("DrawCall.pixels_rasterized", self.pixels_rasterized)
        check_type("DrawCall.pixels_shaded", self.pixels_shaded, int)
        check_nonnegative("DrawCall.pixels_shaded", self.pixels_shaded)
        if self.pixels_shaded > self.pixels_rasterized:
            raise ValidationError(
                f"pixels_shaded={self.pixels_shaded} cannot exceed "
                f"pixels_rasterized={self.pixels_rasterized}"
            )
        check_type("DrawCall.texture_ids", self.texture_ids, tuple)
        for tid in self.texture_ids:
            check_type("DrawCall.texture_ids[*]", tid, int)
            check_nonnegative("DrawCall.texture_ids[*]", tid)
        check_type("DrawCall.render_target_ids", self.render_target_ids, tuple)
        if not self.render_target_ids and self.depth_target_id is None:
            raise ValidationError(
                "a draw must bind at least one render target or a depth target"
            )
        for rid in self.render_target_ids:
            check_type("DrawCall.render_target_ids[*]", rid, int)
            check_nonnegative("DrawCall.render_target_ids[*]", rid)
        if self.depth_target_id is not None:
            check_type("DrawCall.depth_target_id", self.depth_target_id, int)
            check_nonnegative("DrawCall.depth_target_id", self.depth_target_id)
        check_type("DrawCall.vertex_stride_bytes", self.vertex_stride_bytes, int)
        check_positive("DrawCall.vertex_stride_bytes", self.vertex_stride_bytes)
        check_type("DrawCall.pass_type", self.pass_type, PassType)

    @property
    def total_vertices(self) -> int:
        """Vertex-shader invocations: vertices x instances."""
        return self.vertex_count * self.instance_count

    @property
    def primitive_count(self) -> int:
        """Primitives assembled across all instances."""
        per_instance = self.topology.primitives_for_vertices(self.vertex_count)
        return per_instance * self.instance_count

    @property
    def overdraw(self) -> float:
        """Fraction of rasterized pixels killed by early-Z (0 = none killed)."""
        if self.pixels_rasterized == 0:
            return 0.0
        return 1.0 - self.pixels_shaded / self.pixels_rasterized
