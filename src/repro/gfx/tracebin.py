"""Compact binary trace format.

JSON lines (:mod:`repro.gfx.traceio`) are debuggable but bulky — a
paper-scale corpus serializes to hundreds of megabytes.  This module
packs the same information with ``struct``: enum values become one-byte
codes via per-enum tables, draw records become fixed-width rows plus
variable-length id lists.  Round-trips are exact (everything stored is
integral), and both formats read back to equal traces.

Layout (little-endian):

    magic b"RPB1" | section SHDR | section TEXR | section RTGT |
    section BUFR | section FRMS | magic b"REND"

Each section starts with a 4-byte tag and a u32 record count.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Dict, List, Union

from repro.errors import TraceFormatError
from repro.gfx.drawcall import DrawCall
from repro.gfx.enums import (
    BlendMode,
    CullMode,
    DepthMode,
    PassType,
    PrimitiveTopology,
    TextureFormat,
)
from repro.gfx.frame import Frame, RenderPass
from repro.gfx.resources import BufferDesc, RenderTargetDesc, TextureDesc
from repro.gfx.shader import ShaderProgram, ShaderStats
from repro.gfx.state import PipelineState
from repro.gfx.trace import Trace

MAGIC = b"RPB1"
END_MAGIC = b"REND"

# One-byte codes per enum, assigned by definition order (append-only:
# extending an enum must append, or the format version must bump).
_ENUMS = (PrimitiveTopology, TextureFormat, DepthMode, BlendMode, CullMode, PassType)
_ENCODE: Dict[type, Dict[object, int]] = {
    enum_type: {member: code for code, member in enumerate(enum_type)}
    for enum_type in _ENUMS
}
_DECODE: Dict[type, Dict[int, object]] = {
    enum_type: {code: member for member, code in table.items()}
    for enum_type, table in _ENCODE.items()
}

_U32 = struct.Struct("<I")
_SHADER_STATS = struct.Struct("<IIIII")
_TEXTURE = struct.Struct("<IIIBB")
_RENDER_TARGET = struct.Struct("<IIIBB")
_BUFFER = struct.Struct("<III")
# shader_id, verts, instances, rast, shaded, stride, depth+1, topo, depth
# mode, blend, cull, pass, n_tex, n_rts
_DRAW_FIXED = struct.Struct("<IIQQQIIBBBBBBB")


def _write_u32(stream: BinaryIO, value: int) -> None:
    stream.write(_U32.pack(value))


def _read_u32(stream: BinaryIO) -> int:
    data = stream.read(4)
    if len(data) != 4:
        raise TraceFormatError("unexpected end of binary trace")
    return _U32.unpack(data)[0]


def _write_str(stream: BinaryIO, text: str) -> None:
    raw = text.encode("utf-8")
    _write_u32(stream, len(raw))
    stream.write(raw)


def _read_str(stream: BinaryIO) -> str:
    length = _read_u32(stream)
    data = stream.read(length)
    if len(data) != length:
        raise TraceFormatError("unexpected end of binary trace in string")
    return data.decode("utf-8")


def _expect(stream: BinaryIO, tag: bytes) -> None:
    data = stream.read(len(tag))
    if data != tag:
        raise TraceFormatError(
            f"expected section tag {tag!r}, found {data!r}"
        )


def _write_stats(stream: BinaryIO, stats: ShaderStats) -> None:
    stream.write(
        _SHADER_STATS.pack(
            stats.alu_ops,
            stats.tex_ops,
            stats.interpolants,
            stats.registers,
            stats.branch_ops,
        )
    )


def _read_stats(stream: BinaryIO) -> ShaderStats:
    data = stream.read(_SHADER_STATS.size)
    alu, tex, interp, regs, branch = _SHADER_STATS.unpack(data)
    return ShaderStats(
        alu_ops=alu,
        tex_ops=tex,
        interpolants=interp,
        registers=regs,
        branch_ops=branch,
    )


def write_trace_binary(trace: Trace, stream: BinaryIO) -> None:
    """Serialize ``trace`` to an open binary stream."""
    stream.write(MAGIC)
    _write_str(stream, trace.name)

    stream.write(b"SHDR")
    _write_u32(stream, len(trace.shaders))
    for shader in trace.shaders.values():
        _write_u32(stream, shader.shader_id)
        _write_str(stream, shader.name)
        _write_stats(stream, shader.vertex)
        _write_stats(stream, shader.pixel)

    stream.write(b"TEXR")
    _write_u32(stream, len(trace.textures))
    for tex in trace.textures.values():
        stream.write(
            _TEXTURE.pack(
                tex.texture_id,
                tex.width,
                tex.height,
                _ENCODE[TextureFormat][tex.format],
                tex.mip_levels,
            )
        )

    stream.write(b"RTGT")
    _write_u32(stream, len(trace.render_targets))
    for rt in trace.render_targets.values():
        stream.write(
            _RENDER_TARGET.pack(
                rt.target_id,
                rt.width,
                rt.height,
                _ENCODE[TextureFormat][rt.format],
                rt.samples,
            )
        )

    stream.write(b"BUFR")
    _write_u32(stream, len(trace.buffers))
    for buf in trace.buffers.values():
        stream.write(_BUFFER.pack(buf.buffer_id, buf.byte_size, buf.stride))

    stream.write(b"FRMS")
    _write_u32(stream, len(trace.frames))
    for frame in trace.frames:
        _write_u32(stream, frame.index)
        _write_u32(stream, len(frame.passes))
        for render_pass in frame.passes:
            stream.write(
                bytes([_ENCODE[PassType][render_pass.pass_type]])
            )
            _write_str(stream, render_pass.name)
            _write_u32(stream, len(render_pass.draws))
            for draw in render_pass.draws:
                depth_plus_one = (
                    0 if draw.depth_target_id is None else draw.depth_target_id + 1
                )
                stream.write(
                    _DRAW_FIXED.pack(
                        draw.shader_id,
                        draw.vertex_count,
                        draw.instance_count,
                        draw.pixels_rasterized,
                        draw.pixels_shaded,
                        draw.vertex_stride_bytes,
                        depth_plus_one,
                        _ENCODE[PrimitiveTopology][draw.topology],
                        _ENCODE[DepthMode][draw.state.depth],
                        _ENCODE[BlendMode][draw.state.blend],
                        _ENCODE[CullMode][draw.state.cull],
                        _ENCODE[PassType][draw.pass_type],
                        len(draw.texture_ids),
                        len(draw.render_target_ids),
                    )
                )
                for tid in draw.texture_ids:
                    _write_u32(stream, tid)
                for rid in draw.render_target_ids:
                    _write_u32(stream, rid)
    stream.write(END_MAGIC)


def read_trace_binary(stream: BinaryIO) -> Trace:
    """Parse a trace from an open binary stream."""
    magic = stream.read(4)
    if magic != MAGIC:
        raise TraceFormatError(
            f"not a binary trace (magic {magic!r}, expected {MAGIC!r})"
        )
    name = _read_str(stream)

    _expect(stream, b"SHDR")
    shaders: Dict[int, ShaderProgram] = {}
    for _ in range(_read_u32(stream)):
        shader_id = _read_u32(stream)
        shader_name = _read_str(stream)
        vertex = _read_stats(stream)
        pixel = _read_stats(stream)
        shaders[shader_id] = ShaderProgram(
            shader_id=shader_id, name=shader_name, vertex=vertex, pixel=pixel
        )

    _expect(stream, b"TEXR")
    textures: Dict[int, TextureDesc] = {}
    for _ in range(_read_u32(stream)):
        tid, w, h, fmt, mips = _TEXTURE.unpack(stream.read(_TEXTURE.size))
        textures[tid] = TextureDesc(
            texture_id=tid,
            width=w,
            height=h,
            format=_DECODE[TextureFormat][fmt],
            mip_levels=mips,
        )

    _expect(stream, b"RTGT")
    render_targets: Dict[int, RenderTargetDesc] = {}
    for _ in range(_read_u32(stream)):
        rid, w, h, fmt, samples = _RENDER_TARGET.unpack(
            stream.read(_RENDER_TARGET.size)
        )
        render_targets[rid] = RenderTargetDesc(
            target_id=rid,
            width=w,
            height=h,
            format=_DECODE[TextureFormat][fmt],
            samples=samples,
        )

    _expect(stream, b"BUFR")
    buffers: Dict[int, BufferDesc] = {}
    for _ in range(_read_u32(stream)):
        bid, size, stride = _BUFFER.unpack(stream.read(_BUFFER.size))
        buffers[bid] = BufferDesc(buffer_id=bid, byte_size=size, stride=stride)

    _expect(stream, b"FRMS")
    frames: List[Frame] = []
    for _ in range(_read_u32(stream)):
        frame_index = _read_u32(stream)
        passes: List[RenderPass] = []
        for _ in range(_read_u32(stream)):
            pass_code = stream.read(1)
            if not pass_code:
                raise TraceFormatError("unexpected end of binary trace in pass")
            pass_type = _DECODE[PassType][pass_code[0]]
            pass_name = _read_str(stream)
            draws: List[DrawCall] = []
            for _ in range(_read_u32(stream)):
                row = stream.read(_DRAW_FIXED.size)
                if len(row) != _DRAW_FIXED.size:
                    raise TraceFormatError(
                        "unexpected end of binary trace in draw"
                    )
                (
                    shader_id,
                    verts,
                    instances,
                    rast,
                    shaded,
                    stride,
                    depth_plus_one,
                    topo,
                    depth_mode,
                    blend,
                    cull,
                    draw_pass,
                    n_tex,
                    n_rts,
                ) = _DRAW_FIXED.unpack(row)
                texture_ids = tuple(_read_u32(stream) for _ in range(n_tex))
                target_ids = tuple(_read_u32(stream) for _ in range(n_rts))
                draws.append(
                    DrawCall(
                        shader_id=shader_id,
                        state=PipelineState(
                            depth=_DECODE[DepthMode][depth_mode],
                            blend=_DECODE[BlendMode][blend],
                            cull=_DECODE[CullMode][cull],
                        ),
                        topology=_DECODE[PrimitiveTopology][topo],
                        vertex_count=verts,
                        instance_count=instances,
                        pixels_rasterized=rast,
                        pixels_shaded=shaded,
                        texture_ids=texture_ids,
                        render_target_ids=target_ids,
                        depth_target_id=(
                            None if depth_plus_one == 0 else depth_plus_one - 1
                        ),
                        vertex_stride_bytes=stride,
                        pass_type=_DECODE[PassType][draw_pass],
                    )
                )
            passes.append(
                RenderPass(pass_type=pass_type, draws=tuple(draws), name=pass_name)
            )
        frames.append(Frame(index=frame_index, passes=tuple(passes)))

    if stream.read(4) != END_MAGIC:
        raise TraceFormatError("binary trace missing end marker (truncated?)")
    return Trace(
        name=name,
        frames=tuple(frames),
        shaders=shaders,
        textures=textures,
        render_targets=render_targets,
        buffers=buffers,
    )


def save_trace_binary(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` in the binary format (overwrites)."""
    with open(path, "wb") as handle:
        write_trace_binary(trace, handle)


def load_trace_binary(path: Union[str, Path]) -> Trace:
    """Read a binary-format trace from ``path``."""
    with open(path, "rb") as handle:
        return read_trace_binary(handle)
