"""Versioned JSON-lines serialization for traces.

Format: one JSON object per line.  The first line is a header carrying the
format version and trace name; subsequent lines declare shaders, textures,
render targets, buffers, then frames.  The format is append-friendly and
streamable, which matters for paper-scale corpora (828K draw-calls).
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Dict, IO, List, Union

from repro.errors import TraceFormatError
from repro.gfx.drawcall import DrawCall
from repro.gfx.enums import (
    BlendMode,
    CullMode,
    DepthMode,
    PassType,
    PrimitiveTopology,
    TextureFormat,
)
from repro.gfx.frame import Frame, RenderPass
from repro.gfx.resources import BufferDesc, RenderTargetDesc, TextureDesc
from repro.gfx.shader import ShaderProgram, ShaderStats
from repro.gfx.state import PipelineState
from repro.gfx.trace import Trace

FORMAT_VERSION = 1


def _shader_stats_to_dict(stats: ShaderStats) -> dict:
    return {
        "alu_ops": stats.alu_ops,
        "tex_ops": stats.tex_ops,
        "interpolants": stats.interpolants,
        "registers": stats.registers,
        "branch_ops": stats.branch_ops,
    }


def _shader_stats_from_dict(data: dict) -> ShaderStats:
    return ShaderStats(
        alu_ops=data["alu_ops"],
        tex_ops=data["tex_ops"],
        interpolants=data["interpolants"],
        registers=data["registers"],
        branch_ops=data.get("branch_ops", 0),
    )


def _draw_to_dict(draw: DrawCall) -> dict:
    return {
        "shader": draw.shader_id,
        "state": list(draw.state.state_key),
        "topo": draw.topology.value,
        "verts": draw.vertex_count,
        "inst": draw.instance_count,
        "rast": draw.pixels_rasterized,
        "shaded": draw.pixels_shaded,
        "tex": list(draw.texture_ids),
        "rts": list(draw.render_target_ids),
        "depth_rt": draw.depth_target_id,
        "stride": draw.vertex_stride_bytes,
        "pass": draw.pass_type.value,
    }


def _draw_from_dict(data: dict) -> DrawCall:
    depth_value, blend_value, cull_value = data["state"]
    return DrawCall(
        shader_id=data["shader"],
        state=PipelineState(
            depth=DepthMode(depth_value),
            blend=BlendMode(blend_value),
            cull=CullMode(cull_value),
        ),
        topology=PrimitiveTopology(data["topo"]),
        vertex_count=data["verts"],
        instance_count=data["inst"],
        pixels_rasterized=data["rast"],
        pixels_shaded=data["shaded"],
        texture_ids=tuple(data["tex"]),
        render_target_ids=tuple(data["rts"]),
        depth_target_id=data["depth_rt"],
        vertex_stride_bytes=data["stride"],
        pass_type=PassType(data["pass"]),
    )


def write_trace(trace: Trace, stream: IO[str]) -> None:
    """Serialize ``trace`` to an open text stream as JSON lines."""
    header = {
        "type": "header",
        "version": FORMAT_VERSION,
        "name": trace.name,
        "metadata": trace.metadata,
    }
    stream.write(json.dumps(header) + "\n")
    for shader in trace.shaders.values():
        record = {
            "type": "shader",
            "id": shader.shader_id,
            "name": shader.name,
            "vertex": _shader_stats_to_dict(shader.vertex),
            "pixel": _shader_stats_to_dict(shader.pixel),
        }
        stream.write(json.dumps(record) + "\n")
    for tex in trace.textures.values():
        record = {
            "type": "texture",
            "id": tex.texture_id,
            "w": tex.width,
            "h": tex.height,
            "fmt": tex.format.value,
            "mips": tex.mip_levels,
        }
        stream.write(json.dumps(record) + "\n")
    for rt in trace.render_targets.values():
        record = {
            "type": "render_target",
            "id": rt.target_id,
            "w": rt.width,
            "h": rt.height,
            "fmt": rt.format.value,
            "samples": rt.samples,
        }
        stream.write(json.dumps(record) + "\n")
    for buf in trace.buffers.values():
        record = {
            "type": "buffer",
            "id": buf.buffer_id,
            "bytes": buf.byte_size,
            "stride": buf.stride,
        }
        stream.write(json.dumps(record) + "\n")
    for frame in trace.frames:
        record = {
            "type": "frame",
            "index": frame.index,
            "passes": [
                {
                    "pass_type": rp.pass_type.value,
                    "name": rp.name,
                    "draws": [_draw_to_dict(d) for d in rp.draws],
                }
                for rp in frame.passes
            ],
        }
        stream.write(json.dumps(record) + "\n")


def read_trace(stream: IO[str]) -> Trace:
    """Parse a trace from an open text stream of JSON lines."""
    first = stream.readline()
    if not first:
        raise TraceFormatError("empty trace stream")
    try:
        header = json.loads(first)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"malformed header line: {exc}") from exc
    if header.get("type") != "header":
        raise TraceFormatError(
            f"first record must be a header, got type={header.get('type')!r}"
        )
    version = header.get("version")
    if version != FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace format version {version!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )

    shaders: Dict[int, ShaderProgram] = {}
    textures: Dict[int, TextureDesc] = {}
    render_targets: Dict[int, RenderTargetDesc] = {}
    buffers: Dict[int, BufferDesc] = {}
    frames: List[Frame] = []

    for line_number, line in enumerate(stream, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"line {line_number}: bad JSON: {exc}") from exc
        kind = record.get("type")
        try:
            if kind == "shader":
                shaders[record["id"]] = ShaderProgram(
                    shader_id=record["id"],
                    name=record["name"],
                    vertex=_shader_stats_from_dict(record["vertex"]),
                    pixel=_shader_stats_from_dict(record["pixel"]),
                )
            elif kind == "texture":
                textures[record["id"]] = TextureDesc(
                    texture_id=record["id"],
                    width=record["w"],
                    height=record["h"],
                    format=TextureFormat(record["fmt"]),
                    mip_levels=record["mips"],
                )
            elif kind == "render_target":
                render_targets[record["id"]] = RenderTargetDesc(
                    target_id=record["id"],
                    width=record["w"],
                    height=record["h"],
                    format=TextureFormat(record["fmt"]),
                    samples=record["samples"],
                )
            elif kind == "buffer":
                buffers[record["id"]] = BufferDesc(
                    buffer_id=record["id"],
                    byte_size=record["bytes"],
                    stride=record["stride"],
                )
            elif kind == "frame":
                passes = tuple(
                    RenderPass(
                        pass_type=PassType(p["pass_type"]),
                        name=p.get("name", ""),
                        draws=tuple(_draw_from_dict(d) for d in p["draws"]),
                    )
                    for p in record["passes"]
                )
                frames.append(Frame(index=record["index"], passes=passes))
            else:
                raise TraceFormatError(
                    f"line {line_number}: unknown record type {kind!r}"
                )
        except (KeyError, ValueError) as exc:
            raise TraceFormatError(
                f"line {line_number}: bad {kind!r} record: {exc}"
            ) from exc

    return Trace(
        name=header["name"],
        frames=tuple(frames),
        shaders=shaders,
        textures=textures,
        render_targets=render_targets,
        buffers=buffers,
        metadata=header.get("metadata", {}),
    )


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` (overwrites)."""
    with open(path, "w", encoding="utf-8") as handle:
        write_trace(trace, handle)


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return read_trace(handle)


BINARY_SUFFIXES = (".rpb", ".bin")


def save_trace_auto(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` choosing the format by file suffix.

    ``.rpb``/``.bin`` select the compact binary format
    (:mod:`repro.gfx.tracebin`); anything else writes JSON lines.
    """
    if str(path).endswith(BINARY_SUFFIXES):
        from repro.gfx.tracebin import save_trace_binary

        save_trace_binary(trace, path)
    else:
        save_trace(trace, path)


def load_trace_auto(path: Union[str, Path]) -> Trace:
    """Read a trace detecting the format from the file's first bytes."""
    from repro.gfx.tracebin import MAGIC, load_trace_binary

    with open(path, "rb") as handle:
        head = handle.read(4)
    if head == MAGIC:
        return load_trace_binary(path)
    return load_trace(path)


def trace_to_string(trace: Trace) -> str:
    """Serialize a trace to an in-memory string (tests and tooling)."""
    buffer = io.StringIO()
    write_trace(trace, buffer)
    return buffer.getvalue()


def trace_from_string(text: str) -> Trace:
    """Parse a trace from an in-memory string."""
    return read_trace(io.StringIO(text))
