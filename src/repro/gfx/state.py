"""Fixed-function pipeline state attached to a draw-call."""

from __future__ import annotations

from dataclasses import dataclass

from repro.gfx.enums import BlendMode, CullMode, DepthMode
from repro.util.validation import check_type


@dataclass(frozen=True)
class PipelineState:
    """Depth / blend / cull configuration of a draw.

    Frozen and hashable so the simulator's state tracker can detect state
    changes between consecutive draws by simple equality.
    """

    depth: DepthMode = DepthMode.TEST_WRITE
    blend: BlendMode = BlendMode.OPAQUE
    cull: CullMode = CullMode.BACK

    def __post_init__(self) -> None:
        check_type("PipelineState.depth", self.depth, DepthMode)
        check_type("PipelineState.blend", self.blend, BlendMode)
        check_type("PipelineState.cull", self.cull, CullMode)

    @property
    def state_key(self) -> tuple:
        """A compact hashable key identifying this state configuration."""
        return (self.depth.value, self.blend.value, self.cull.value)


OPAQUE_STATE = PipelineState(
    depth=DepthMode.TEST_WRITE, blend=BlendMode.OPAQUE, cull=CullMode.BACK
)
TRANSPARENT_STATE = PipelineState(
    depth=DepthMode.TEST_ONLY, blend=BlendMode.ALPHA, cull=CullMode.NONE
)
ADDITIVE_STATE = PipelineState(
    depth=DepthMode.TEST_ONLY, blend=BlendMode.ADDITIVE, cull=CullMode.NONE
)
FULLSCREEN_STATE = PipelineState(
    depth=DepthMode.DISABLED, blend=BlendMode.OPAQUE, cull=CullMode.NONE
)
UI_STATE = PipelineState(
    depth=DepthMode.DISABLED, blend=BlendMode.ALPHA, cull=CullMode.NONE
)
